//! IR interpreter targeting the same kernel contexts as hand-written
//! kernels, so IR kernels run on the real BigKernel pipeline (and its FIFO
//! verification checks the slice against the full kernel at every access).

use crate::ir::{BinOp, Expr, KernelIr, Stmt, Var, RANGE_END, RANGE_START};
use bk_runtime::ctx::AddrGenCtx;
use bk_runtime::{DevBufId, KernelCtx, StreamId};
use std::ops::Range;

/// Runtime value.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Value {
    I(u64),
    F(f64),
}

impl Value {
    fn as_int(self) -> u64 {
        match self {
            Value::I(v) => v,
            Value::F(v) => v as u64,
        }
    }

    fn as_float(self) -> f64 {
        match self {
            Value::I(v) => v as f64,
            Value::F(v) => v,
        }
    }

    fn truthy(self) -> bool {
        match self {
            Value::I(v) => v != 0,
            Value::F(v) => v != 0.0,
        }
    }
}

fn apply(op: BinOp, a: Value, b: Value) -> Value {
    use BinOp::*;
    // Float arithmetic when either side is float; comparisons yield ints.
    let float = matches!(a, Value::F(_)) || matches!(b, Value::F(_));
    if float {
        let (x, y) = (a.as_float(), b.as_float());
        match op {
            Add => Value::F(x + y),
            Sub => Value::F(x - y),
            Mul => Value::F(x * y),
            Div => Value::F(x / y),
            Rem => Value::F(x % y),
            Lt => Value::I((x < y) as u64),
            Le => Value::I((x <= y) as u64),
            Eq => Value::I((x == y) as u64),
            Ne => Value::I((x != y) as u64),
            And | Or | Xor | Shl | Shr => {
                panic!("bitwise operator {op:?} on float operands")
            }
        }
    } else {
        let (x, y) = (a.as_int(), b.as_int());
        match op {
            Add => Value::I(x.wrapping_add(y)),
            Sub => Value::I(x.wrapping_sub(y)),
            Mul => Value::I(x.wrapping_mul(y)),
            Div => Value::I(x / y),
            Rem => Value::I(x % y),
            Lt => Value::I((x < y) as u64),
            Le => Value::I((x <= y) as u64),
            Eq => Value::I((x == y) as u64),
            Ne => Value::I((x != y) as u64),
            And => Value::I(x & y),
            Or => Value::I(x | y),
            Xor => Value::I(x ^ y),
            Shl => Value::I(x.wrapping_shl(y as u32)),
            Shr => Value::I(x.wrapping_shr(y as u32)),
        }
    }
}

/// Largest variable id used by the kernel (for store sizing).
pub(crate) fn max_var(stmts: &[Stmt]) -> u32 {
    fn expr_max(e: &Expr) -> u32 {
        let mut m = 1; // range vars always exist
        crate::ir::visit_expr(e, &mut |x| {
            if let Expr::Var(Var(i)) = x {
                m = m.max(*i);
            }
        });
        m
    }
    let mut m = 1;
    for s in stmts {
        m = m.max(match s {
            Stmt::Assign(Var(i), e) => (*i).max(expr_max(e)),
            Stmt::StreamWrite { offset, value, .. }
            | Stmt::DevWrite { offset, value, .. }
            | Stmt::DevAtomicAdd { offset, value, .. } => expr_max(offset).max(expr_max(value)),
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => expr_max(cond)
                .max(max_var(then_body))
                .max(max_var(else_body)),
            Stmt::While { cond, body } => expr_max(cond).max(max_var(body)),
            Stmt::EmitRead { offset, .. } | Stmt::EmitWrite { offset, .. } => expr_max(offset),
            Stmt::Alu(_) => 1,
        });
    }
    m
}

/// How stream/emit operations are performed.
enum Target<'a, 'b> {
    Compute(&'a mut dyn KernelCtx),
    AddrGen(&'a mut AddrGenCtx<'b>),
}

struct Interp<'a, 'b> {
    vars: Vec<Value>,
    dev_bufs: &'a [DevBufId],
    target: Target<'a, 'b>,
}

impl Interp<'_, '_> {
    fn eval(&mut self, e: &Expr) -> Value {
        match e {
            Expr::ConstInt(v) => Value::I(*v),
            Expr::ConstFloat(v) => Value::F(*v),
            Expr::Var(Var(i)) => self.vars[*i as usize],
            Expr::Bin(op, a, b) => {
                let x = self.eval(a);
                let y = self.eval(b);
                self.charge(1);
                apply(*op, x, y)
            }
            Expr::IntToFloat(a) => {
                let v = self.eval(a);
                Value::F(v.as_int() as f64)
            }
            Expr::BitsToFloat(a) => {
                let v = self.eval(a);
                Value::F(f64::from_bits(v.as_int()))
            }
            Expr::StreamRead {
                stream,
                offset,
                width,
            } => {
                let off = self.eval(offset).as_int();
                match &mut self.target {
                    Target::Compute(ctx) => {
                        Value::I(ctx.stream_read(StreamId(*stream), off, *width as u32))
                    }
                    Target::AddrGen(_) => {
                        panic!(
                            "stream read reached the address-generation interpreter — \
                                run the sliced kernel, not the full one"
                        )
                    }
                }
            }
            Expr::DevRead { buf, offset, width } => {
                let off = self.eval(offset).as_int();
                let b = self.dev_bufs[*buf as usize];
                match &mut self.target {
                    Target::Compute(ctx) => Value::I(ctx.dev_read(b, off, *width as u32)),
                    Target::AddrGen(actx) => Value::I(actx.dev_read(b, off, *width as u32)),
                }
            }
        }
    }

    fn charge(&mut self, n: u64) {
        match &mut self.target {
            Target::Compute(ctx) => ctx.alu(n),
            Target::AddrGen(actx) => actx.alu(n),
        }
    }

    fn exec(&mut self, stmts: &[Stmt]) {
        for s in stmts {
            match s {
                Stmt::Assign(Var(i), e) => {
                    let v = self.eval(e);
                    self.vars[*i as usize] = v;
                }
                Stmt::StreamWrite {
                    stream,
                    offset,
                    width,
                    value,
                } => {
                    let off = self.eval(offset).as_int();
                    let val = self.eval(value);
                    match &mut self.target {
                        Target::Compute(ctx) => {
                            ctx.stream_write(StreamId(*stream), off, *width as u32, val.as_int())
                        }
                        Target::AddrGen(_) => {
                            panic!("stream write reached the address-generation interpreter")
                        }
                    }
                }
                Stmt::DevWrite {
                    buf,
                    offset,
                    width,
                    value,
                } => {
                    let off = self.eval(offset).as_int();
                    let val = self.eval(value).as_int();
                    let b = self.dev_bufs[*buf as usize];
                    match &mut self.target {
                        Target::Compute(ctx) => ctx.dev_write(b, off, *width as u32, val),
                        Target::AddrGen(_) => {
                            panic!("device write reached the address-generation interpreter")
                        }
                    }
                }
                Stmt::DevAtomicAdd { buf, offset, value } => {
                    let off = self.eval(offset).as_int();
                    let val = self.eval(value).as_int();
                    let b = self.dev_bufs[*buf as usize];
                    match &mut self.target {
                        Target::Compute(ctx) => {
                            ctx.dev_atomic_add_u64(b, off, val);
                        }
                        Target::AddrGen(_) => {
                            panic!("atomic reached the address-generation interpreter")
                        }
                    }
                }
                Stmt::If {
                    cond,
                    then_body,
                    else_body,
                } => {
                    let c = self.eval(cond);
                    if c.truthy() {
                        self.exec(then_body);
                    } else {
                        self.exec(else_body);
                    }
                }
                Stmt::While { cond, body } => {
                    while self.eval(cond).truthy() {
                        self.exec(body);
                    }
                }
                Stmt::Alu(n) => self.charge(*n),
                Stmt::EmitRead {
                    stream,
                    offset,
                    width,
                } => {
                    let off = self.eval(offset).as_int();
                    match &mut self.target {
                        Target::AddrGen(actx) => {
                            actx.emit_read(StreamId(*stream), off, *width as u32)
                        }
                        Target::Compute(_) => {
                            panic!("emit statement reached the computation interpreter")
                        }
                    }
                }
                Stmt::EmitWrite {
                    stream,
                    offset,
                    width,
                } => {
                    let off = self.eval(offset).as_int();
                    match &mut self.target {
                        Target::AddrGen(actx) => {
                            actx.emit_write(StreamId(*stream), off, *width as u32)
                        }
                        Target::Compute(_) => {
                            panic!("emit statement reached the computation interpreter")
                        }
                    }
                }
            }
        }
    }
}

fn init_vars(ir: &KernelIr, range: &Range<u64>) -> Vec<Value> {
    let n = max_var(&ir.body) as usize + 1;
    let mut vars = vec![Value::I(0); n];
    vars[RANGE_START.0 as usize] = Value::I(range.start);
    vars[RANGE_END.0 as usize] = Value::I(range.end);
    vars
}

/// Execute the full kernel against a computation context.
pub fn run_kernel(
    ir: &KernelIr,
    ctx: &mut dyn KernelCtx,
    dev_bufs: &[DevBufId],
    range: Range<u64>,
) {
    assert!(
        dev_bufs.len() >= ir.num_dev_bufs as usize,
        "missing device buffer bindings"
    );
    let mut interp = Interp {
        vars: init_vars(ir, &range),
        dev_bufs,
        target: Target::Compute(ctx),
    };
    interp.exec(&ir.body);
}

/// Execute the address slice against an address-generation context.
pub fn run_addr_slice(
    ir: &KernelIr,
    ctx: &mut AddrGenCtx<'_>,
    dev_bufs: &[DevBufId],
    range: Range<u64>,
) {
    assert!(
        dev_bufs.len() >= ir.num_dev_bufs as usize,
        "missing device buffer bindings"
    );
    let mut interp = Interp {
        vars: init_vars(ir, &range),
        dev_bufs,
        target: Target::AddrGen(ctx),
    };
    interp.exec(&ir.body);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_int_and_float_ops() {
        assert_eq!(apply(BinOp::Add, Value::I(2), Value::I(3)), Value::I(5));
        assert_eq!(apply(BinOp::Lt, Value::I(2), Value::I(3)), Value::I(1));
        assert_eq!(apply(BinOp::Mul, Value::F(2.0), Value::I(3)), Value::F(6.0));
        assert_eq!(apply(BinOp::Le, Value::F(3.0), Value::F(3.0)), Value::I(1));
        assert_eq!(
            apply(BinOp::Sub, Value::I(1), Value::I(2)),
            Value::I(u64::MAX)
        );
        assert_eq!(apply(BinOp::Xor, Value::I(6), Value::I(3)), Value::I(5));
    }

    #[test]
    #[should_panic(expected = "bitwise operator")]
    fn float_bitwise_panics() {
        apply(BinOp::And, Value::F(1.0), Value::I(1));
    }

    #[test]
    fn truthiness() {
        assert!(Value::I(7).truthy());
        assert!(!Value::I(0).truthy());
        assert!(Value::F(0.5).truthy());
        assert!(!Value::F(0.0).truthy());
    }

    #[test]
    fn max_var_spans_nested_statements() {
        let body = vec![Stmt::While {
            cond: Expr::var(Var(9)),
            body: vec![Stmt::Assign(Var(4), Expr::var(Var(12)))],
        }];
        assert_eq!(max_var(&body), 12);
    }
}

//! The IR pass driver: compilation as a chain of named IR→IR passes.
//!
//! Every compiler entry point in this crate (address-slice extraction,
//! mega-kernel fusion) is expressed as a sequence of [`IrPass`]es run by
//! [`run_passes`], which records the name of each applied pass in a
//! [`PassLog`]. The log is what tests and tools introspect — a pass that
//! silently didn't run is indistinguishable from a pass that ran and changed
//! nothing, so the driver makes the sequence explicit.

use crate::ir::KernelIr;
use crate::slice::{slice_addresses, SliceError};

/// One named IR→IR pass. Passes either rewrite the kernel or refuse with a
/// [`SliceError`]; purely-cleanup passes never refuse.
#[derive(Clone, Copy)]
pub struct IrPass {
    /// Pass name as recorded in the [`PassLog`].
    pub name: &'static str,
    run: fn(&KernelIr) -> Result<KernelIr, SliceError>,
}

impl std::fmt::Debug for IrPass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IrPass").field("name", &self.name).finish()
    }
}

/// The ordered record of passes a compilation ran.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PassLog {
    applied: Vec<&'static str>,
}

impl PassLog {
    /// Pass names in application order.
    pub fn applied(&self) -> &[&'static str] {
        &self.applied
    }
}

/// The address-slice extraction pass (fallible: refuses on indirection).
pub const SLICE_ADDRESSES: IrPass = IrPass {
    name: "slice-addresses",
    run: slice_addresses,
};

/// Constant folding + algebraic simplification (infallible cleanup).
pub const FOLD_CONSTANTS: IrPass = IrPass {
    name: "fold-constants",
    run: |k| Ok(crate::opt::fold_constants(k)),
};

/// Removal of loops left empty by slicing/folding (infallible cleanup).
pub const PRUNE_USELESS_LOOPS: IrPass = IrPass {
    name: "prune-useless-loops",
    run: |k| Ok(crate::opt::prune_useless_loops(k)),
};

/// The standard pipeline deriving the address-generation program from a
/// full kernel (the paper's compile-time half).
pub const ADDRESS_SLICE_PIPELINE: &[IrPass] =
    &[SLICE_ADDRESSES, FOLD_CONSTANTS, PRUNE_USELESS_LOOPS];

/// Run `passes` over `kernel` in order, stopping at the first refusal.
/// Returns the final kernel and the log of passes that completed.
pub fn run_passes(kernel: &KernelIr, passes: &[IrPass]) -> Result<(KernelIr, PassLog), SliceError> {
    let mut k = kernel.clone();
    let mut log = PassLog::default();
    for pass in passes {
        k = (pass.run)(&k)?;
        log.applied.push(pass.name);
    }
    Ok((k, log))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Expr, Stmt, Var, RANGE_END, RANGE_START};

    fn loop_kernel() -> KernelIr {
        let i = Var(2);
        KernelIr {
            name: "t",
            record_size: Some(8),
            halo_bytes: 0,
            num_dev_bufs: 0,
            body: vec![
                Stmt::Assign(i, Expr::var(RANGE_START)),
                Stmt::While {
                    cond: Expr::lt(Expr::var(i), Expr::var(RANGE_END)),
                    body: vec![
                        Stmt::Assign(
                            Var(3),
                            Expr::add(Expr::var(Var(3)), Expr::stream_read(0, Expr::var(i), 8)),
                        ),
                        Stmt::Assign(i, Expr::add(Expr::var(i), Expr::int(8))),
                    ],
                },
            ],
        }
    }

    #[test]
    fn pipeline_logs_every_pass() {
        let (sliced, log) = run_passes(&loop_kernel(), ADDRESS_SLICE_PIPELINE).unwrap();
        assert_eq!(
            log.applied(),
            &["slice-addresses", "fold-constants", "prune-useless-loops"]
        );
        assert!(sliced
            .body
            .iter()
            .any(|s| matches!(s, Stmt::While { .. } | Stmt::EmitRead { .. })));
    }

    #[test]
    fn refusal_stops_the_chain() {
        let k = KernelIr {
            name: "indirect",
            record_size: Some(8),
            halo_bytes: 0,
            num_dev_bufs: 0,
            body: vec![
                Stmt::Assign(Var(2), Expr::stream_read(0, Expr::var(RANGE_START), 8)),
                Stmt::Assign(Var(3), Expr::stream_read(0, Expr::var(Var(2)), 8)),
            ],
        };
        assert!(run_passes(&k, ADDRESS_SLICE_PIPELINE).is_err());
    }
}

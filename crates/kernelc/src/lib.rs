//! # bk-kernelc — the BigKernel compiler transformations, mechanically
//!
//! The paper obtains the two halves of a BigKernel from one source kernel by
//! "straight-forward compiler transformations" (§III): the **prefetch
//! address generation** code keeps only control flow, address computation
//! and the memory accesses themselves (the accesses become address-buffer
//! stores), and the **kernel computation** code redirects the original
//! accesses into the prefetched data buffer.
//!
//! The six evaluation applications in `bk-apps` hand-write both halves (and
//! the runtime machine-checks their agreement at every access). This crate
//! demonstrates the transformation itself on a small typed kernel IR:
//!
//! * [`ir`] — expressions, statements, loops, mapped-stream and
//!   device-buffer accesses;
//! * [`mod@slice`] — the address-slice extraction pass: a backward slice over
//!   the variables feeding control flow and access addresses. When an
//!   access address depends on *loaded stream data* (an indirection), the
//!   pass refuses — exactly the paper's documented fallback, where the
//!   transformation "simply defaults to fetching all data" (the
//!   `transfer_all` / overlap-only configuration);
//! * [`opt`] — post-slicing cleanup passes (constant folding, algebraic
//!   simplification);
//! * [`pass`] — the chained-pass driver: compilation is an explicit,
//!   logged sequence of named IR→IR passes;
//! * [`fn@fuse`] — mega-kernel fusion: proves (record-periodic dependence
//!   analysis) that one pass's stream reads are covered by the previous
//!   pass's writes, then stitches both into a single kernel whose
//!   intermediate lives in a device buffer and never crosses PCIe —
//!   refusing conservatively whenever coverage cannot be established;
//! * [`interp`] — an interpreter targeting the same [`KernelCtx`] the
//!   hand-written kernels use, so a sliced IR kernel runs on the real
//!   BigKernel pipeline with the FIFO cross-check enabled;
//! * [`adapter`] — packages an IR kernel as a [`StreamKernel`].
//!
//! [`KernelCtx`]: bk_runtime::KernelCtx
//! [`StreamKernel`]: bk_runtime::StreamKernel

pub mod adapter;
pub mod fuse;
pub mod interp;
pub mod ir;
pub mod opt;
pub mod pass;
pub mod pretty;
pub mod slice;

pub use adapter::IrKernel;
pub use fuse::{derive_summary, fuse, intermediate_extent, FuseError};
pub use interp::{run_addr_slice, run_kernel};
pub use ir::{BinOp, Expr, KernelIr, Stmt, Ty, Var};
pub use opt::{count_stmts, fold_constants, prune_useless_loops};
pub use pass::{run_passes, IrPass, PassLog, ADDRESS_SLICE_PIPELINE};
pub use pretty::kernel_to_string;
pub use slice::{slice_addresses, SliceError};

//! Cleanup passes run after slicing: constant folding and algebraic
//! simplification. The slice drops the computation statements wholesale;
//! these passes then tidy the surviving address arithmetic — the same
//! post-slicing cleanup a production compiler would run, and they make the
//! generated addr-gen code cheaper to interpret.

use crate::ir::{BinOp, Expr, KernelIr, Stmt};

/// Fold constants and apply algebraic identities throughout the kernel.
pub fn fold_constants(kernel: &KernelIr) -> KernelIr {
    KernelIr {
        body: fold_stmts(&kernel.body),
        ..kernel.clone()
    }
}

fn fold_stmts(stmts: &[Stmt]) -> Vec<Stmt> {
    stmts
        .iter()
        .map(|s| match s {
            Stmt::Assign(v, e) => Stmt::Assign(*v, fold_expr(e)),
            Stmt::StreamWrite {
                stream,
                offset,
                width,
                value,
            } => Stmt::StreamWrite {
                stream: *stream,
                offset: fold_expr(offset),
                width: *width,
                value: fold_expr(value),
            },
            Stmt::DevWrite {
                buf,
                offset,
                width,
                value,
            } => Stmt::DevWrite {
                buf: *buf,
                offset: fold_expr(offset),
                width: *width,
                value: fold_expr(value),
            },
            Stmt::DevAtomicAdd { buf, offset, value } => Stmt::DevAtomicAdd {
                buf: *buf,
                offset: fold_expr(offset),
                value: fold_expr(value),
            },
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => Stmt::If {
                cond: fold_expr(cond),
                then_body: fold_stmts(then_body),
                else_body: fold_stmts(else_body),
            },
            Stmt::While { cond, body } => Stmt::While {
                cond: fold_expr(cond),
                body: fold_stmts(body),
            },
            Stmt::EmitRead {
                stream,
                offset,
                width,
            } => Stmt::EmitRead {
                stream: *stream,
                offset: fold_expr(offset),
                width: *width,
            },
            Stmt::EmitWrite {
                stream,
                offset,
                width,
            } => Stmt::EmitWrite {
                stream: *stream,
                offset: fold_expr(offset),
                width: *width,
            },
            Stmt::Alu(n) => Stmt::Alu(*n),
        })
        .collect()
}

/// Fold one expression bottom-up.
pub fn fold_expr(e: &Expr) -> Expr {
    match e {
        Expr::Bin(op, a, b) => {
            let a = fold_expr(a);
            let b = fold_expr(b);
            // Integer constant folding.
            if let (Expr::ConstInt(x), Expr::ConstInt(y)) = (&a, &b) {
                if let Some(v) = fold_int(*op, *x, *y) {
                    return Expr::ConstInt(v);
                }
            }
            // Algebraic identities (integer domain only — float zeros and
            // NaNs make these unsound for floats).
            match (*op, &a, &b) {
                (BinOp::Add, x, Expr::ConstInt(0)) | (BinOp::Sub, x, Expr::ConstInt(0)) => {
                    return x.clone()
                }
                (BinOp::Add, Expr::ConstInt(0), y) => return y.clone(),
                (BinOp::Mul, x, Expr::ConstInt(1)) => return x.clone(),
                (BinOp::Mul, Expr::ConstInt(1), y) => return y.clone(),
                (BinOp::Mul, _, Expr::ConstInt(0)) if !has_side_effects(&a) => {
                    return Expr::ConstInt(0)
                }
                (BinOp::Mul, Expr::ConstInt(0), _) if !has_side_effects(&b) => {
                    return Expr::ConstInt(0)
                }
                (BinOp::Shl, x, Expr::ConstInt(0)) | (BinOp::Shr, x, Expr::ConstInt(0)) => {
                    return x.clone()
                }
                _ => {}
            }
            Expr::Bin(*op, Box::new(a), Box::new(b))
        }
        Expr::IntToFloat(a) => {
            let a = fold_expr(a);
            if let Expr::ConstInt(v) = a {
                Expr::ConstFloat(v as f64)
            } else {
                Expr::IntToFloat(Box::new(a))
            }
        }
        Expr::BitsToFloat(a) => Expr::BitsToFloat(Box::new(fold_expr(a))),
        Expr::StreamRead {
            stream,
            offset,
            width,
        } => Expr::StreamRead {
            stream: *stream,
            offset: Box::new(fold_expr(offset)),
            width: *width,
        },
        Expr::DevRead { buf, offset, width } => Expr::DevRead {
            buf: *buf,
            offset: Box::new(fold_expr(offset)),
            width: *width,
        },
        Expr::ConstInt(_) | Expr::ConstFloat(_) | Expr::Var(_) => e.clone(),
    }
}

fn fold_int(op: BinOp, x: u64, y: u64) -> Option<u64> {
    Some(match op {
        BinOp::Add => x.wrapping_add(y),
        BinOp::Sub => x.wrapping_sub(y),
        BinOp::Mul => x.wrapping_mul(y),
        BinOp::Div => {
            if y == 0 {
                return None; // preserve the runtime panic
            }
            x / y
        }
        BinOp::Rem => {
            if y == 0 {
                return None;
            }
            x % y
        }
        BinOp::Lt => (x < y) as u64,
        BinOp::Le => (x <= y) as u64,
        BinOp::Eq => (x == y) as u64,
        BinOp::Ne => (x != y) as u64,
        BinOp::And => x & y,
        BinOp::Or => x | y,
        BinOp::Xor => x ^ y,
        BinOp::Shl => x.wrapping_shl(y as u32),
        BinOp::Shr => x.wrapping_shr(y as u32),
    })
}

/// Memory reads are "side effects" here: they are traced and (for stream
/// reads) FIFO-consumed, so folding them away would change behaviour.
fn has_side_effects(e: &Expr) -> bool {
    let mut found = false;
    crate::ir::visit_expr(e, &mut |x| {
        if matches!(x, Expr::StreamRead { .. } | Expr::DevRead { .. }) {
            found = true;
        }
    });
    found
}

/// Count the statements in a kernel (nested included) — a crude size metric
/// used by tests and the paper's "70 LOC becomes 500 LOC" remark.
pub fn count_stmts(stmts: &[Stmt]) -> usize {
    stmts
        .iter()
        .map(|s| match s {
            Stmt::If {
                then_body,
                else_body,
                ..
            } => 1 + count_stmts(then_body) + count_stmts(else_body),
            Stmt::While { body, .. } => 1 + count_stmts(body),
            _ => 1,
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Var, RANGE_START};

    fn int(v: u64) -> Expr {
        Expr::ConstInt(v)
    }

    #[test]
    fn folds_integer_arithmetic() {
        let e = Expr::bin(BinOp::Mul, Expr::add(int(2), int(3)), int(4));
        assert_eq!(fold_expr(&e), int(20));
        assert_eq!(fold_expr(&Expr::bin(BinOp::Lt, int(1), int(2))), int(1));
        assert_eq!(fold_expr(&Expr::bin(BinOp::Shr, int(256), int(4))), int(16));
    }

    #[test]
    fn preserves_division_by_zero() {
        let e = Expr::bin(BinOp::Div, int(1), int(0));
        assert_eq!(fold_expr(&e), e); // left to panic at run time
    }

    #[test]
    fn algebraic_identities() {
        let x = Expr::var(Var(5));
        assert_eq!(fold_expr(&Expr::add(x.clone(), int(0))), x);
        let x = Expr::var(Var(5));
        assert_eq!(fold_expr(&Expr::bin(BinOp::Mul, x.clone(), int(1))), x);
        let x = Expr::var(Var(5));
        assert_eq!(fold_expr(&Expr::bin(BinOp::Mul, x, int(0))), int(0));
    }

    #[test]
    fn zero_multiply_keeps_memory_reads() {
        let read = Expr::stream_read(0, Expr::var(RANGE_START), 8);
        let e = Expr::bin(BinOp::Mul, read.clone(), int(0));
        // Must NOT fold to 0: the read is traced/FIFO-consumed.
        assert_eq!(fold_expr(&e), Expr::bin(BinOp::Mul, read, int(0)));
    }

    #[test]
    fn folds_through_statements() {
        let k = KernelIr {
            name: "t",
            record_size: Some(8),
            halo_bytes: 0,
            num_dev_bufs: 0,
            body: vec![Stmt::While {
                cond: Expr::bin(BinOp::Lt, Expr::var(Var(2)), Expr::add(int(10), int(20))),
                body: vec![Stmt::Assign(
                    Var(2),
                    Expr::add(Expr::var(Var(2)), Expr::bin(BinOp::Mul, int(2), int(4))),
                )],
            }],
        };
        let folded = fold_constants(&k);
        match &folded.body[0] {
            Stmt::While { cond, body } => {
                assert_eq!(*cond, Expr::bin(BinOp::Lt, Expr::var(Var(2)), int(30)));
                assert_eq!(
                    body[0],
                    Stmt::Assign(Var(2), Expr::add(Expr::var(Var(2)), int(8)))
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn count_stmts_nested() {
        let k = KernelIr {
            name: "t",
            record_size: None,
            halo_bytes: 0,
            num_dev_bufs: 0,
            body: vec![
                Stmt::Alu(1),
                Stmt::While {
                    cond: int(0),
                    body: vec![Stmt::Alu(1), Stmt::Alu(1)],
                },
                Stmt::If {
                    cond: int(1),
                    then_body: vec![Stmt::Alu(1)],
                    else_body: vec![],
                },
            ],
        };
        assert_eq!(count_stmts(&k.body), 6);
    }

    #[test]
    fn int_to_float_folds() {
        assert_eq!(
            fold_expr(&Expr::IntToFloat(Box::new(int(3)))),
            Expr::ConstFloat(3.0)
        );
    }
}

/// Remove loops whose execution can no longer affect anything: no address
/// emissions or memory effects inside, and every variable they assign is
/// read nowhere else. The address slice of a kernel like K-means leaves such
/// a husk behind (the per-cluster loop whose body was entirely computation),
/// and a production compiler would delete it.
pub fn prune_useless_loops(kernel: &KernelIr) -> KernelIr {
    let mut body = kernel.body.clone();
    loop {
        let before = count_stmts(&body);
        let reads = read_counts(&body);
        body = prune_stmts(body, &reads);
        let reads = read_counts(&body);
        body = drop_dead_assigns(body, &reads);
        if count_stmts(&body) == before {
            break;
        }
    }
    KernelIr {
        body,
        ..kernel.clone()
    }
}

use crate::ir::expr_vars;
use std::collections::BTreeMap;

fn read_counts(stmts: &[Stmt]) -> BTreeMap<crate::ir::Var, usize> {
    let mut counts = BTreeMap::new();
    fn expr(e: &Expr, counts: &mut BTreeMap<crate::ir::Var, usize>) {
        for v in expr_vars(e) {
            *counts.entry(v).or_insert(0) += 1;
        }
    }
    fn walk(stmts: &[Stmt], counts: &mut BTreeMap<crate::ir::Var, usize>) {
        for s in stmts {
            match s {
                Stmt::Assign(_, e) => expr(e, counts),
                Stmt::StreamWrite { offset, value, .. }
                | Stmt::DevWrite { offset, value, .. }
                | Stmt::DevAtomicAdd { offset, value, .. } => {
                    expr(offset, counts);
                    expr(value, counts);
                }
                Stmt::If {
                    cond,
                    then_body,
                    else_body,
                } => {
                    expr(cond, counts);
                    walk(then_body, counts);
                    walk(else_body, counts);
                }
                Stmt::While { cond, body } => {
                    expr(cond, counts);
                    walk(body, counts);
                }
                Stmt::EmitRead { offset, .. } | Stmt::EmitWrite { offset, .. } => {
                    expr(offset, counts)
                }
                Stmt::Alu(_) => {}
            }
        }
    }
    walk(stmts, &mut counts);
    counts
}

/// Whether the statements have any effect beyond local variable updates.
fn has_effects(stmts: &[Stmt]) -> bool {
    stmts.iter().any(|s| match s {
        Stmt::Assign(_, e) => crate::ir::contains_stream_read(e),
        Stmt::StreamWrite { .. }
        | Stmt::DevWrite { .. }
        | Stmt::DevAtomicAdd { .. }
        | Stmt::EmitRead { .. }
        | Stmt::EmitWrite { .. } => true,
        Stmt::If {
            then_body,
            else_body,
            ..
        } => has_effects(then_body) || has_effects(else_body),
        Stmt::While { body, .. } => has_effects(body),
        Stmt::Alu(_) => false,
    })
}

fn assigned_vars(stmts: &[Stmt], out: &mut Vec<crate::ir::Var>) {
    for s in stmts {
        match s {
            Stmt::Assign(v, _) => out.push(*v),
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                assigned_vars(then_body, out);
                assigned_vars(else_body, out);
            }
            Stmt::While { body, .. } => assigned_vars(body, out),
            _ => {}
        }
    }
}

fn prune_stmts(stmts: Vec<Stmt>, total_reads: &BTreeMap<crate::ir::Var, usize>) -> Vec<Stmt> {
    stmts
        .into_iter()
        .filter_map(|s| match s {
            Stmt::While { cond, body } => {
                if !has_effects(&body) {
                    // Reads of assigned vars *inside* the loop (cond + body)
                    // don't count as external uses.
                    let mut inner = read_counts(&body);
                    for v in expr_vars(&cond) {
                        *inner.entry(v).or_insert(0) += 1;
                    }
                    let mut assigned = Vec::new();
                    assigned_vars(&body, &mut assigned);
                    let externally_read = assigned.iter().any(|v| {
                        total_reads.get(v).copied().unwrap_or(0)
                            > inner.get(v).copied().unwrap_or(0)
                    });
                    if !externally_read {
                        return None; // the loop is a husk — delete it
                    }
                }
                Some(Stmt::While {
                    cond,
                    body: prune_stmts(body, total_reads),
                })
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => Some(Stmt::If {
                cond,
                then_body: prune_stmts(then_body, total_reads),
                else_body: prune_stmts(else_body, total_reads),
            }),
            other => Some(other),
        })
        .collect()
}

/// Remove pure assignments to variables that are never read.
fn drop_dead_assigns(stmts: Vec<Stmt>, reads: &BTreeMap<crate::ir::Var, usize>) -> Vec<Stmt> {
    stmts
        .into_iter()
        .filter_map(|s| match s {
            Stmt::Assign(v, e) => {
                if reads.get(&v).copied().unwrap_or(0) == 0 && !crate::ir::contains_stream_read(&e)
                {
                    None
                } else {
                    Some(Stmt::Assign(v, e))
                }
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => Some(Stmt::If {
                cond,
                then_body: drop_dead_assigns(then_body, reads),
                else_body: drop_dead_assigns(else_body, reads),
            }),
            Stmt::While { cond, body } => Some(Stmt::While {
                cond,
                body: drop_dead_assigns(body, reads),
            }),
            other => Some(other),
        })
        .collect()
}

#[cfg(test)]
mod prune_tests {
    use super::*;
    use crate::ir::{Var, RANGE_END, RANGE_START};

    #[test]
    fn husk_loop_and_its_init_are_removed() {
        // i-loop emits; the inner c-loop lost its body to slicing.
        let i = Var(2);
        let c = Var(3);
        let k = KernelIr {
            name: "husk",
            record_size: Some(8),
            halo_bytes: 0,
            num_dev_bufs: 0,
            body: vec![
                Stmt::Assign(i, Expr::var(RANGE_START)),
                Stmt::While {
                    cond: Expr::lt(Expr::var(i), Expr::var(RANGE_END)),
                    body: vec![
                        Stmt::EmitRead {
                            stream: 0,
                            offset: Expr::var(i),
                            width: 8,
                        },
                        Stmt::Assign(c, Expr::int(0)),
                        Stmt::While {
                            cond: Expr::lt(Expr::var(c), Expr::int(16)),
                            body: vec![Stmt::Assign(c, Expr::add(Expr::var(c), Expr::int(1)))],
                        },
                        Stmt::Assign(i, Expr::add(Expr::var(i), Expr::int(8))),
                    ],
                },
            ],
        };
        let pruned = prune_useless_loops(&k);
        // inner loop + `c = 0` gone; outer loop + emit + induction remain.
        assert_eq!(count_stmts(&pruned.body), 4, "{:#?}", pruned.body);
    }

    #[test]
    fn loops_with_emits_survive() {
        let i = Var(2);
        let k = KernelIr {
            name: "live",
            record_size: Some(8),
            halo_bytes: 0,
            num_dev_bufs: 0,
            body: vec![
                Stmt::Assign(i, Expr::var(RANGE_START)),
                Stmt::While {
                    cond: Expr::lt(Expr::var(i), Expr::var(RANGE_END)),
                    body: vec![
                        Stmt::EmitRead {
                            stream: 0,
                            offset: Expr::var(i),
                            width: 8,
                        },
                        Stmt::Assign(i, Expr::add(Expr::var(i), Expr::int(8))),
                    ],
                },
            ],
        };
        let pruned = prune_useless_loops(&k);
        assert_eq!(count_stmts(&pruned.body), count_stmts(&k.body));
    }

    #[test]
    fn loop_feeding_a_later_address_survives() {
        // An effect-free loop computing a var used by a later emit must stay.
        let i = Var(2);
        let k = KernelIr {
            name: "feeds",
            record_size: Some(8),
            halo_bytes: 0,
            num_dev_bufs: 0,
            body: vec![
                Stmt::Assign(i, Expr::int(0)),
                Stmt::While {
                    cond: Expr::lt(Expr::var(i), Expr::int(64)),
                    body: vec![Stmt::Assign(i, Expr::add(Expr::var(i), Expr::int(8)))],
                },
                Stmt::EmitRead {
                    stream: 0,
                    offset: Expr::var(i),
                    width: 8,
                },
            ],
        };
        let pruned = prune_useless_loops(&k);
        assert_eq!(count_stmts(&pruned.body), 4);
    }
}

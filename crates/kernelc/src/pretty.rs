//! Pretty-printer for the kernel IR: renders kernels and derived slices as
//! readable pseudo-CUDA, used by examples and debugging output.

use crate::ir::{BinOp, Expr, KernelIr, Stmt, Var, RANGE_END, RANGE_START};
use std::fmt::Write;

fn op_str(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Rem => "%",
        BinOp::Lt => "<",
        BinOp::Le => "<=",
        BinOp::Eq => "==",
        BinOp::Ne => "!=",
        BinOp::And => "&",
        BinOp::Or => "|",
        BinOp::Xor => "^",
        BinOp::Shl => "<<",
        BinOp::Shr => ">>",
    }
}

fn var_str(v: Var) -> String {
    match v {
        RANGE_START => "range.start".to_string(),
        RANGE_END => "range.end".to_string(),
        Var(i) => format!("v{i}"),
    }
}

/// Render one expression.
pub fn expr_to_string(e: &Expr) -> String {
    match e {
        Expr::ConstInt(v) => v.to_string(),
        Expr::ConstFloat(v) => format!("{v:?}"),
        Expr::Var(v) => var_str(*v),
        Expr::Bin(op, a, b) => {
            format!(
                "({} {} {})",
                expr_to_string(a),
                op_str(*op),
                expr_to_string(b)
            )
        }
        Expr::IntToFloat(a) => format!("(float){}", expr_to_string(a)),
        Expr::BitsToFloat(a) => format!("bits_to_f64({})", expr_to_string(a)),
        Expr::StreamRead {
            stream,
            offset,
            width,
        } => {
            format!("stream{}[{}; {}B]", stream, expr_to_string(offset), width)
        }
        Expr::DevRead { buf, offset, width } => {
            format!("dev{}[{}; {}B]", buf, expr_to_string(offset), width)
        }
    }
}

fn write_stmts(out: &mut String, stmts: &[Stmt], indent: usize) {
    let pad = "    ".repeat(indent);
    for s in stmts {
        match s {
            Stmt::Assign(v, e) => {
                let _ = writeln!(out, "{pad}{} = {};", var_str(*v), expr_to_string(e));
            }
            Stmt::StreamWrite {
                stream,
                offset,
                width,
                value,
            } => {
                let _ = writeln!(
                    out,
                    "{pad}stream{}[{}; {}B] = {};",
                    stream,
                    expr_to_string(offset),
                    width,
                    expr_to_string(value)
                );
            }
            Stmt::DevWrite {
                buf,
                offset,
                width,
                value,
            } => {
                let _ = writeln!(
                    out,
                    "{pad}dev{}[{}; {}B] = {};",
                    buf,
                    expr_to_string(offset),
                    width,
                    expr_to_string(value)
                );
            }
            Stmt::DevAtomicAdd { buf, offset, value } => {
                let _ = writeln!(
                    out,
                    "{pad}atomicAdd(&dev{}[{}], {});",
                    buf,
                    expr_to_string(offset),
                    expr_to_string(value)
                );
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                let _ = writeln!(out, "{pad}if {} {{", expr_to_string(cond));
                write_stmts(out, then_body, indent + 1);
                if !else_body.is_empty() {
                    let _ = writeln!(out, "{pad}}} else {{");
                    write_stmts(out, else_body, indent + 1);
                }
                let _ = writeln!(out, "{pad}}}");
            }
            Stmt::While { cond, body } => {
                let _ = writeln!(out, "{pad}while {} {{", expr_to_string(cond));
                write_stmts(out, body, indent + 1);
                let _ = writeln!(out, "{pad}}}");
            }
            Stmt::Alu(n) => {
                let _ = writeln!(out, "{pad}/* {n} ALU ops */");
            }
            Stmt::EmitRead {
                stream,
                offset,
                width,
            } => {
                let _ = writeln!(
                    out,
                    "{pad}addrBuf.push_read(stream{}, {}, {}B);",
                    stream,
                    expr_to_string(offset),
                    width
                );
            }
            Stmt::EmitWrite {
                stream,
                offset,
                width,
            } => {
                let _ = writeln!(
                    out,
                    "{pad}addrBuf.push_write(stream{}, {}, {}B);",
                    stream,
                    expr_to_string(offset),
                    width
                );
            }
        }
    }
}

/// Render a whole kernel.
pub fn kernel_to_string(k: &KernelIr) -> String {
    let mut out = String::new();
    let rec = match k.record_size {
        Some(r) => format!("{r}B records"),
        None => "variable-length records".to_string(),
    };
    let _ = writeln!(
        out,
        "kernel {}({rec}, {} device buffers) {{",
        k.name, k.num_dev_bufs
    );
    write_stmts(&mut out, &k.body, 1);
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_expressions() {
        let e = Expr::add(Expr::var(RANGE_START), Expr::int(8));
        assert_eq!(expr_to_string(&e), "(range.start + 8)");
        let r = Expr::stream_read(0, Expr::var(Var(2)), 8);
        assert_eq!(expr_to_string(&r), "stream0[v2; 8B]");
    }

    #[test]
    fn renders_a_loop_kernel() {
        let k = KernelIr {
            name: "demo",
            record_size: Some(8),
            halo_bytes: 0,
            num_dev_bufs: 1,
            body: vec![
                Stmt::Assign(Var(2), Expr::var(RANGE_START)),
                Stmt::While {
                    cond: Expr::lt(Expr::var(Var(2)), Expr::var(RANGE_END)),
                    body: vec![
                        Stmt::EmitRead {
                            stream: 0,
                            offset: Expr::var(Var(2)),
                            width: 8,
                        },
                        Stmt::Assign(Var(2), Expr::add(Expr::var(Var(2)), Expr::int(8))),
                    ],
                },
            ],
        };
        let s = kernel_to_string(&k);
        assert!(s.contains("kernel demo(8B records, 1 device buffers) {"));
        assert!(s.contains("while (v2 < range.end) {"));
        assert!(s.contains("addrBuf.push_read(stream0, v2, 8B);"));
        assert!(s.ends_with("}\n"));
    }

    #[test]
    fn renders_if_else_and_atomics() {
        let k = KernelIr {
            name: "b",
            record_size: None,
            halo_bytes: 0,
            num_dev_bufs: 1,
            body: vec![Stmt::If {
                cond: Expr::int(1),
                then_body: vec![Stmt::DevAtomicAdd {
                    buf: 0,
                    offset: Expr::int(0),
                    value: Expr::int(1),
                }],
                else_body: vec![Stmt::Alu(3)],
            }],
        };
        let s = kernel_to_string(&k);
        assert!(s.contains("if 1 {"));
        assert!(s.contains("atomicAdd(&dev0[0], 1);"));
        assert!(s.contains("} else {"));
        assert!(s.contains("/* 3 ALU ops */"));
    }
}

//! Package an IR kernel (plus its compiler-derived address slice) as a
//! [`StreamKernel`] runnable by every implementation in the workspace.

use crate::interp::{run_addr_slice, run_kernel};
use crate::ir::KernelIr;
use crate::slice::SliceError;
use bk_runtime::ctx::AddrGenCtx;
use bk_runtime::{DevBufId, KernelCtx, StreamKernel};
use std::ops::Range;

/// An IR kernel compiled for BigKernel execution: the `addresses()` half is
/// *derived* by [`slice_addresses`](crate::slice::slice_addresses), not hand-written — running it under
/// `BigKernelConfig::verify_reads` machine-checks the transformation.
pub struct IrKernel {
    full: KernelIr,
    slice: KernelIr,
    dev_bufs: Vec<DevBufId>,
    pass_log: crate::pass::PassLog,
}

impl IrKernel {
    /// Compile `full` (derive the address slice via the chained-pass
    /// pipeline, see [`crate::pass`]) and bind its device-buffer parameters.
    pub fn compile(full: KernelIr, dev_bufs: Vec<DevBufId>) -> Result<Self, SliceError> {
        assert!(
            dev_bufs.len() >= full.num_dev_bufs as usize,
            "kernel expects {} device buffers, got {}",
            full.num_dev_bufs,
            dev_bufs.len()
        );
        let (slice, pass_log) =
            crate::pass::run_passes(&full, crate::pass::ADDRESS_SLICE_PIPELINE)?;
        Ok(IrKernel {
            full,
            slice,
            dev_bufs,
            pass_log,
        })
    }

    /// The derived address slice (for inspection/tests).
    pub fn address_slice(&self) -> &KernelIr {
        &self.slice
    }

    /// The names of the compile passes that produced the address slice.
    pub fn pass_log(&self) -> &crate::pass::PassLog {
        &self.pass_log
    }
}

impl StreamKernel for IrKernel {
    fn name(&self) -> &'static str {
        self.full.name
    }

    fn record_size(&self) -> Option<u64> {
        self.full.record_size
    }

    fn halo_bytes(&self) -> u64 {
        self.full.halo_bytes
    }

    fn addresses(&self, ctx: &mut AddrGenCtx<'_>, range: Range<u64>) {
        run_addr_slice(&self.slice, ctx, &self.dev_bufs, range);
    }

    fn process(&self, ctx: &mut dyn KernelCtx, range: Range<u64>) {
        run_kernel(&self.full, ctx, &self.dev_bufs, range);
    }

    fn access_summary(&self) -> Option<bk_runtime::fusion::AccessSummary> {
        crate::fuse::derive_summary(&self.full)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{BinOp, Expr, Stmt, Var, RANGE_END, RANGE_START};
    use bk_runtime::{
        run_bigkernel, BigKernelConfig, LaunchConfig, Machine, StreamArray, StreamId,
    };

    /// `while i < end { acc += read8(i); write4(i+8) = lo32(read8(i+...)); }`
    /// — a sum kernel with 16-byte records.
    fn sum_ir() -> KernelIr {
        let i = Var(2);
        let sum = Var(3);
        KernelIr {
            name: "ir-sum",
            record_size: Some(16),
            halo_bytes: 0,
            num_dev_bufs: 1,
            body: vec![
                Stmt::Assign(i, Expr::var(RANGE_START)),
                Stmt::Assign(sum, Expr::int(0)),
                Stmt::While {
                    cond: Expr::lt(Expr::var(i), Expr::var(RANGE_END)),
                    body: vec![
                        Stmt::Assign(
                            sum,
                            Expr::add(Expr::var(sum), Expr::stream_read(0, Expr::var(i), 8)),
                        ),
                        Stmt::Assign(i, Expr::add(Expr::var(i), Expr::int(16))),
                    ],
                },
                Stmt::If {
                    cond: Expr::bin(BinOp::Ne, Expr::var(RANGE_START), Expr::var(RANGE_END)),
                    then_body: vec![Stmt::DevAtomicAdd {
                        buf: 0,
                        offset: Expr::int(0),
                        value: Expr::var(sum),
                    }],
                    else_body: vec![],
                },
            ],
        }
    }

    #[test]
    fn compiled_ir_kernel_runs_on_the_pipeline() {
        let mut m = Machine::test_platform();
        let n = 2048u64;
        let region = m.hmem.alloc(n * 16);
        let mut expected = 0u64;
        for r in 0..n {
            m.hmem.write_u64(region, r * 16, r * 11 + 3);
            expected = expected.wrapping_add(r * 11 + 3);
        }
        let stream = StreamArray::map(&m, StreamId(0), region);
        let acc = m.gmem.alloc(8);
        let kernel = IrKernel::compile(sum_ir(), vec![acc]).expect("sliceable");

        let cfg = BigKernelConfig {
            chunk_input_bytes: 4096,
            ..BigKernelConfig::default()
        };
        assert!(
            cfg.verify_reads,
            "the FIFO cross-check must be on for this test"
        );
        let r = run_bigkernel(&mut m, &kernel, &[stream], LaunchConfig::new(1, 32), &cfg);
        assert_eq!(m.gmem.read_u64(acc, 0), expected, "IR kernel result");
        assert!(
            r.metrics.get("addr.patterns_found") > 0,
            "sequential reads compress"
        );
    }

    #[test]
    fn slice_matches_kernel_accesses_exactly() {
        // The pipeline test above already proves it via verify_reads; here
        // check the emitted addresses directly.
        let mut m = Machine::test_platform();
        let acc = m.gmem.alloc(8);
        let kernel = IrKernel::compile(sum_ir(), vec![acc]).unwrap();
        let mut trace = bk_gpu::ThreadTrace::default();
        let mut actx = bk_runtime::ctx::AddrGenCtx::new(&m.gmem, &mut trace);
        kernel.addresses(&mut actx, 0..64);
        let (reads, writes) = actx.finish();
        assert_eq!(reads.len(), 4); // 4 records of 16 bytes
        assert_eq!(reads[2].offset, 32);
        assert!(writes.is_empty());
    }

    #[test]
    fn indirect_ir_kernel_fails_to_compile() {
        let k = KernelIr {
            name: "bad",
            record_size: Some(8),
            halo_bytes: 0,
            num_dev_bufs: 0,
            body: vec![
                Stmt::Assign(Var(2), Expr::stream_read(0, Expr::var(RANGE_START), 8)),
                Stmt::Assign(Var(3), Expr::stream_read(0, Expr::var(Var(2)), 8)),
            ],
        };
        assert!(IrKernel::compile(k, vec![]).is_err());
    }

    #[test]
    fn address_slice_is_exposed() {
        let mut m = Machine::test_platform();
        let acc = m.gmem.alloc(8);
        let kernel = IrKernel::compile(sum_ir(), vec![acc]).unwrap();
        // The slice must be free of compute statements.
        assert!(kernel
            .address_slice()
            .body
            .iter()
            .all(|s| !matches!(s, Stmt::DevAtomicAdd { .. } | Stmt::Alu(_))));
    }
}

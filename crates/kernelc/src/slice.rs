//! The address-slice extraction pass (the paper's compile-time half).
//!
//! Produces, from a full kernel, the address-generation program: control
//! flow and address arithmetic are kept, stream accesses become
//! `EmitRead`/`EmitWrite` address-buffer stores, and everything else
//! (computation, device-table updates) is deleted.
//!
//! The pass refuses kernels where an access address or a branch condition
//! depends on *loaded stream data* — the paper's indirection limitation, in
//! which case the transformation "defaults to fetching all data" (run such
//! kernels with `BigKernelConfig::overlap_only()`).

use crate::ir::{contains_stream_read, expr_vars, visit_expr, Expr, KernelIr, Stmt, Var};
use std::collections::BTreeSet;

/// Why a kernel cannot be sliced.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SliceError {
    /// A stream-access address depends on loaded stream data.
    AddressIndirection,
    /// A branch/loop condition depends on loaded stream data.
    DataDependentControlFlow,
    /// The input already contains slice-only statements.
    AlreadySliced,
}

impl std::fmt::Display for SliceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SliceError::AddressIndirection => {
                write!(f, "stream access address depends on loaded stream data")
            }
            SliceError::DataDependentControlFlow => {
                write!(f, "control flow depends on loaded stream data")
            }
            SliceError::AlreadySliced => write!(f, "kernel already contains emit statements"),
        }
    }
}

impl std::error::Error for SliceError {}

/// Compute the address-generation slice of `kernel`.
pub fn slice_addresses(kernel: &KernelIr) -> Result<KernelIr, SliceError> {
    // --- Taint analysis: which variables carry loaded stream data? --------
    let mut tainted: BTreeSet<Var> = BTreeSet::new();
    loop {
        let before = tainted.len();
        taint_stmts(&kernel.body, &mut tainted)?;
        if tainted.len() == before {
            break;
        }
    }

    // --- Relevance analysis: which variables feed addresses or the
    // *surviving* control flow? Tainted conditions never survive (their
    // branches are pure computation or the kernel is rejected below), so
    // their variables are not relevance seeds.
    let mut relevant: BTreeSet<Var> = BTreeSet::new();
    seed_relevant(&kernel.body, &tainted, &mut relevant);
    loop {
        let before = relevant.len();
        propagate_relevant(&kernel.body, &mut relevant);
        if relevant.len() == before {
            break;
        }
    }

    // Validate: no access address may be tainted, and any tainted branch
    // must be droppable (pure computation).
    check_clean(&kernel.body, &tainted, &relevant)?;

    // --- Rebuild the sliced body. -----------------------------------------
    let body = slice_stmts(&kernel.body, &tainted, &relevant);
    Ok(KernelIr {
        name: kernel.name,
        record_size: kernel.record_size,
        halo_bytes: kernel.halo_bytes,
        num_dev_bufs: kernel.num_dev_bufs,
        body,
    })
}

/// A statement list is *droppable* when removing it wholesale cannot change
/// the address stream: it performs no mapped-stream accesses and assigns no
/// address-relevant variable.
fn droppable(stmts: &[Stmt], relevant: &BTreeSet<Var>) -> bool {
    stmts.iter().all(|s| match s {
        Stmt::Assign(v, e) => !relevant.contains(v) && !contains_stream_read(e),
        Stmt::StreamWrite { .. } => false,
        Stmt::DevWrite { offset, value, .. } | Stmt::DevAtomicAdd { offset, value, .. } => {
            !contains_stream_read(offset) && !contains_stream_read(value)
        }
        Stmt::If {
            cond,
            then_body,
            else_body,
        } => {
            !contains_stream_read(cond)
                && droppable(then_body, relevant)
                && droppable(else_body, relevant)
        }
        Stmt::While { cond, body } => !contains_stream_read(cond) && droppable(body, relevant),
        Stmt::Alu(_) => true,
        Stmt::EmitRead { .. } | Stmt::EmitWrite { .. } => false,
    })
}

fn expr_tainted(e: &Expr, tainted: &BTreeSet<Var>) -> bool {
    contains_stream_read(e) || expr_vars(e).iter().any(|v| tainted.contains(v))
}

fn taint_stmts(stmts: &[Stmt], tainted: &mut BTreeSet<Var>) -> Result<(), SliceError> {
    for s in stmts {
        match s {
            Stmt::Assign(v, e) => {
                if expr_tainted(e, tainted) {
                    tainted.insert(*v);
                }
            }
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                taint_stmts(then_body, tainted)?;
                taint_stmts(else_body, tainted)?;
            }
            Stmt::While { body, .. } => taint_stmts(body, tainted)?,
            Stmt::EmitRead { .. } | Stmt::EmitWrite { .. } => {
                return Err(SliceError::AlreadySliced)
            }
            Stmt::StreamWrite { .. }
            | Stmt::DevWrite { .. }
            | Stmt::DevAtomicAdd { .. }
            | Stmt::Alu(_) => {}
        }
    }
    Ok(())
}

/// Every stream-access *address* inside `e` must be untainted.
fn check_expr_addresses(e: &Expr, tainted: &BTreeSet<Var>) -> Result<(), SliceError> {
    let mut err = None;
    visit_expr(e, &mut |x| {
        if let Expr::StreamRead { offset, .. } = x {
            if err.is_none() && expr_tainted(offset, tainted) {
                err = Some(SliceError::AddressIndirection);
            }
        }
    });
    err.map_or(Ok(()), Err)
}

fn check_clean(
    stmts: &[Stmt],
    tainted: &BTreeSet<Var>,
    relevant: &BTreeSet<Var>,
) -> Result<(), SliceError> {
    for s in stmts {
        match s {
            Stmt::Assign(_, e) => check_expr_addresses(e, tainted)?,
            Stmt::StreamWrite { offset, value, .. } => {
                if expr_tainted(offset, tainted) {
                    return Err(SliceError::AddressIndirection);
                }
                check_expr_addresses(offset, tainted)?;
                check_expr_addresses(value, tainted)?;
            }
            Stmt::DevWrite { offset, value, .. } | Stmt::DevAtomicAdd { offset, value, .. } => {
                check_expr_addresses(offset, tainted)?;
                check_expr_addresses(value, tainted)?;
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                if expr_tainted(cond, tainted) {
                    // A data-dependent branch is fine *iff* it is pure
                    // computation — the slice drops it wholesale. Branches
                    // guarding stream accesses or address state are the
                    // paper's unsupported case.
                    if droppable(then_body, relevant) && droppable(else_body, relevant) {
                        continue;
                    }
                    return Err(SliceError::DataDependentControlFlow);
                }
                check_expr_addresses(cond, tainted)?;
                check_clean(then_body, tainted, relevant)?;
                check_clean(else_body, tainted, relevant)?;
            }
            Stmt::While { cond, body } => {
                if expr_tainted(cond, tainted) {
                    if droppable(body, relevant) {
                        continue;
                    }
                    return Err(SliceError::DataDependentControlFlow);
                }
                check_expr_addresses(cond, tainted)?;
                check_clean(body, tainted, relevant)?;
            }
            Stmt::Alu(_) | Stmt::EmitRead { .. } | Stmt::EmitWrite { .. } => {}
        }
    }
    Ok(())
}

/// Seed relevance with variables used in access addresses and (untainted)
/// conditions.
fn seed_relevant(stmts: &[Stmt], tainted: &BTreeSet<Var>, relevant: &mut BTreeSet<Var>) {
    let seed_expr_addresses = |e: &Expr, relevant: &mut BTreeSet<Var>| {
        visit_expr(e, &mut |x| {
            if let Expr::StreamRead { offset, .. } = x {
                relevant.extend(expr_vars(offset));
            }
        });
    };
    for s in stmts {
        match s {
            Stmt::Assign(_, e) => seed_expr_addresses(e, relevant),
            Stmt::StreamWrite { offset, value, .. } => {
                relevant.extend(expr_vars(offset));
                seed_expr_addresses(offset, relevant);
                seed_expr_addresses(value, relevant);
            }
            Stmt::DevWrite { offset, value, .. } | Stmt::DevAtomicAdd { offset, value, .. } => {
                seed_expr_addresses(offset, relevant);
                seed_expr_addresses(value, relevant);
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                if !expr_tainted(cond, tainted) {
                    relevant.extend(expr_vars(cond));
                }
                seed_expr_addresses(cond, relevant);
                seed_relevant(then_body, tainted, relevant);
                seed_relevant(else_body, tainted, relevant);
            }
            Stmt::While { cond, body } => {
                if !expr_tainted(cond, tainted) {
                    relevant.extend(expr_vars(cond));
                }
                seed_expr_addresses(cond, relevant);
                seed_relevant(body, tainted, relevant);
            }
            Stmt::Alu(_) | Stmt::EmitRead { .. } | Stmt::EmitWrite { .. } => {}
        }
    }
}

/// Backward propagation: definitions of relevant variables make their
/// operands relevant.
fn propagate_relevant(stmts: &[Stmt], relevant: &mut BTreeSet<Var>) {
    for s in stmts {
        match s {
            Stmt::Assign(v, e) if relevant.contains(v) => {
                relevant.extend(expr_vars(e));
            }
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                propagate_relevant(then_body, relevant);
                propagate_relevant(else_body, relevant);
            }
            Stmt::While { body, .. } => propagate_relevant(body, relevant),
            _ => {}
        }
    }
}

/// Collect `EmitRead`s for every stream read inside `e`, in evaluation
/// order (left-to-right, offsets before the access).
fn extract_reads(e: &Expr, out: &mut Vec<Stmt>) {
    match e {
        Expr::Bin(_, a, b) => {
            extract_reads(a, out);
            extract_reads(b, out);
        }
        Expr::IntToFloat(a) | Expr::BitsToFloat(a) => extract_reads(a, out),
        Expr::StreamRead {
            stream,
            offset,
            width,
        } => {
            extract_reads(offset, out);
            out.push(Stmt::EmitRead {
                stream: *stream,
                offset: (**offset).clone(),
                width: *width,
            });
        }
        Expr::DevRead { offset, .. } => extract_reads(offset, out),
        Expr::ConstInt(_) | Expr::ConstFloat(_) | Expr::Var(_) => {}
    }
}

fn slice_stmts(stmts: &[Stmt], tainted: &BTreeSet<Var>, relevant: &BTreeSet<Var>) -> Vec<Stmt> {
    let mut out = Vec::new();
    for s in stmts {
        match s {
            Stmt::Assign(v, e) => {
                if relevant.contains(v) {
                    // Guaranteed free of stream reads by the taint check.
                    out.push(Stmt::Assign(*v, e.clone()));
                } else {
                    extract_reads(e, &mut out);
                }
            }
            Stmt::StreamWrite {
                stream,
                offset,
                width,
                value,
            } => {
                extract_reads(value, &mut out);
                out.push(Stmt::EmitWrite {
                    stream: *stream,
                    offset: offset.clone(),
                    width: *width,
                });
            }
            Stmt::DevWrite { offset, value, .. } | Stmt::DevAtomicAdd { offset, value, .. } => {
                extract_reads(offset, &mut out);
                extract_reads(value, &mut out);
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                if expr_tainted(cond, tainted) {
                    // Validated droppable in check_clean: pure computation.
                    continue;
                }
                let t = slice_stmts(then_body, tainted, relevant);
                let e = slice_stmts(else_body, tainted, relevant);
                if !t.is_empty() || !e.is_empty() {
                    out.push(Stmt::If {
                        cond: cond.clone(),
                        then_body: t,
                        else_body: e,
                    });
                }
            }
            Stmt::While { cond, body } => {
                if expr_tainted(cond, tainted) {
                    continue; // validated droppable
                }
                out.push(Stmt::While {
                    cond: cond.clone(),
                    body: slice_stmts(body, tainted, relevant),
                });
            }
            Stmt::Alu(_) => {} // computation removed — addr-gen stays cheap
            Stmt::EmitRead { .. } | Stmt::EmitWrite { .. } => {
                unreachable!("rejected by taint_stmts")
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{RANGE_END, RANGE_START};

    fn v(i: u32) -> Var {
        Var(i)
    }

    /// `i = start; while i < end { sum += read8(0, i); i += 16 }` plus a
    /// final device update using sum.
    fn sum_kernel() -> KernelIr {
        let i = v(2);
        let sum = v(3);
        KernelIr {
            name: "sum",
            record_size: Some(16),
            halo_bytes: 0,
            num_dev_bufs: 1,
            body: vec![
                Stmt::Assign(i, Expr::var(RANGE_START)),
                Stmt::Assign(sum, Expr::int(0)),
                Stmt::While {
                    cond: Expr::lt(Expr::var(i), Expr::var(RANGE_END)),
                    body: vec![
                        Stmt::Assign(
                            sum,
                            Expr::add(Expr::var(sum), Expr::stream_read(0, Expr::var(i), 8)),
                        ),
                        Stmt::Alu(3),
                        Stmt::Assign(i, Expr::add(Expr::var(i), Expr::int(16))),
                    ],
                },
                Stmt::DevAtomicAdd {
                    buf: 0,
                    offset: Expr::int(0),
                    value: Expr::var(sum),
                },
            ],
        }
    }

    #[test]
    fn sum_kernel_slices_to_emit_loop() {
        let s = slice_addresses(&sum_kernel()).expect("should slice");
        // Expect: i = start; while i < end { EmitRead; i += 16 }
        assert_eq!(s.body.len(), 2, "{:#?}", s.body);
        match &s.body[1] {
            Stmt::While { body, .. } => {
                assert_eq!(body.len(), 2);
                assert!(matches!(
                    body[0],
                    Stmt::EmitRead {
                        stream: 0,
                        width: 8,
                        ..
                    }
                ));
                assert!(matches!(body[1], Stmt::Assign(_, _)));
            }
            other => panic!("expected while, got {other:?}"),
        }
    }

    #[test]
    fn alu_and_dev_ops_are_removed() {
        let s = slice_addresses(&sum_kernel()).unwrap();
        fn no_compute(stmts: &[Stmt]) -> bool {
            stmts.iter().all(|s| match s {
                Stmt::Alu(_) | Stmt::DevAtomicAdd { .. } | Stmt::DevWrite { .. } => false,
                Stmt::While { body, .. } => no_compute(body),
                Stmt::If {
                    then_body,
                    else_body,
                    ..
                } => no_compute(then_body) && no_compute(else_body),
                _ => true,
            })
        }
        assert!(no_compute(&s.body));
    }

    #[test]
    fn stream_write_becomes_emit_write() {
        let i = v(2);
        let k = KernelIr {
            name: "w",
            record_size: Some(8),
            halo_bytes: 0,
            num_dev_bufs: 0,
            body: vec![
                Stmt::Assign(i, Expr::var(RANGE_START)),
                Stmt::StreamWrite {
                    stream: 0,
                    offset: Expr::var(i),
                    width: 4,
                    value: Expr::stream_read(0, Expr::add(Expr::var(i), Expr::int(4)), 4),
                },
            ],
        };
        let s = slice_addresses(&k).unwrap();
        // read of the value source emitted before the write address
        assert!(matches!(s.body[1], Stmt::EmitRead { width: 4, .. }));
        assert!(matches!(s.body[2], Stmt::EmitWrite { width: 4, .. }));
    }

    #[test]
    fn address_indirection_is_rejected() {
        // offset of the second read depends on the first read's value
        let i = v(2);
        let ptr = v(3);
        let k = KernelIr {
            name: "indirect",
            record_size: Some(8),
            halo_bytes: 0,
            num_dev_bufs: 0,
            body: vec![
                Stmt::Assign(i, Expr::var(RANGE_START)),
                Stmt::Assign(ptr, Expr::stream_read(0, Expr::var(i), 8)),
                Stmt::Assign(v(4), Expr::stream_read(0, Expr::var(ptr), 8)),
            ],
        };
        assert_eq!(slice_addresses(&k), Err(SliceError::AddressIndirection));
    }

    #[test]
    fn data_dependent_branch_guarding_accesses_is_rejected() {
        // A branch on loaded data whose body READS the stream: the address
        // stream depends on data the addr-gen threads do not have — the
        // paper's "flow control based on application data" fallback case.
        let i = v(2);
        let flag = v(3);
        let k = KernelIr {
            name: "cond",
            record_size: Some(8),
            halo_bytes: 0,
            num_dev_bufs: 0,
            body: vec![
                Stmt::Assign(i, Expr::var(RANGE_START)),
                Stmt::Assign(flag, Expr::stream_read(0, Expr::var(i), 1)),
                Stmt::If {
                    cond: Expr::var(flag),
                    then_body: vec![Stmt::Assign(
                        v(4),
                        Expr::stream_read(0, Expr::add(Expr::var(i), Expr::int(1)), 1),
                    )],
                    else_body: vec![],
                },
            ],
        };
        assert_eq!(
            slice_addresses(&k),
            Err(SliceError::DataDependentControlFlow)
        );
    }

    #[test]
    fn pure_computation_branches_on_data_are_dropped() {
        // Branching on loaded data is fine when the branch only computes —
        // the slice deletes it along with the computation (K-means' argmin
        // comparison is exactly this shape).
        let i = v(2);
        let x = v(3);
        let best = v(4);
        let k = KernelIr {
            name: "argminish",
            record_size: Some(8),
            halo_bytes: 0,
            num_dev_bufs: 1,
            body: vec![
                Stmt::Assign(i, Expr::var(RANGE_START)),
                Stmt::While {
                    cond: Expr::lt(Expr::var(i), Expr::var(RANGE_END)),
                    body: vec![
                        Stmt::Assign(x, Expr::stream_read(0, Expr::var(i), 8)),
                        Stmt::If {
                            cond: Expr::lt(Expr::var(x), Expr::var(best)),
                            then_body: vec![Stmt::Assign(best, Expr::var(x))],
                            else_body: vec![],
                        },
                        Stmt::Assign(i, Expr::add(Expr::var(i), Expr::int(8))),
                    ],
                },
                Stmt::DevAtomicAdd {
                    buf: 0,
                    offset: Expr::int(0),
                    value: Expr::var(best),
                },
            ],
        };
        let s = slice_addresses(&k).expect("droppable branch must not block slicing");
        // The loop survives with EmitRead + induction update; the If is gone.
        fn has_if(stmts: &[Stmt]) -> bool {
            stmts.iter().any(|s| match s {
                Stmt::If { .. } => true,
                Stmt::While { body, .. } => has_if(body),
                _ => false,
            })
        }
        assert!(!has_if(&s.body));
        fn count_emits(stmts: &[Stmt]) -> usize {
            stmts
                .iter()
                .map(|s| match s {
                    Stmt::EmitRead { .. } => 1,
                    Stmt::While { body, .. } => count_emits(body),
                    Stmt::If {
                        then_body,
                        else_body,
                        ..
                    } => count_emits(then_body) + count_emits(else_body),
                    _ => 0,
                })
                .sum()
        }
        assert_eq!(count_emits(&s.body), 1);
    }

    #[test]
    fn dev_read_driven_addresses_are_allowed() {
        // Index in device memory drives the stream address — the indexed
        // Affinity shape; legal because the index is device-resident.
        let i = v(2);
        let off = v(3);
        let k = KernelIr {
            name: "indexed",
            record_size: None,
            halo_bytes: 0,
            num_dev_bufs: 1,
            body: vec![
                Stmt::Assign(i, Expr::var(RANGE_START)),
                Stmt::Assign(
                    off,
                    Expr::DevRead {
                        buf: 0,
                        offset: Box::new(Expr::var(i)),
                        width: 4,
                    },
                ),
                Stmt::Assign(v(4), Expr::stream_read(0, Expr::var(off), 8)),
            ],
        };
        let s = slice_addresses(&k).expect("dev-read addressing is sliceable");
        // The off = DevRead assignment must be kept (it feeds an address).
        assert!(s
            .body
            .iter()
            .any(|st| matches!(st, Stmt::Assign(Var(3), _))));
        assert!(s.body.iter().any(|st| matches!(st, Stmt::EmitRead { .. })));
    }

    #[test]
    fn empty_if_branches_are_dropped() {
        let k = KernelIr {
            name: "deadif",
            record_size: Some(8),
            halo_bytes: 0,
            num_dev_bufs: 0,
            body: vec![Stmt::If {
                cond: Expr::int(1),
                then_body: vec![Stmt::Alu(5)],
                else_body: vec![Stmt::Alu(7)],
            }],
        };
        let s = slice_addresses(&k).unwrap();
        assert!(s.body.is_empty());
    }

    #[test]
    fn already_sliced_input_rejected() {
        let k = KernelIr {
            name: "sliced",
            record_size: Some(8),
            halo_bytes: 0,
            num_dev_bufs: 0,
            body: vec![Stmt::EmitRead {
                stream: 0,
                offset: Expr::int(0),
                width: 8,
            }],
        };
        assert_eq!(slice_addresses(&k), Err(SliceError::AlreadySliced));
    }
}

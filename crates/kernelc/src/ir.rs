//! The kernel IR: a small typed imperative language, just expressive enough
//! for streaming kernels (loops over records, field reads, table updates).

/// A variable slot. Variables 0 and 1 are pre-bound to the thread's range
/// start and end; the rest are kernel-local.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub u32);

/// Pre-bound variable: byte offset where the thread's range starts.
pub const RANGE_START: Var = Var(0);
/// Pre-bound variable: byte offset where the thread's range ends.
pub const RANGE_END: Var = Var(1);
/// First variable id free for kernel locals.
pub const FIRST_LOCAL: u32 = 2;

/// Value types. Integers are carried as `u64`, floats as `f64`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Ty {
    Int,
    Float,
}

/// Binary operators. Comparisons yield integer 0/1.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Lt,
    Le,
    Eq,
    Ne,
    And,
    Or,
    Xor,
    Shl,
    Shr,
}

/// Expressions.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    ConstInt(u64),
    ConstFloat(f64),
    Var(Var),
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Convert an integer's low bits to float (u64 -> f64 value cast).
    IntToFloat(Box<Expr>),
    /// Reinterpret an 8-byte integer load as an f64 (bit cast).
    BitsToFloat(Box<Expr>),
    /// Read `width` bytes of mapped stream `stream` at byte `offset`.
    StreamRead {
        stream: u32,
        offset: Box<Expr>,
        width: u8,
    },
    /// Read `width` bytes of device buffer parameter `buf` at `offset`.
    DevRead {
        buf: u32,
        offset: Box<Expr>,
        width: u8,
    },
}

#[allow(clippy::should_implement_trait)] // builder shorthand, not operator impls
impl Expr {
    pub fn var(v: Var) -> Expr {
        Expr::Var(v)
    }

    pub fn int(v: u64) -> Expr {
        Expr::ConstInt(v)
    }

    pub fn bin(op: BinOp, a: Expr, b: Expr) -> Expr {
        Expr::Bin(op, Box::new(a), Box::new(b))
    }

    pub fn add(a: Expr, b: Expr) -> Expr {
        Expr::bin(BinOp::Add, a, b)
    }

    pub fn lt(a: Expr, b: Expr) -> Expr {
        Expr::bin(BinOp::Lt, a, b)
    }

    pub fn stream_read(stream: u32, offset: Expr, width: u8) -> Expr {
        Expr::StreamRead {
            stream,
            offset: Box::new(offset),
            width,
        }
    }
}

/// Statements.
#[derive(Clone, Debug, PartialEq)]
pub enum Stmt {
    /// Bind/overwrite a variable.
    Assign(Var, Expr),
    /// Write `value` (width bytes) to mapped stream at `offset`.
    StreamWrite {
        stream: u32,
        offset: Expr,
        width: u8,
        value: Expr,
    },
    /// Write to a device buffer.
    DevWrite {
        buf: u32,
        offset: Expr,
        width: u8,
        value: Expr,
    },
    /// Atomic fetch-add (u64) on a device buffer cell.
    DevAtomicAdd {
        buf: u32,
        offset: Expr,
        value: Expr,
    },
    If {
        cond: Expr,
        then_body: Vec<Stmt>,
        else_body: Vec<Stmt>,
    },
    While {
        cond: Expr,
        body: Vec<Stmt>,
    },
    /// Account explicit arithmetic work (maps to `KernelCtx::alu`).
    Alu(u64),
    /// *(slice output only)* store a read address to the address buffer.
    EmitRead {
        stream: u32,
        offset: Expr,
        width: u8,
    },
    /// *(slice output only)* store a write address to the address buffer.
    EmitWrite {
        stream: u32,
        offset: Expr,
        width: u8,
    },
}

/// A complete kernel: device-buffer parameters are referenced by index
/// (bound at execution time), streams by id.
#[derive(Clone, Debug, PartialEq)]
pub struct KernelIr {
    pub name: &'static str,
    /// Fixed record size (None = variable length).
    pub record_size: Option<u64>,
    pub halo_bytes: u64,
    /// Number of device-buffer parameters the kernel expects.
    pub num_dev_bufs: u32,
    pub body: Vec<Stmt>,
}

/// Visit every sub-expression of `e` (pre-order), `e` included.
pub fn visit_expr<'a>(e: &'a Expr, f: &mut dyn FnMut(&'a Expr)) {
    f(e);
    match e {
        Expr::Bin(_, a, b) => {
            visit_expr(a, f);
            visit_expr(b, f);
        }
        Expr::IntToFloat(a) | Expr::BitsToFloat(a) => visit_expr(a, f),
        Expr::StreamRead { offset, .. } | Expr::DevRead { offset, .. } => visit_expr(offset, f),
        Expr::ConstInt(_) | Expr::ConstFloat(_) | Expr::Var(_) => {}
    }
}

/// Variables read anywhere inside `e`.
pub fn expr_vars(e: &Expr) -> Vec<Var> {
    let mut out = Vec::new();
    visit_expr(e, &mut |x| {
        if let Expr::Var(v) = x {
            out.push(*v);
        }
    });
    out
}

/// Whether `e` contains a mapped-stream read.
pub fn contains_stream_read(e: &Expr) -> bool {
    let mut found = false;
    visit_expr(e, &mut |x| {
        if matches!(x, Expr::StreamRead { .. }) {
            found = true;
        }
    });
    found
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_builders() {
        let e = Expr::add(Expr::var(RANGE_START), Expr::int(8));
        match e {
            Expr::Bin(BinOp::Add, a, b) => {
                assert_eq!(*a, Expr::Var(RANGE_START));
                assert_eq!(*b, Expr::ConstInt(8));
            }
            _ => panic!(),
        }
    }
}

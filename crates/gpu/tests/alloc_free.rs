//! Proof that the simulator's per-chunk hot loops are allocation-free in
//! steady state: `WarpAligner::align`, and the pooled addr-gen → assembly
//! path (`AddrGenScratch` recording/commit plus `assemble`).
//!
//! The counting allocator is process-global, so the tests serialize on a
//! mutex — a concurrently running test would pollute the count.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use bk_gpu::trace::{AccessClass, AccessKind, ThreadTrace, WarpAligner};
use bk_gpu::{DeviceSpec, WARP_SIZE};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static SERIAL: Mutex<()> = Mutex::new(());

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::SeqCst);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn align_performs_no_heap_allocations_in_steady_state() {
    let _serial = SERIAL.lock().unwrap();
    let spec = DeviceSpec::test_tiny();
    // A mixed workload touching every scratch path: stream reads/writes,
    // device atomics, multi-segment accesses, and shared-memory conflicts.
    let lanes: Vec<ThreadTrace> = (0..WARP_SIZE as u64)
        .map(|i| {
            let mut t = ThreadTrace::default();
            for k in 0..4u64 {
                t.record(
                    4096 + k * 128 + i * 4,
                    4,
                    AccessKind::Read,
                    AccessClass::StreamRead,
                );
                t.record(
                    1 << 20 | (i * 64 + k * 8),
                    8,
                    AccessKind::Write,
                    AccessClass::StreamWrite,
                );
                t.record(
                    (2 << 20) + (i % 4) * 8,
                    8,
                    AccessKind::Atomic,
                    AccessClass::Dev,
                );
            }
            t.record_shared((i as u32 % 8) * 512, 4);
            t.alu(10);
            t
        })
        .collect();

    let mut aligner = WarpAligner::new();
    // Warm-up: let every scratch vector grow to the workload's size.
    for _ in 0..3 {
        let _ = aligner.align(&spec, &lanes);
    }

    let before = ALLOCS.load(Ordering::SeqCst);
    for _ in 0..100 {
        let c = aligner.align(&spec, &lanes);
        assert!(c.mem.transactions > 0);
    }
    let after = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "align allocated {} times in steady state",
        after - before
    );
}

mod chunk {
    use bk_host::CacheSim;
    use bk_runtime::addr::LaneAddrs;
    use bk_runtime::assembly::{assemble, GatherConfig};
    use bk_runtime::pool::Compression;
    use bk_runtime::{
        AddrGenCtx, AddrGenScratch, AssemblyLayout, BigKernelConfig, Machine, StreamArray, StreamId,
    };

    pub const LANES: u64 = 8;
    pub const STEPS: u64 = 256;
    pub const LANE_SPAN: u64 = STEPS * 8;

    /// Record, commit, and assemble one chunk's worth of lane streams
    /// through the pooled fast path, then recycle everything back into the
    /// scratch's pool. Returns the gathered byte count.
    pub fn run_chunk(
        scratch: &mut AddrGenScratch,
        machine: &Machine,
        streams: &[StreamArray],
        cache: &mut CacheSim,
        cfg: &BigKernelConfig,
        trace: &mut bk_gpu::ThreadTrace,
    ) -> u64 {
        let mut lanes = scratch.pool.take_lanes();
        for lane in 0..LANES {
            scratch.begin_lane(cfg.pattern_recognition);
            let mut ctx = AddrGenCtx::recording(&machine.gmem, trace, &mut scratch.recorder);
            for k in 0..STEPS {
                ctx.emit_read(StreamId(0), lane * LANE_SPAN + k * 8, 8);
            }
            drop(ctx);
            let (reads, c) = scratch.commit_reads(cfg);
            assert_eq!(c, Compression::Pattern, "strided lane must compress");
            let (writes, _) = scratch.commit_writes(cfg);
            lanes.push(LaneAddrs { reads, writes });
        }
        let out = assemble(
            &machine.hmem,
            streams,
            &lanes,
            GatherConfig::new(AssemblyLayout::Interleaved, true),
            cache,
            &mut scratch.pool,
        );
        assert!(out.locality_order_used);
        let gathered = out.gathered_bytes;
        scratch.pool.give_output(out);
        scratch.pool.give_lanes(lanes);
        // Retire the chunk's arena window exactly like `BlockSlot::recycle`.
        scratch.pool.arena.reset();
        gathered
    }

    pub fn setup() -> (Machine, Vec<StreamArray>) {
        let mut m = Machine::test_platform();
        let data = vec![0xA5u8; (LANES * LANE_SPAN) as usize];
        let r = m.hmem.alloc_from(&data);
        let s = StreamArray::map(&m, StreamId(0), r);
        (m, vec![s])
    }
}

/// The tentpole guarantee: from the second chunk on, address generation
/// (recording + online pattern detection + commit) and assembly (layout
/// build + gather into the pooled prefetch buffer) touch the heap zero
/// times — every vector cycles through the `StreamPool` freelists.
#[test]
fn addr_gen_and_assembly_second_chunk_allocates_nothing() {
    use std::sync::atomic::Ordering;

    let _serial = SERIAL.lock().unwrap();
    let (machine, streams) = chunk::setup();
    let cfg = bk_runtime::BigKernelConfig::default();
    let mut scratch = bk_runtime::AddrGenScratch::new();
    let mut cache = bk_host::CacheSim::xeon_llc();
    let mut trace = bk_gpu::ThreadTrace::default();

    // First chunk: grows every pooled vector (and the LLC sim) to size.
    let first = chunk::run_chunk(
        &mut scratch,
        &machine,
        &streams,
        &mut cache,
        &cfg,
        &mut trace,
    );
    assert_eq!(first, chunk::LANES * chunk::LANE_SPAN);

    // Second chunk onward: bit-for-bit the same work, zero allocations.
    let before = ALLOCS.load(Ordering::SeqCst);
    for _ in 0..10 {
        let g = chunk::run_chunk(
            &mut scratch,
            &machine,
            &streams,
            &mut cache,
            &cfg,
            &mut trace,
        );
        assert_eq!(g, first);
    }
    let after = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "addr-gen + assembly allocated {} times in steady state",
        after - before
    );
}

/// Observability zero-overhead guarantee: with span recording compiled in
/// (`bk-obs/trace`) but no live [`bk_obs::trace::start`] guard, walking a
/// schedule into a warmed [`bk_obs::MetricsRegistry`] touches the heap zero
/// times — counter and histogram slots are interned on first use, span
/// records are dropped at the thread-local check, and nothing grows.
#[test]
fn record_schedule_without_tracing_allocates_nothing() {
    use bk_simcore::{pipeline, SimTime, StageDef};

    let _serial = SERIAL.lock().unwrap();
    let spec = pipeline::PipelineSpec::new(vec![
        StageDef {
            name: "transfer",
            resource: "dma",
        },
        StageDef {
            name: "compute",
            resource: "gpu-comp",
        },
    ])
    .with_reuse(0, 1, 1);
    let t = SimTime::from_micros(1.0);
    let sched = pipeline::schedule(&spec, &vec![vec![t, t + t]; 8]);

    let mut metrics = bk_obs::MetricsRegistry::new();
    // Warm-up: interns every counter/histogram slot this schedule touches
    // and initializes the thread-local sink (lazily created on first use).
    bk_obs::record_schedule(&sched, 0, SimTime::ZERO, &mut metrics);

    let before = ALLOCS.load(Ordering::SeqCst);
    for wave in 1..=100 {
        bk_obs::record_schedule(&sched, wave * 8, SimTime::ZERO, &mut metrics);
    }
    let after = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "untraced record_schedule allocated {} times in steady state",
        after - before
    );
    assert_eq!(metrics.hist("hist.span.transfer").unwrap().count(), 8 * 101);
}

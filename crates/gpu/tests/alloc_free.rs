//! Proof that `WarpAligner::align` is allocation-free in steady state.
//!
//! This file must contain exactly ONE test: the counting allocator is
//! process-global, and a concurrently running test would pollute the count.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use bk_gpu::trace::{AccessClass, AccessKind, ThreadTrace, WarpAligner};
use bk_gpu::{DeviceSpec, WARP_SIZE};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::SeqCst);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn align_performs_no_heap_allocations_in_steady_state() {
    let spec = DeviceSpec::test_tiny();
    // A mixed workload touching every scratch path: stream reads/writes,
    // device atomics, multi-segment accesses, and shared-memory conflicts.
    let lanes: Vec<ThreadTrace> = (0..WARP_SIZE as u64)
        .map(|i| {
            let mut t = ThreadTrace::default();
            for k in 0..4u64 {
                t.record(4096 + k * 128 + i * 4, 4, AccessKind::Read, AccessClass::StreamRead);
                t.record(1 << 20 | (i * 64 + k * 8), 8, AccessKind::Write, AccessClass::StreamWrite);
                t.record((2 << 20) + (i % 4) * 8, 8, AccessKind::Atomic, AccessClass::Dev);
            }
            t.record_shared((i as u32 % 8) * 512, 4);
            t.alu(10);
            t
        })
        .collect();

    let mut aligner = WarpAligner::new();
    // Warm-up: let every scratch vector grow to the workload's size.
    for _ in 0..3 {
        let _ = aligner.align(&spec, &lanes);
    }

    let before = ALLOCS.load(Ordering::SeqCst);
    for _ in 0..100 {
        let c = aligner.align(&spec, &lanes);
        assert!(c.mem.transactions > 0);
    }
    let after = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(after - before, 0, "align allocated {} times in steady state", after - before);
}

//! Warp-level memory coalescing analysis.
//!
//! The paper's third motivating problem (§I): GPU memory bandwidth is only
//! achievable when the 32 threads of a warp access adjacent locations, so
//! that the hardware can merge them into few memory transactions; scattered
//! or strided accesses serialize into many transactions.
//!
//! We model Kepler-style coalescing: for one lock-step access by a warp, the
//! addressed bytes are covered by aligned 32-byte segments; each distinct
//! segment touched costs one transaction that moves the full 32 bytes. A
//! fully-coalesced 4-byte access by 32 lanes touches 4 segments (128 bytes);
//! a 48-byte-strided access touches up to 32 segments (1024 bytes moved for
//! 128 useful).

use crate::spec::DeviceSpec;

/// Cost of one aligned warp step against global memory.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StepCost {
    /// Number of DRAM memory transactions (distinct new segments touched).
    pub transactions: u64,
    /// Bytes actually moved over the DRAM interface
    /// (`transactions * segment_bytes`).
    pub bytes_moved: u64,
    /// Bytes served from L2 (segments re-touched within the reuse window) —
    /// cheaper than DRAM but not free; the L2 has ~4x DRAM bandwidth.
    pub bytes_l2: u64,
    /// Bytes the lanes asked for (useful bytes).
    pub bytes_useful: u64,
}

impl StepCost {
    /// Accumulate another step's cost into this one.
    pub fn merge(&mut self, other: StepCost) {
        self.transactions += other.transactions;
        self.bytes_moved += other.bytes_moved;
        self.bytes_l2 += other.bytes_l2;
        self.bytes_useful += other.bytes_useful;
    }

    /// Moved/useful ratio; 1.0 is perfect, 8.0 means 8x inflation.
    pub fn inflation(&self) -> f64 {
        if self.bytes_useful == 0 {
            0.0
        } else {
            self.bytes_moved as f64 / self.bytes_useful as f64
        }
    }
}

/// Analyze one warp step: `lanes` holds `(addr, width)` for each active lane
/// (inactive lanes are simply absent). Addresses are virtual device
/// addresses from [`crate::mem::GpuMemory::vaddr`].
pub fn coalesce_step(spec: &DeviceSpec, lanes: &[(u64, u32)]) -> StepCost {
    let seg = spec.segment_bytes;
    debug_assert!(seg.is_power_of_two());

    // Collect distinct segment indices. A warp touches at most
    // 32 * max_width / seg + 32 segments; a tiny sorted vec beats a hash set
    // at this size.
    let mut segs: Vec<u64> = Vec::with_capacity(lanes.len() * 2);
    let mut useful = 0u64;
    for &(addr, width) in lanes {
        debug_assert!(width > 0, "zero-width access");
        useful += width as u64;
        let first = addr / seg;
        let last = (addr + width as u64 - 1) / seg;
        for s in first..=last {
            segs.push(s);
        }
    }
    segs.sort_unstable();
    segs.dedup();
    let transactions = segs.len() as u64;
    StepCost {
        transactions,
        bytes_moved: transactions * seg,
        bytes_l2: 0,
        bytes_useful: useful,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::DeviceSpec;

    fn spec() -> DeviceSpec {
        DeviceSpec::test_tiny() // segment_bytes = 32
    }

    #[test]
    fn empty_step_costs_nothing() {
        let c = coalesce_step(&spec(), &[]);
        assert_eq!(c, StepCost::default());
        assert_eq!(c.inflation(), 0.0);
    }

    #[test]
    fn perfectly_coalesced_4byte_warp() {
        // 32 lanes x 4B contiguous from an aligned base: 128B = 4 segments.
        let lanes: Vec<(u64, u32)> = (0..32).map(|i| (4096 + i * 4, 4)).collect();
        let c = coalesce_step(&spec(), &lanes);
        assert_eq!(c.transactions, 4);
        assert_eq!(c.bytes_moved, 128);
        assert_eq!(c.bytes_useful, 128);
        assert_eq!(c.inflation(), 1.0);
    }

    #[test]
    fn strided_48b_records_inflate() {
        // 32 lanes reading an 8B field of 48B records: every lane lands in
        // its own segment (or straddles two).
        let lanes: Vec<(u64, u32)> = (0..32).map(|i| (4096 + i * 48, 8)).collect();
        let c = coalesce_step(&spec(), &lanes);
        assert!(c.transactions >= 32, "{c:?}");
        assert!(c.inflation() >= 3.9, "{}", c.inflation());
    }

    #[test]
    fn single_lane_unaligned_straddles_two_segments() {
        let c = coalesce_step(&spec(), &[(4096 + 30, 4)]);
        assert_eq!(c.transactions, 2);
        assert_eq!(c.bytes_moved, 64);
        assert_eq!(c.bytes_useful, 4);
    }

    #[test]
    fn duplicate_addresses_merge() {
        // All lanes read the same word: one transaction (broadcast).
        let lanes: Vec<(u64, u32)> = (0..32).map(|_| (4096, 8)).collect();
        let c = coalesce_step(&spec(), &lanes);
        assert_eq!(c.transactions, 1);
        assert_eq!(c.bytes_useful, 32 * 8);
    }

    #[test]
    fn byte_access_coalesced_is_one_segment() {
        // 32 lanes x 1B contiguous: 32B = exactly one segment.
        let lanes: Vec<(u64, u32)> = (0..32).map(|i| (8192 + i, 1)).collect();
        let c = coalesce_step(&spec(), &lanes);
        assert_eq!(c.transactions, 1);
        assert_eq!(c.inflation(), 1.0);
    }

    #[test]
    fn byte_access_strided_by_2k_is_32_segments() {
        let lanes: Vec<(u64, u32)> = (0..32).map(|i| (8192 + i * 2048, 1)).collect();
        let c = coalesce_step(&spec(), &lanes);
        assert_eq!(c.transactions, 32);
        assert_eq!(c.inflation(), 32.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = coalesce_step(&spec(), &[(4096, 4)]);
        let b = coalesce_step(&spec(), &[(8192, 4)]);
        a.merge(b);
        assert_eq!(a.transactions, 2);
        assert_eq!(a.bytes_useful, 8);
    }
}

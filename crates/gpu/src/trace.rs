//! Per-thread access traces and warp-level alignment.
//!
//! Kernel threads in this simulator run one after another (sequentially) for
//! functional simplicity, but the *timing* model needs warp-level lock-step
//! behaviour: the i-th global access of each lane in a warp happens in the
//! same cycle and coalesces (or not) with its 31 siblings. So each thread
//! records a compact trace of its memory accesses; once a warp's 32 lanes
//! have run, [`WarpAligner`] aligns the traces by access index and feeds each
//! aligned step through the coalescing model.
//!
//! This trace-then-align approach is exact for the streaming kernels the
//! paper targets (no data-dependent reconvergence games) and keeps memory
//! bounded: traces are reused per warp, never stored for the whole kernel.

use crate::coalesce::StepCost;
use crate::spec::{DeviceSpec, WARP_SIZE};

/// Classifies one recorded memory access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessKind {
    /// Plain load.
    Read,
    /// Plain store.
    Write,
    /// Atomic read-modify-write (adds atomic-unit cost on top of the
    /// transaction).
    Atomic,
}

/// Which warp-alignment class an access belongs to.
///
/// Lanes of a warp are aligned *per class by ordinal*: the k-th
/// mapped-stream read of each lane coalesces with its siblings' k-th reads
/// (that is the contract of BigKernel's `dataBuf[counter][tid]` layout and
/// matches reconvergent SIMT execution of record-structured loops), and
/// likewise for stream writes and for device-buffer accesses. Aligning one
/// merged sequence instead would let lanes drift after divergent sections
/// (e.g. per-word dictionary lookups) and spuriously destroy coalescing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessClass {
    /// Read of a mapped-stream (prefetch) buffer.
    StreamRead,
    /// Write of a mapped-stream (write-back staging) buffer.
    StreamWrite,
    /// Access to persistent device state (hash tables, accumulators).
    Dev,
}

impl AccessClass {
    /// Every class, in [`AccessClass::index`] order.
    pub const ALL: [AccessClass; 3] = [
        AccessClass::StreamRead,
        AccessClass::StreamWrite,
        AccessClass::Dev,
    ];

    /// Dense index of the class, for per-class scratch arrays.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            AccessClass::StreamRead => 0,
            AccessClass::StreamWrite => 1,
            AccessClass::Dev => 2,
        }
    }
}

/// One recorded shared-memory access (cost-only; shared memory holds
/// transient per-block state that the kernels keep in locals functionally).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SharedAccess {
    /// Byte address within the block's shared memory.
    pub addr: u32,
    /// Access width in bytes.
    pub width: u32,
}

/// Shared memory banks on Kepler-class parts: 32 banks of 4-byte words.
pub const SHARED_BANKS: u32 = 32;
/// Width of one shared-memory bank word in bytes.
pub const SHARED_BANK_BYTES: u32 = 4;

/// Trace of one thread's execution within a chunk.
#[derive(Clone, Debug, Default)]
pub struct ThreadTrace {
    /// Global-memory accesses grouped by alignment class (program order
    /// within each class) as `(addr, width, is_atomic)`. Grouping at record
    /// time lets [`WarpAligner::align`] address "lane's k-th class-c access"
    /// directly instead of rebuilding a per-class view for every warp.
    pub classed: [Vec<(u64, u32, bool)>; 3],
    /// Addressed shared-memory accesses, aligned per ordinal for the bank
    /// conflict model.
    pub shared: Vec<SharedAccess>,
    /// Dynamic instructions issued by this lane (ALU + control + one issue
    /// slot per memory/shared access; recorded by the kernel context).
    pub instructions: u64,
    /// Unaddressed shared-memory accesses (issue slots only).
    pub shared_accesses: u64,
}

impl ThreadTrace {
    /// Reset the trace for reuse by the next thread.
    pub fn clear(&mut self) {
        for c in &mut self.classed {
            c.clear();
        }
        self.shared.clear();
        self.instructions = 0;
        self.shared_accesses = 0;
    }

    /// Record an addressed shared-memory access (bank-conflict analyzed).
    #[inline]
    pub fn record_shared(&mut self, addr: u32, width: u32) {
        self.shared.push(SharedAccess { addr, width });
        self.instructions += 1;
    }

    /// Record `n` addressed shared accesses at `base`, `base + stride`, ... —
    /// the trace is identical to `n` [`ThreadTrace::record_shared`] calls.
    #[inline]
    pub fn record_shared_strided(&mut self, base: u32, stride: u32, n: u32, width: u32) {
        self.shared.extend((0..n).map(|i| SharedAccess {
            addr: base + i * stride,
            width,
        }));
        self.instructions += n as u64;
    }

    /// Total global-memory accesses recorded across all classes.
    pub fn access_count(&self) -> usize {
        self.classed.iter().map(Vec::len).sum()
    }

    /// Record one global-memory access (one issue slot).
    #[inline]
    pub fn record(&mut self, addr: u64, width: u32, kind: AccessKind, class: AccessClass) {
        self.classed[class.index()].push((addr, width, kind == AccessKind::Atomic));
        self.instructions += 1;
    }

    /// Account `n` ALU/control instructions.
    #[inline]
    pub fn alu(&mut self, n: u64) {
        self.instructions += n;
    }

    /// Account `n` unaddressed shared-memory accesses (issue slots only,
    /// no bank-conflict analysis).
    #[inline]
    pub fn shared(&mut self, n: u64) {
        self.shared_accesses += n;
        self.instructions += n;
    }
}

/// Result of aligning one warp's lanes.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct WarpCost {
    /// Aggregated coalescing cost over all aligned steps.
    pub mem: StepCost,
    /// Issue slots consumed by the warp: `max(lane instructions) * 32`
    /// (lock-step issue; short lanes waste their slots — this is how
    /// divergence shows up as cost).
    pub issue_slots: u64,
    /// Sum of lane instruction counts (useful work), for utilization stats.
    pub useful_instructions: u64,
    /// Addresses of atomic operations, for contention tracking by the
    /// caller.
    pub atomic_addrs: Vec<u64>,
    /// Total shared-memory accesses issued by the warp.
    pub shared_accesses: u64,
    /// Extra warp issue slots from shared-memory bank-conflict replays: a
    /// step whose lanes hit the same bank at different words re-issues once
    /// per extra way.
    pub bank_replay_slots: u64,
}

/// Aligns up to [`WARP_SIZE`] thread traces and produces a [`WarpCost`].
///
/// All working storage is owned by the aligner and reused across calls, so
/// [`WarpAligner::align`] performs no heap allocations in steady state (once
/// every scratch vector has grown to the warp's working-set size). The
/// per-class access index comes straight from each trace's
/// [`ThreadTrace::classed`] storage — no per-warp rebuild.
pub struct WarpAligner {
    prev_segs: Vec<u64>,
    cur_segs: Vec<u64>,
    /// Bank-conflict scratch: `(bank, word)` pairs of one shared step.
    words: Vec<(u32, u32)>,
    cost: WarpCost,
}

impl Default for WarpAligner {
    fn default() -> Self {
        Self::new()
    }
}

impl WarpAligner {
    /// A fresh aligner with empty scratch storage.
    pub fn new() -> Self {
        WarpAligner {
            prev_segs: Vec::new(),
            cur_segs: Vec::new(),
            words: Vec::with_capacity(WARP_SIZE),
            cost: WarpCost::default(),
        }
    }

    /// Align `lanes` (1..=32 traces) and compute the warp's cost.
    ///
    /// A one-step segment-reuse window models the GPU's L2: a memory
    /// segment touched in the immediately preceding warp step is still
    /// resident and costs no new transaction. This is what keeps
    /// *sequential* per-thread scans (each lane walking its own region byte
    /// by byte) from being charged a full transaction per byte — on real
    /// hardware the 32-byte sector fetched for step `k` serves steps
    /// `k+1..k+31` of the same lane. Strided record walks still pay per
    /// record, and scattered accesses pay per access.
    ///
    /// The returned reference borrows the aligner's internal cost buffer; it
    /// is valid until the next `align` call. Callers that need to keep the
    /// result must clone it (the pipeline folds it into a `KernelCost`
    /// immediately, so it never does).
    pub fn align(&mut self, spec: &DeviceSpec, lanes: &[ThreadTrace]) -> &WarpCost {
        assert!(
            !lanes.is_empty() && lanes.len() <= WARP_SIZE,
            "warp must have 1..=32 lanes"
        );
        let seg = spec.segment_bytes;
        // Segment sizes are powers of two on every real part; requiring it
        // here keeps the per-access math off the u64-divide unit.
        assert!(
            seg.is_power_of_two(),
            "segment_bytes must be a power of two"
        );
        let seg_shift = seg.trailing_zeros();

        self.cost.mem = StepCost::default();
        self.cost.issue_slots = 0;
        self.cost.useful_instructions = 0;
        self.cost.atomic_addrs.clear();
        self.cost.shared_accesses = 0;
        self.cost.bank_replay_slots = 0;

        for ci in 0..3 {
            self.prev_segs.clear();
            let mut step = 0usize;
            loop {
                // One pass per step: collect the distinct segments touched
                // (minus the one-step reuse window) and the useful bytes
                // directly from the flat index. Lanes usually touch segments
                // in ascending order (coalesced layouts are built that way),
                // so dedup inline while the sequence stays sorted and only
                // fall back to a sort when it does not.
                self.cur_segs.clear();
                let mut useful = 0u64;
                let mut active = false;
                let mut sorted = true;
                for lane in lanes {
                    let Some(&(addr, width, is_atomic)) = lane.classed[ci].get(step) else {
                        continue;
                    };
                    active = true;
                    if is_atomic {
                        self.cost.atomic_addrs.push(addr);
                    }
                    useful += width as u64;
                    let first = addr >> seg_shift;
                    let last = (addr + width as u64 - 1) >> seg_shift;
                    for s in first..=last {
                        match self.cur_segs.last() {
                            Some(&p) if sorted && p == s => {}
                            Some(&p) if p > s => {
                                sorted = false;
                                self.cur_segs.push(s);
                            }
                            _ => self.cur_segs.push(s),
                        }
                    }
                }
                if !active {
                    break;
                }
                if !sorted {
                    self.cur_segs.sort_unstable();
                    self.cur_segs.dedup();
                }
                let new_txns = self
                    .cur_segs
                    .iter()
                    .filter(|s| self.prev_segs.binary_search(s).is_err())
                    .count() as u64;
                let reused = self.cur_segs.len() as u64 - new_txns;
                self.cost.mem.merge(crate::coalesce::StepCost {
                    transactions: new_txns,
                    bytes_moved: new_txns * seg,
                    bytes_l2: reused * seg,
                    bytes_useful: useful,
                });
                std::mem::swap(&mut self.prev_segs, &mut self.cur_segs);
                step += 1;
            }
        }

        // Shared-memory bank conflicts: align addressed shared accesses by
        // ordinal; within one step, lanes hitting the same bank at
        // *different* words serialize (same-word accesses broadcast free).
        // Lock-step kernels (every lane issuing the identical shared
        // sequence — the staged-centroid idiom) make every step a same-word
        // broadcast by construction, so one sequence compare per lane
        // replaces the whole per-step scan.
        let uniform = lanes[1..].iter().all(|l| l.shared == lanes[0].shared);
        let max_shared = if uniform {
            0
        } else {
            lanes.iter().map(|l| l.shared.len()).max().unwrap_or(0)
        };
        for step in 0..max_shared {
            self.words.clear();
            let mut broadcast = true;
            for lane in lanes {
                if let Some(a) = lane.shared.get(step) {
                    let word = a.addr / SHARED_BANK_BYTES;
                    let pair = (word % SHARED_BANKS, word);
                    broadcast &= self.words.last().is_none_or(|&p| p == pair);
                    self.words.push(pair);
                }
            }
            if broadcast {
                // Every lane hit the same word (the common shared-memory
                // idiom: one value read by the whole warp) — conflict-free.
                continue;
            }
            self.words.sort_unstable();
            self.words.dedup(); // same-word lanes broadcast
            let mut max_ways = 1u64;
            let mut i = 0;
            while i < self.words.len() {
                let bank = self.words[i].0;
                let mut ways = 0u64;
                while i < self.words.len() && self.words[i].0 == bank {
                    ways += 1;
                    i += 1;
                }
                max_ways = max_ways.max(ways);
            }
            self.cost.bank_replay_slots += (max_ways - 1) * WARP_SIZE as u64;
        }

        let max_instr = lanes.iter().map(|l| l.instructions).max().unwrap_or(0);
        self.cost.issue_slots = max_instr * WARP_SIZE as u64 + self.cost.bank_replay_slots;
        self.cost.useful_instructions = lanes.iter().map(|l| l.instructions).sum();
        self.cost.shared_accesses = lanes.iter().map(|l| l.shared_accesses).sum::<u64>()
            + lanes.iter().map(|l| l.shared.len() as u64).sum::<u64>();
        &self.cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> DeviceSpec {
        DeviceSpec::test_tiny()
    }

    fn lane_with_reads(addrs: &[u64], width: u32) -> ThreadTrace {
        let mut t = ThreadTrace::default();
        for &a in addrs {
            t.record(a, width, AccessKind::Read, AccessClass::StreamRead);
        }
        t
    }

    #[test]
    fn coalesced_warp_costs_few_transactions() {
        // 32 lanes, 2 steps each, contiguous 4B per step: step k lane i reads
        // base + k*128 + i*4 → 4 transactions per step, 8 total.
        let lanes: Vec<ThreadTrace> = (0..32u64)
            .map(|i| lane_with_reads(&[4096 + i * 4, 4096 + 128 + i * 4], 4))
            .collect();
        let mut al = WarpAligner::new();
        let c = al.align(&spec(), &lanes);
        assert_eq!(c.mem.transactions, 8);
        assert_eq!(c.mem.bytes_useful, 32 * 2 * 4);
    }

    #[test]
    fn lockstep_issue_charges_divergence() {
        let mut short = ThreadTrace::default();
        short.alu(10);
        let mut long = ThreadTrace::default();
        long.alu(100);
        let mut al = WarpAligner::new();
        let c = al.align(&spec(), &[short, long]);
        assert_eq!(c.issue_slots, 100 * 32);
        assert_eq!(c.useful_instructions, 110);
    }

    #[test]
    fn ragged_lanes_align_by_index() {
        // Lane 0 has 2 accesses, lane 1 has 1. Step 1 only has lane 0.
        let l0 = lane_with_reads(&[4096, 8192], 4);
        let l1 = lane_with_reads(&[4100], 4);
        let mut al = WarpAligner::new();
        let c = al.align(&spec(), &[l0, l1]);
        // step 0: 4096 & 4100 share a segment (1 txn); step 1: 8192 (1 txn)
        assert_eq!(c.mem.transactions, 2);
    }

    #[test]
    fn sequential_byte_scan_reuses_segments() {
        // One lane reading 64 consecutive bytes: without reuse that would
        // be 64 probes of 2 segments; with the one-step reuse window only
        // the two segment *entries* cost transactions.
        let addrs: Vec<u64> = (0..64u64).map(|i| 4096 + i).collect();
        let lane = lane_with_reads(&addrs, 1);
        let mut al = WarpAligner::new();
        let c = al.align(&spec(), &[lane]);
        assert_eq!(c.mem.transactions, 2, "{:?}", c.mem);
        assert_eq!(c.mem.bytes_useful, 64);
    }

    #[test]
    fn strided_record_walk_still_pays_per_record() {
        // One lane reading one 8B field per 4 KiB record: every access is a
        // fresh segment; reuse must not help.
        let addrs: Vec<u64> = (0..16u64).map(|i| 4096 + i * 4096).collect();
        let lane = lane_with_reads(&addrs, 8);
        let mut al = WarpAligner::new();
        let c = al.align(&spec(), &[lane]);
        assert_eq!(c.mem.transactions, 16);
    }

    #[test]
    fn atomics_are_reported() {
        let mut t = ThreadTrace::default();
        t.record(4096, 4, AccessKind::Atomic, AccessClass::Dev);
        t.record(4096, 4, AccessKind::Atomic, AccessClass::Dev);
        let mut al = WarpAligner::new();
        let c = al.align(&spec(), &[t]);
        assert_eq!(c.atomic_addrs, vec![4096, 4096]);
    }

    #[test]
    fn record_counts_instructions() {
        let mut t = ThreadTrace::default();
        t.record(0x1000, 8, AccessKind::Read, AccessClass::StreamRead);
        t.alu(5);
        t.shared(2);
        assert_eq!(t.instructions, 8);
        assert_eq!(t.shared_accesses, 2);
        t.clear();
        assert_eq!(t.instructions, 0);
        assert_eq!(t.access_count(), 0);
    }

    #[test]
    #[should_panic(expected = "warp must have")]
    fn oversized_warp_rejected() {
        let lanes = vec![ThreadTrace::default(); 33];
        WarpAligner::new().align(&spec(), &lanes);
    }

    #[test]
    fn reused_aligner_matches_fresh_aligner() {
        // The aligner's scratch must fully reset between calls: aligning a
        // large atomic-heavy warp first, then a second workload, must give
        // the same cost a fresh aligner computes for that second workload.
        let s = spec();
        let noisy: Vec<ThreadTrace> = (0..32u64)
            .map(|i| {
                let mut t = ThreadTrace::default();
                t.record(i * 4096, 4, AccessKind::Atomic, AccessClass::Dev);
                t.record(i * 8, 8, AccessKind::Read, AccessClass::StreamRead);
                t.record(i * 8, 8, AccessKind::Write, AccessClass::StreamWrite);
                t.record_shared((i as u32 % 8) * 128, 4);
                t
            })
            .collect();
        let probe: Vec<ThreadTrace> = (0..7u64)
            .map(|i| lane_with_reads(&[1 << 16, (1 << 16) + i * 4], 4))
            .collect();

        let mut reused = WarpAligner::new();
        reused.align(&s, &noisy);
        let got = reused.align(&s, &probe).clone();
        let mut fresh = WarpAligner::new();
        assert_eq!(&got, fresh.align(&s, &probe));
    }
}

#[cfg(test)]
mod bank_tests {
    use super::*;

    fn spec() -> DeviceSpec {
        DeviceSpec::test_tiny()
    }

    fn lanes_with_shared(addr_of_lane: impl Fn(u32) -> u32) -> Vec<ThreadTrace> {
        (0..32u32)
            .map(|l| {
                let mut t = ThreadTrace::default();
                t.record_shared(addr_of_lane(l), 4);
                t
            })
            .collect()
    }

    #[test]
    fn conflict_free_consecutive_words() {
        // Lane l -> word l: every lane its own bank.
        let lanes = lanes_with_shared(|l| l * 4);
        let mut al = WarpAligner::new();
        let c = al.align(&spec(), &lanes);
        assert_eq!(c.bank_replay_slots, 0);
        assert_eq!(c.shared_accesses, 32);
    }

    #[test]
    fn broadcast_same_word_is_free() {
        let lanes = lanes_with_shared(|_| 64);
        let mut al = WarpAligner::new();
        let c = al.align(&spec(), &lanes);
        assert_eq!(c.bank_replay_slots, 0);
    }

    #[test]
    fn stride_32_words_is_32_way_conflict() {
        // Lane l -> word l*32: all lanes hit bank 0 at distinct words.
        let lanes = lanes_with_shared(|l| l * 32 * 4);
        let mut al = WarpAligner::new();
        let c = al.align(&spec(), &lanes);
        assert_eq!(c.bank_replay_slots, 31 * WARP_SIZE as u64);
    }

    #[test]
    fn two_way_conflict() {
        // Lanes pair up on 16 banks: words l and l+32 share bank l.
        let lanes = lanes_with_shared(|l| ((l % 16) + (l / 16) * 32 * 16) * 4);
        let mut al = WarpAligner::new();
        let c = al.align(&spec(), &lanes);
        assert_eq!(c.bank_replay_slots, WARP_SIZE as u64);
    }

    #[test]
    fn replays_add_issue_slots() {
        let free = lanes_with_shared(|l| l * 4);
        let conflicted = lanes_with_shared(|l| l * 32 * 4);
        let spec = spec();
        let mut al = WarpAligner::new();
        let a = al.align(&spec, &free).issue_slots;
        let b = al.align(&spec, &conflicted).issue_slots;
        assert!(b > a);
    }
}

//! Device specification and the GTX 680 preset used throughout the paper.

use bk_simcore::{Bandwidth, Frequency};

/// Lanes per warp. Fixed at 32 on every NVIDIA architecture the paper
/// considers; several layout computations rely on it being a power of two.
pub const WARP_SIZE: usize = 32;

/// Static description of the simulated GPU.
///
/// Defaults correspond to the paper's NVIDIA GeForce GTX 680 (Kepler GK104):
/// 8 SMX units x 192 CUDA cores at 1006 MHz boost ~1020 MHz (paper quotes
/// 1536 cores at 1020 MHz), 2 GiB GDDR5 at 192 GB/s theoretical.
#[derive(Clone, Debug)]
pub struct DeviceSpec {
    /// Human-readable device name.
    pub name: &'static str,
    /// Streaming multiprocessors on the device.
    pub num_sms: u32,
    /// CUDA cores per SM.
    pub cores_per_sm: u32,
    /// Core clock frequency.
    pub clock: Frequency,
    /// Instructions retired per core per cycle for the simple integer/FP mix
    /// of streaming kernels (well below peak FMA throughput on purpose).
    pub ipc_per_core: f64,
    /// Achievable global-memory bandwidth (theoretical x efficiency).
    pub mem_bandwidth: Bandwidth,
    /// Size of one memory transaction segment in bytes (GDDR5: 32B).
    pub segment_bytes: u64,
    /// Global memory capacity in bytes.
    pub mem_capacity: u64,
    /// Registers per SM (32-bit regs).
    pub regs_per_sm: u32,
    /// Shared memory per SM in bytes.
    pub smem_per_sm: u32,
    /// Max resident threads per SM.
    pub max_threads_per_sm: u32,
    /// Max resident thread blocks per SM.
    pub max_blocks_per_sm: u32,
    /// Throughput cost of one global atomic RMW, in core-cycles of the
    /// issuing SM (amortized, non-conflicting case).
    pub atomic_cycles: f64,
    /// Additional serialization latency when atomics target the same
    /// address: consecutive conflicting RMWs complete one per this many
    /// clock cycles (models L2 atomic unit serialization on a hot line).
    pub atomic_conflict_cycles: f64,
    /// Cycles to execute a block-wide barrier (`bar.red`), per barrier.
    pub barrier_cycles: f64,
    /// Independent DMA copy engines. GeForce parts (like the paper's
    /// GTX 680) expose one, serializing host-to-device transfers with
    /// write-backs; Tesla-class parts expose two, letting the directions
    /// overlap.
    pub copy_engines: u32,
}

impl DeviceSpec {
    /// The paper's evaluation GPU.
    pub fn gtx680() -> Self {
        DeviceSpec {
            name: "NVIDIA GeForce GTX 680",
            num_sms: 8,
            cores_per_sm: 192,
            clock: Frequency::mhz(1020.0),
            ipc_per_core: 0.85,
            // 192 GB/s theoretical; ~75% achievable on streaming loads.
            mem_bandwidth: Bandwidth::gb_per_sec(192.0 * 0.75),
            segment_bytes: 32,
            mem_capacity: 2 * (1u64 << 30),
            regs_per_sm: 65_536,
            smem_per_sm: 48 * 1024,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 16,
            atomic_cycles: 20.0,
            atomic_conflict_cycles: 40.0,
            barrier_cycles: 100.0,
            copy_engines: 1,
        }
    }

    /// A Tesla-class variant of the paper's GPU: identical compute/memory
    /// but two DMA engines (K20-style), for the copy-engine ablation.
    pub fn tesla_like() -> Self {
        DeviceSpec {
            name: "Tesla-class (2 copy engines)",
            copy_engines: 2,
            ..Self::gtx680()
        }
    }

    /// A deliberately small device for fast unit tests (1 SM, tiny memory).
    pub fn test_tiny() -> Self {
        DeviceSpec {
            name: "test-tiny",
            num_sms: 1,
            cores_per_sm: 32,
            clock: Frequency::mhz(1000.0),
            ipc_per_core: 1.0,
            mem_bandwidth: Bandwidth::gb_per_sec(100.0),
            segment_bytes: 32,
            mem_capacity: 64 * (1u64 << 20),
            regs_per_sm: 32_768,
            smem_per_sm: 48 * 1024,
            max_threads_per_sm: 1024,
            max_blocks_per_sm: 8,
            atomic_cycles: 20.0,
            atomic_conflict_cycles: 40.0,
            barrier_cycles: 100.0,
            copy_engines: 1,
        }
    }

    /// Total cores across the device.
    pub fn total_cores(&self) -> u64 {
        self.num_sms as u64 * self.cores_per_sm as u64
    }

    /// Aggregate instruction issue rate (instructions/second).
    pub fn issue_rate(&self) -> f64 {
        self.total_cores() as f64 * self.ipc_per_core * self.clock.as_hz()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gtx680_matches_paper_headline_numbers() {
        let d = DeviceSpec::gtx680();
        assert_eq!(d.total_cores(), 1536);
        assert_eq!(d.mem_capacity, 2 * (1u64 << 30));
        assert!(d.mem_bandwidth.as_bytes_per_sec() < 192e9);
    }

    #[test]
    fn tesla_variant_only_differs_in_engines() {
        let g = DeviceSpec::gtx680();
        let t = DeviceSpec::tesla_like();
        assert_eq!(g.copy_engines, 1);
        assert_eq!(t.copy_engines, 2);
        assert_eq!(g.total_cores(), t.total_cores());
    }

    #[test]
    fn issue_rate_scales_with_cores() {
        let d = DeviceSpec::gtx680();
        let t = DeviceSpec::test_tiny();
        assert!(d.issue_rate() > t.issue_rate() * 40.0);
    }
}

//! Occupancy / active-thread-block calculation (paper §IV.D).
//!
//! BigKernel allocates address/data buffers only for *active* thread blocks:
//! `min(numSetBlocks, R_gpu / R_tb)` where `R_tb` is the per-block resource
//! usage determined at compile time and `R_gpu` the device resources probed
//! at run time. This module reproduces that computation from the standard
//! CUDA occupancy limits (threads, registers, shared memory, block slots).

use crate::spec::DeviceSpec;

/// Per-thread-block resource usage ("R_tb" in the paper).
#[derive(Clone, Copy, Debug)]
pub struct BlockResources {
    /// Threads launched per block.
    pub threads_per_block: u32,
    /// Registers consumed by each thread.
    pub regs_per_thread: u32,
    /// Shared-memory bytes consumed by the block.
    pub smem_per_block: u32,
}

impl BlockResources {
    /// A typical streaming-kernel configuration: 256 threads, 32 registers,
    /// 4 KiB shared memory (temporary pattern-recognition buffers, §IV.A).
    pub fn streaming_default() -> Self {
        BlockResources {
            threads_per_block: 256,
            regs_per_thread: 32,
            smem_per_block: 4096,
        }
    }
}

/// Result of the occupancy computation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Occupancy {
    /// Active blocks resident per SM.
    pub blocks_per_sm: u32,
    /// Active blocks across the device (what buffers are allocated for).
    pub active_blocks: u32,
    /// Which limit bound the result (for diagnostics).
    pub limiting: OccupancyLimit,
}

/// Which hardware limit bound the occupancy computation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OccupancyLimit {
    /// Max resident threads per SM.
    Threads,
    /// Register file capacity per SM.
    Registers,
    /// Shared-memory capacity per SM.
    SharedMemory,
    /// Max resident block slots per SM.
    BlockSlots,
    /// Fewer blocks were launched than the hardware could host.
    LaunchedBlocks,
}

impl Occupancy {
    /// Fraction of the device's thread capacity occupied by active blocks.
    pub fn thread_occupancy(&self, spec: &DeviceSpec, res: &BlockResources) -> f64 {
        let resident = self.blocks_per_sm as f64 * res.threads_per_block as f64;
        (resident / spec.max_threads_per_sm as f64).min(1.0)
    }
}

/// Compute active blocks: `min(num_set_blocks, R_gpu / R_tb)` per the paper,
/// where `R_gpu / R_tb` is the tightest of the four hardware limits.
pub fn compute(spec: &DeviceSpec, res: &BlockResources, num_set_blocks: u32) -> Occupancy {
    assert!(res.threads_per_block > 0, "empty thread block");
    assert!(
        res.threads_per_block <= spec.max_threads_per_sm,
        "block larger than an SM's thread capacity"
    );

    let by_threads = spec.max_threads_per_sm / res.threads_per_block;
    let regs_per_block = (res.regs_per_thread * res.threads_per_block).max(1);
    let by_regs = spec.regs_per_sm / regs_per_block;
    let by_smem = spec
        .smem_per_sm
        .checked_div(res.smem_per_block)
        .unwrap_or(u32::MAX);
    let by_slots = spec.max_blocks_per_sm;

    let (mut blocks_per_sm, mut limiting) = (by_threads, OccupancyLimit::Threads);
    for (v, l) in [
        (by_regs, OccupancyLimit::Registers),
        (by_smem, OccupancyLimit::SharedMemory),
        (by_slots, OccupancyLimit::BlockSlots),
    ] {
        if v < blocks_per_sm {
            blocks_per_sm = v;
            limiting = l;
        }
    }
    assert!(blocks_per_sm > 0, "block does not fit on an SM: {res:?}");

    let hardware_max = blocks_per_sm * spec.num_sms;
    let active_blocks = hardware_max.min(num_set_blocks);
    let limiting = if num_set_blocks < hardware_max {
        OccupancyLimit::LaunchedBlocks
    } else {
        limiting
    };
    Occupancy {
        blocks_per_sm,
        active_blocks,
        limiting,
    }
}

/// How many buffer sets per active block the device can hold: the §IV.D
/// feasibility constraint for the autotuner. A "set" is the per-block
/// per-in-flight-chunk allocation (address buffer + prefetch data buffer +
/// write-back buffer, `set_bytes` in total), and the runtime budgets at most
/// half of device memory for streaming buffers — the other half stays free
/// for the application's resident arrays. The result scales with
/// `occ.active_blocks`, which [`compute`] already capped at what the device
/// permits, so the tuner can never plan a reuse depth the occupancy model
/// would reject. Always at least 1 (the pipeline cannot run with zero sets).
pub fn max_buffer_sets(spec: &DeviceSpec, occ: &Occupancy, set_bytes: u64) -> usize {
    let budget = spec.mem_capacity / 2;
    let per_depth = u64::from(occ.active_blocks.max(1)).saturating_mul(set_bytes.max(1));
    (budget / per_depth).max(1) as usize
}

/// [`max_buffer_sets`] for a *fused* multi-pass pipeline: every in-flight
/// chunk set additionally pins `resident_bytes` of device-resident
/// intermediate (covered cross-pass reads that never round-trip over PCIe),
/// so the §IV.D streaming budget is shared between the buffer set proper and
/// the resident footprint. Returns 0 — fusion infeasible — when even one
/// set with its resident intermediate exceeds the budget; callers treat
/// that as a fusion refusal, not a clamp.
pub fn max_buffer_sets_resident(
    spec: &DeviceSpec,
    occ: &Occupancy,
    set_bytes: u64,
    resident_bytes: u64,
) -> usize {
    let budget = spec.mem_capacity / 2;
    let per_depth = u64::from(occ.active_blocks.max(1))
        .saturating_mul(set_bytes.max(1).saturating_add(resident_bytes));
    (budget / per_depth) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> DeviceSpec {
        DeviceSpec::gtx680() // 8 SMs, 2048 thr/SM, 64K regs, 48K smem, 16 slots
    }

    #[test]
    fn buffer_sets_budget_half_of_device_memory() {
        // GTX 680: 2 GiB. 16 active blocks at 256 KiB sets → 1 GiB / 4 MiB.
        let res = BlockResources::streaming_default();
        let o = compute(&spec(), &res, 16);
        assert_eq!(o.active_blocks, 16);
        assert_eq!(max_buffer_sets(&spec(), &o, 256 * 1024), 256);
    }

    #[test]
    fn buffer_sets_never_zero_even_when_oversubscribed() {
        let res = BlockResources::streaming_default();
        let o = compute(&spec(), &res, 10_000);
        // Absurdly large sets still leave one set per block: depth-1 serial
        // reuse is always feasible.
        assert_eq!(max_buffer_sets(&spec(), &o, u64::MAX / 2), 1);
    }

    #[test]
    fn buffer_sets_shrink_with_more_active_blocks_and_bigger_sets() {
        let res = BlockResources::streaming_default();
        let few = compute(&spec(), &res, 4);
        let many = compute(&spec(), &res, 1000);
        let sets = |o: &Occupancy, b| max_buffer_sets(&spec(), o, b);
        assert!(sets(&few, 256 * 1024) >= sets(&many, 256 * 1024));
        assert!(sets(&many, 64 * 1024) >= sets(&many, 1024 * 1024));
    }

    #[test]
    fn thread_limited() {
        let res = BlockResources {
            threads_per_block: 1024,
            regs_per_thread: 16,
            smem_per_block: 0,
        };
        let o = compute(&spec(), &res, 1000);
        assert_eq!(o.blocks_per_sm, 2); // 2048/1024
        assert_eq!(o.active_blocks, 16);
        assert_eq!(o.limiting, OccupancyLimit::Threads);
    }

    #[test]
    fn register_limited() {
        let res = BlockResources {
            threads_per_block: 256,
            regs_per_thread: 128,
            smem_per_block: 0,
        };
        let o = compute(&spec(), &res, 1000);
        assert_eq!(o.blocks_per_sm, 2); // 65536 / (128*256) = 2
        assert_eq!(o.limiting, OccupancyLimit::Registers);
    }

    #[test]
    fn smem_limited() {
        let res = BlockResources {
            threads_per_block: 128,
            regs_per_thread: 16,
            smem_per_block: 16 * 1024,
        };
        let o = compute(&spec(), &res, 1000);
        assert_eq!(o.blocks_per_sm, 3); // 48K / 16K
        assert_eq!(o.limiting, OccupancyLimit::SharedMemory);
    }

    #[test]
    fn slot_limited() {
        let res = BlockResources {
            threads_per_block: 64,
            regs_per_thread: 8,
            smem_per_block: 0,
        };
        let o = compute(&spec(), &res, 1000);
        assert_eq!(o.blocks_per_sm, 16);
        assert_eq!(o.limiting, OccupancyLimit::BlockSlots);
    }

    #[test]
    fn launched_blocks_cap_applies() {
        // Paper formula: min(numSetBlocks, R_gpu/R_tb).
        let res = BlockResources::streaming_default();
        let o = compute(&spec(), &res, 4);
        assert_eq!(o.active_blocks, 4);
        assert_eq!(o.limiting, OccupancyLimit::LaunchedBlocks);
    }

    #[test]
    fn thread_occupancy_fraction() {
        let res = BlockResources::streaming_default(); // 256 thr
        let o = compute(&spec(), &res, 10_000);
        let f = o.thread_occupancy(&spec(), &res);
        assert!(f > 0.0 && f <= 1.0);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn impossible_block_panics() {
        let res = BlockResources {
            threads_per_block: 256,
            regs_per_thread: 16,
            smem_per_block: 1 << 20, // 1 MiB smem > 48 KiB per SM
        };
        compute(&spec(), &res, 1);
    }

    #[test]
    #[should_panic(expected = "thread capacity")]
    fn oversized_block_panics() {
        let res = BlockResources {
            threads_per_block: 4096,
            regs_per_thread: 16,
            smem_per_block: 0,
        };
        compute(&spec(), &res, 1);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Monotonicity: increasing `BlockResources` demands never increases
        /// reported occupancy. Ranges are chosen so both configurations fit
        /// on a GTX 680 SM (the paper's device) — the heavier block maxes at
        /// 1536 threads × 42 regs = 64512 ≤ 64 Ki registers and 40 KiB smem.
        /// This is what makes the autotuner's feasibility check safe: a plan
        /// validated against the lighter demand can only over-estimate, never
        /// under-estimate, what a heavier kernel would be allowed.
        #[test]
        fn occupancy_is_monotone_in_block_demands(
            threads in 32u32..=1024,
            regs in 1u32..=32,
            smem in 0u32..=32 * 1024,
            dthreads in 0u32..=512,
            dregs in 0u32..=10,
            dsmem in 0u32..=8 * 1024,
            launched in 1u32..=4096,
        ) {
            let spec = DeviceSpec::gtx680();
            let lo = BlockResources {
                threads_per_block: threads,
                regs_per_thread: regs,
                smem_per_block: smem,
            };
            let hi = BlockResources {
                threads_per_block: threads + dthreads,
                regs_per_thread: regs + dregs,
                smem_per_block: smem + dsmem,
            };
            let o_lo = compute(&spec, &lo, launched);
            let o_hi = compute(&spec, &hi, launched);
            prop_assert!(o_hi.blocks_per_sm <= o_lo.blocks_per_sm);
            prop_assert!(o_hi.active_blocks <= o_lo.active_blocks);
            // Feasibility moves the other way: fewer active blocks leave
            // room for more buffer sets per block, never fewer.
            for set_bytes in [64 * 1024u64, 256 * 1024, 1024 * 1024] {
                prop_assert!(
                    max_buffer_sets(&spec, &o_hi, set_bytes)
                        >= max_buffer_sets(&spec, &o_lo, set_bytes)
                );
            }
        }

        /// The launched-block cap from the paper formula always applies:
        /// active blocks never exceed either the launch size or the
        /// hardware's resident capacity.
        #[test]
        fn active_blocks_never_exceed_launch_or_hardware(
            threads in 32u32..=1024,
            regs in 1u32..=32,
            smem in 0u32..=32 * 1024,
            launched in 1u32..=4096,
        ) {
            let spec = DeviceSpec::gtx680();
            let res = BlockResources {
                threads_per_block: threads,
                regs_per_thread: regs,
                smem_per_block: smem,
            };
            let o = compute(&spec, &res, launched);
            prop_assert!(o.active_blocks <= launched);
            prop_assert!(o.active_blocks <= o.blocks_per_sm * spec.num_sms);
        }
    }
}

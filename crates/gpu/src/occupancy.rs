//! Occupancy / active-thread-block calculation (paper §IV.D).
//!
//! BigKernel allocates address/data buffers only for *active* thread blocks:
//! `min(numSetBlocks, R_gpu / R_tb)` where `R_tb` is the per-block resource
//! usage determined at compile time and `R_gpu` the device resources probed
//! at run time. This module reproduces that computation from the standard
//! CUDA occupancy limits (threads, registers, shared memory, block slots).

use crate::spec::DeviceSpec;

/// Per-thread-block resource usage ("R_tb" in the paper).
#[derive(Clone, Copy, Debug)]
pub struct BlockResources {
    /// Threads launched per block.
    pub threads_per_block: u32,
    /// Registers consumed by each thread.
    pub regs_per_thread: u32,
    /// Shared-memory bytes consumed by the block.
    pub smem_per_block: u32,
}

impl BlockResources {
    /// A typical streaming-kernel configuration: 256 threads, 32 registers,
    /// 4 KiB shared memory (temporary pattern-recognition buffers, §IV.A).
    pub fn streaming_default() -> Self {
        BlockResources {
            threads_per_block: 256,
            regs_per_thread: 32,
            smem_per_block: 4096,
        }
    }
}

/// Result of the occupancy computation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Occupancy {
    /// Active blocks resident per SM.
    pub blocks_per_sm: u32,
    /// Active blocks across the device (what buffers are allocated for).
    pub active_blocks: u32,
    /// Which limit bound the result (for diagnostics).
    pub limiting: OccupancyLimit,
}

/// Which hardware limit bound the occupancy computation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OccupancyLimit {
    /// Max resident threads per SM.
    Threads,
    /// Register file capacity per SM.
    Registers,
    /// Shared-memory capacity per SM.
    SharedMemory,
    /// Max resident block slots per SM.
    BlockSlots,
    /// Fewer blocks were launched than the hardware could host.
    LaunchedBlocks,
}

impl Occupancy {
    /// Fraction of the device's thread capacity occupied by active blocks.
    pub fn thread_occupancy(&self, spec: &DeviceSpec, res: &BlockResources) -> f64 {
        let resident = self.blocks_per_sm as f64 * res.threads_per_block as f64;
        (resident / spec.max_threads_per_sm as f64).min(1.0)
    }
}

/// Compute active blocks: `min(num_set_blocks, R_gpu / R_tb)` per the paper,
/// where `R_gpu / R_tb` is the tightest of the four hardware limits.
pub fn compute(spec: &DeviceSpec, res: &BlockResources, num_set_blocks: u32) -> Occupancy {
    assert!(res.threads_per_block > 0, "empty thread block");
    assert!(
        res.threads_per_block <= spec.max_threads_per_sm,
        "block larger than an SM's thread capacity"
    );

    let by_threads = spec.max_threads_per_sm / res.threads_per_block;
    let regs_per_block = (res.regs_per_thread * res.threads_per_block).max(1);
    let by_regs = spec.regs_per_sm / regs_per_block;
    let by_smem = spec
        .smem_per_sm
        .checked_div(res.smem_per_block)
        .unwrap_or(u32::MAX);
    let by_slots = spec.max_blocks_per_sm;

    let (mut blocks_per_sm, mut limiting) = (by_threads, OccupancyLimit::Threads);
    for (v, l) in [
        (by_regs, OccupancyLimit::Registers),
        (by_smem, OccupancyLimit::SharedMemory),
        (by_slots, OccupancyLimit::BlockSlots),
    ] {
        if v < blocks_per_sm {
            blocks_per_sm = v;
            limiting = l;
        }
    }
    assert!(blocks_per_sm > 0, "block does not fit on an SM: {res:?}");

    let hardware_max = blocks_per_sm * spec.num_sms;
    let active_blocks = hardware_max.min(num_set_blocks);
    let limiting = if num_set_blocks < hardware_max {
        OccupancyLimit::LaunchedBlocks
    } else {
        limiting
    };
    Occupancy {
        blocks_per_sm,
        active_blocks,
        limiting,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> DeviceSpec {
        DeviceSpec::gtx680() // 8 SMs, 2048 thr/SM, 64K regs, 48K smem, 16 slots
    }

    #[test]
    fn thread_limited() {
        let res = BlockResources {
            threads_per_block: 1024,
            regs_per_thread: 16,
            smem_per_block: 0,
        };
        let o = compute(&spec(), &res, 1000);
        assert_eq!(o.blocks_per_sm, 2); // 2048/1024
        assert_eq!(o.active_blocks, 16);
        assert_eq!(o.limiting, OccupancyLimit::Threads);
    }

    #[test]
    fn register_limited() {
        let res = BlockResources {
            threads_per_block: 256,
            regs_per_thread: 128,
            smem_per_block: 0,
        };
        let o = compute(&spec(), &res, 1000);
        assert_eq!(o.blocks_per_sm, 2); // 65536 / (128*256) = 2
        assert_eq!(o.limiting, OccupancyLimit::Registers);
    }

    #[test]
    fn smem_limited() {
        let res = BlockResources {
            threads_per_block: 128,
            regs_per_thread: 16,
            smem_per_block: 16 * 1024,
        };
        let o = compute(&spec(), &res, 1000);
        assert_eq!(o.blocks_per_sm, 3); // 48K / 16K
        assert_eq!(o.limiting, OccupancyLimit::SharedMemory);
    }

    #[test]
    fn slot_limited() {
        let res = BlockResources {
            threads_per_block: 64,
            regs_per_thread: 8,
            smem_per_block: 0,
        };
        let o = compute(&spec(), &res, 1000);
        assert_eq!(o.blocks_per_sm, 16);
        assert_eq!(o.limiting, OccupancyLimit::BlockSlots);
    }

    #[test]
    fn launched_blocks_cap_applies() {
        // Paper formula: min(numSetBlocks, R_gpu/R_tb).
        let res = BlockResources::streaming_default();
        let o = compute(&spec(), &res, 4);
        assert_eq!(o.active_blocks, 4);
        assert_eq!(o.limiting, OccupancyLimit::LaunchedBlocks);
    }

    #[test]
    fn thread_occupancy_fraction() {
        let res = BlockResources::streaming_default(); // 256 thr
        let o = compute(&spec(), &res, 10_000);
        let f = o.thread_occupancy(&spec(), &res);
        assert!(f > 0.0 && f <= 1.0);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn impossible_block_panics() {
        let res = BlockResources {
            threads_per_block: 256,
            regs_per_thread: 16,
            smem_per_block: 1 << 20, // 1 MiB smem > 48 KiB per SM
        };
        compute(&spec(), &res, 1);
    }

    #[test]
    #[should_panic(expected = "thread capacity")]
    fn oversized_block_panics() {
        let res = BlockResources {
            threads_per_block: 4096,
            regs_per_thread: 16,
            smem_per_block: 0,
        };
        compute(&spec(), &res, 1);
    }
}

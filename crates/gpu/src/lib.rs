//! # bk-gpu — functional + timing GPU simulator
//!
//! The BigKernel paper evaluates on an NVIDIA GTX 680. We have no GPU, so
//! this crate supplies the substitute substrate (see DESIGN.md §2): a
//! simulator that (i) executes kernel work *functionally* — real bytes in a
//! simulated global memory — and (ii) derives simulated time from the
//! architectural mechanisms the paper's results hinge on:
//!
//! * **warp-level coalescing** ([`coalesce`]): each aligned warp step's 32
//!   addresses are mapped to the minimal set of 32-byte segments; strided or
//!   scattered access patterns inflate the number of memory transactions
//!   exactly the way GDDR5 transactions do;
//! * **occupancy** ([`occupancy`]): registers/shared-memory limits determine
//!   the number of *active thread blocks* (paper §IV.D);
//! * **roofline timing** ([`timing`]): a kernel stage's duration is the max
//!   of its instruction-issue bound, memory-bandwidth bound, and atomic
//!   serialization bound (hot hash-table entries serialize — this is what
//!   makes Word Count computation-dominant, paper Fig. 6);
//! * **functional memory** ([`mem`]): byte-addressable global-memory buffers
//!   with typed and atomic accessors, so every implementation variant
//!   produces real, checkable output.

#![deny(missing_docs)]

pub mod coalesce;
pub mod exec;
pub mod mem;
pub mod occupancy;
pub mod spec;
pub mod timing;
pub mod trace;
pub mod wlog;

pub use coalesce::{coalesce_step, StepCost};
pub use exec::{run_block_lanes, BlockSim};
pub use mem::{BufferId, GpuMemory};
pub use occupancy::{BlockResources, Occupancy};
pub use spec::{DeviceSpec, WARP_SIZE};
pub use timing::{GpuPool, KernelCost};
pub use trace::{AccessKind, ThreadTrace, WarpAligner};
pub use wlog::{BlockEffects, BlockLog, DevOp, LogScratch, ReplayOutcome};

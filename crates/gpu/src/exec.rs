//! Block execution helper: drive a block's lanes warp by warp, aligning
//! each completed warp's traces into a [`KernelCost`].
//!
//! Every runner (BigKernel's address-generation and compute stages, the
//! buffered baselines' kernels) iterates lanes the same way; this helper is
//! the single copy of that loop.

use crate::spec::{DeviceSpec, WARP_SIZE};
use crate::timing::KernelCost;
use crate::trace::{ThreadTrace, WarpAligner};

/// Reusable per-block simulation state: the warp aligner plus one trace per
/// warp lane. Owning one `BlockSim` per concurrently simulated block lets
/// [`run_block_lanes`] run allocation-free in steady state, and gives the
/// parallel pipeline an obvious unit of thread-private scratch.
pub struct BlockSim {
    /// The block's warp aligner (scratch reused across warps).
    pub aligner: WarpAligner,
    traces: Vec<ThreadTrace>,
}

impl BlockSim {
    /// Fresh scratch for one concurrently simulated block.
    pub fn new() -> Self {
        BlockSim {
            aligner: WarpAligner::new(),
            traces: vec![ThreadTrace::default(); WARP_SIZE],
        }
    }
}

impl Default for BlockSim {
    fn default() -> Self {
        Self::new()
    }
}

/// Run `num_lanes` lanes in warps of 32: `lane_body(lane, trace)` executes
/// one lane's kernel against a fresh trace; after each warp its 32 traces
/// are aligned (coalescing, bank conflicts, divergence) and folded into
/// `cost`.
pub fn run_block_lanes(
    spec: &DeviceSpec,
    sim: &mut BlockSim,
    num_lanes: u32,
    cost: &mut KernelCost,
    mut lane_body: impl FnMut(usize, &mut ThreadTrace),
) {
    let BlockSim { aligner, traces } = sim;
    for warp0 in (0..num_lanes).step_by(WARP_SIZE) {
        let lanes_in_warp = WARP_SIZE.min((num_lanes - warp0) as usize);
        for (li, trace) in traces.iter_mut().enumerate().take(lanes_in_warp) {
            trace.clear();
            lane_body(warp0 as usize + li, trace);
        }
        cost.add_warp(aligner.align(spec, &traces[..lanes_in_warp]));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{AccessClass, AccessKind};

    #[test]
    fn visits_every_lane_once_in_order() {
        let spec = DeviceSpec::test_tiny();
        let mut sim = BlockSim::new();
        let mut cost = KernelCost::new();
        let mut seen = Vec::new();
        run_block_lanes(&spec, &mut sim, 70, &mut cost, |lane, trace| {
            seen.push(lane);
            trace.alu(1);
        });
        assert_eq!(seen, (0..70).collect::<Vec<_>>());
        assert_eq!(cost.useful_instructions, 70);
        // 3 warps: 32 + 32 + 6 lanes; issue slots = 3 warps x 32 slots.
        assert_eq!(cost.issue_slots, 3 * 32);
    }

    #[test]
    fn warp_alignment_is_applied_per_warp() {
        let spec = DeviceSpec::test_tiny();
        let mut sim = BlockSim::new();
        let mut cost = KernelCost::new();
        // 64 lanes each read 4 coalesced bytes: 4 segments per warp.
        run_block_lanes(&spec, &mut sim, 64, &mut cost, |lane, trace| {
            let base = if lane < 32 { 0u64 } else { 1 << 20 };
            trace.record(
                base + (lane % 32) as u64 * 4,
                4,
                AccessKind::Read,
                AccessClass::Dev,
            );
        });
        assert_eq!(cost.mem_transactions, 8);
    }

    #[test]
    fn traces_are_fresh_per_lane() {
        let spec = DeviceSpec::test_tiny();
        let mut sim = BlockSim::new();
        let mut cost = KernelCost::new();
        run_block_lanes(&spec, &mut sim, 40, &mut cost, |_, trace| {
            assert_eq!(trace.instructions, 0, "trace must arrive cleared");
            assert_eq!(trace.access_count(), 0);
            trace.alu(5);
        });
    }
}

//! Functional GPU global memory.
//!
//! Buffers are real byte vectors; every kernel in the reproduction reads and
//! writes actual data through this module, so output correctness is checked
//! end-to-end against the CPU reference implementations. Each buffer is
//! assigned a base *virtual address* in a flat device address space; the
//! coalescing analyzer operates on those addresses, which makes layout
//! effects (interleaved prefetch buffers vs original record layout) visible
//! to the timing model.

use crate::spec::DeviceSpec;

/// Handle to an allocated global-memory buffer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct BufferId(pub(crate) usize);

/// Alignment of buffer base addresses in the virtual device address space.
/// 256 bytes matches CUDA's `cudaMalloc` guarantee and keeps segment math
/// simple.
pub const BASE_ALIGN: u64 = 256;

struct Buffer {
    base: u64,
    data: Vec<u8>,
}

/// The device's global memory: an allocator plus functional byte storage.
pub struct GpuMemory {
    capacity: u64,
    next_base: u64,
    used: u64,
    buffers: Vec<Buffer>,
    /// Storage reclaimed by [`Self::free`], reused by the next [`Self::alloc`]
    /// so the steady-state chunk loop stops churning the host heap. Held
    /// largest-last so `pop` hands back the biggest spare first.
    spares: Vec<Vec<u8>>,
}

impl GpuMemory {
    /// Fresh, empty memory of the device's configured capacity.
    pub fn new(spec: &DeviceSpec) -> Self {
        GpuMemory {
            capacity: spec.mem_capacity,
            next_base: BASE_ALIGN, // keep address 0 unmapped to catch bugs
            used: 0,
            buffers: Vec::new(),
            spares: Vec::new(),
        }
    }

    /// Allocate a zero-initialized buffer. Panics when the device is out of
    /// memory — the runtime is responsible for sizing chunks to fit, and an
    /// overflow here is always a configuration bug in this codebase.
    pub fn alloc(&mut self, len: u64) -> BufferId {
        assert!(
            self.used + len <= self.capacity,
            "GPU out of memory: capacity {} used {} request {}",
            self.capacity,
            self.used,
            len
        );
        let id = BufferId(self.buffers.len());
        let base = self.next_base;
        let padded = len.div_ceil(BASE_ALIGN) * BASE_ALIGN;
        self.next_base = base + padded;
        self.used += len;
        let data = match self.spares.pop() {
            Some(mut v) => {
                v.clear();
                v.resize(len as usize, 0);
                v
            }
            None => vec![0u8; len as usize],
        };
        self.buffers.push(Buffer { base, data });
        id
    }

    /// Free a buffer's storage (the id remains valid but empty; device
    /// address space is not recycled — ids are cheap and runs are finite —
    /// but the backing bytes are kept as spares for later `alloc`s).
    pub fn free(&mut self, id: BufferId) {
        let b = &mut self.buffers[id.0];
        self.used -= b.data.len() as u64;
        let spare = std::mem::take(&mut b.data);
        if spare.capacity() > 0 {
            let at = self
                .spares
                .partition_point(|s| s.capacity() <= spare.capacity());
            self.spares.insert(at, spare);
        }
    }

    /// Length of the buffer in bytes (zero once freed).
    pub fn len(&self, id: BufferId) -> u64 {
        self.buffers[id.0].data.len() as u64
    }

    /// Whether the buffer holds no bytes (zero-length or freed).
    pub fn is_empty(&self, id: BufferId) -> bool {
        self.buffers[id.0].data.is_empty()
    }

    /// Bytes currently allocated across live buffers.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Total device memory capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Virtual device address of `offset` within the buffer (used by the
    /// coalescing model).
    #[inline]
    pub fn vaddr(&self, id: BufferId, offset: u64) -> u64 {
        self.buffers[id.0].base + offset
    }

    /// Borrow `len` bytes starting at `offset`.
    #[inline]
    pub fn read(&self, id: BufferId, offset: u64, len: usize) -> &[u8] {
        let b = &self.buffers[id.0];
        &b.data[offset as usize..offset as usize + len]
    }

    /// Overwrite bytes starting at `offset`.
    #[inline]
    pub fn write(&mut self, id: BufferId, offset: u64, bytes: &[u8]) {
        let b = &mut self.buffers[id.0];
        b.data[offset as usize..offset as usize + bytes.len()].copy_from_slice(bytes);
    }

    /// Read one byte.
    #[inline]
    pub fn read_u8(&self, id: BufferId, offset: u64) -> u8 {
        self.buffers[id.0].data[offset as usize]
    }

    /// Read a little-endian `u32`.
    #[inline]
    pub fn read_u32(&self, id: BufferId, offset: u64) -> u32 {
        u32::from_le_bytes(self.read(id, offset, 4).try_into().unwrap())
    }

    /// Read a little-endian `u64`.
    #[inline]
    pub fn read_u64(&self, id: BufferId, offset: u64) -> u64 {
        u64::from_le_bytes(self.read(id, offset, 8).try_into().unwrap())
    }

    /// Read a little-endian `f64`.
    #[inline]
    pub fn read_f64(&self, id: BufferId, offset: u64) -> f64 {
        f64::from_le_bytes(self.read(id, offset, 8).try_into().unwrap())
    }

    /// Read a little-endian `f32`.
    #[inline]
    pub fn read_f32(&self, id: BufferId, offset: u64) -> f32 {
        f32::from_le_bytes(self.read(id, offset, 4).try_into().unwrap())
    }

    /// Write one byte.
    #[inline]
    pub fn write_u8(&mut self, id: BufferId, offset: u64, v: u8) {
        self.buffers[id.0].data[offset as usize] = v;
    }

    /// Write a little-endian `u32`.
    #[inline]
    pub fn write_u32(&mut self, id: BufferId, offset: u64, v: u32) {
        self.write(id, offset, &v.to_le_bytes());
    }

    /// Write a little-endian `u64`.
    #[inline]
    pub fn write_u64(&mut self, id: BufferId, offset: u64, v: u64) {
        self.write(id, offset, &v.to_le_bytes());
    }

    /// Write a little-endian `f64`.
    #[inline]
    pub fn write_f64(&mut self, id: BufferId, offset: u64, v: f64) {
        self.write(id, offset, &v.to_le_bytes());
    }

    /// Write a little-endian `f32`.
    #[inline]
    pub fn write_f32(&mut self, id: BufferId, offset: u64, v: f32) {
        self.write(id, offset, &v.to_le_bytes());
    }

    /// Functional atomic add on a little-endian u32 cell; returns the old
    /// value. (Kernel threads run sequentially in the simulator, so this is
    /// trivially linearizable; the *cost* of contention is modelled in
    /// `timing`, not here.)
    pub fn atomic_add_u32(&mut self, id: BufferId, offset: u64, v: u32) -> u32 {
        let old = self.read_u32(id, offset);
        self.write_u32(id, offset, old.wrapping_add(v));
        old
    }

    /// Functional atomic add on a u64 cell; see [`Self::atomic_add_u32`].
    pub fn atomic_add_u64(&mut self, id: BufferId, offset: u64, v: u64) -> u64 {
        let old = self.read_u64(id, offset);
        self.write_u64(id, offset, old.wrapping_add(v));
        old
    }

    /// Functional atomic compare-and-swap on a u64 cell; returns the old
    /// value (CUDA `atomicCAS` semantics).
    pub fn atomic_cas_u64(&mut self, id: BufferId, offset: u64, expected: u64, new: u64) -> u64 {
        let old = self.read_u64(id, offset);
        if old == expected {
            self.write_u64(id, offset, new);
        }
        old
    }

    /// Copy raw bytes into the buffer starting at `offset` (DMA landing).
    pub fn dma_in(&mut self, id: BufferId, offset: u64, bytes: &[u8]) {
        self.write(id, offset, bytes);
    }

    /// Copy raw bytes out of the buffer (DMA to host).
    pub fn dma_out(&self, id: BufferId, offset: u64, len: usize) -> Vec<u8> {
        self.read(id, offset, len).to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::DeviceSpec;

    fn mem() -> GpuMemory {
        GpuMemory::new(&DeviceSpec::test_tiny())
    }

    #[test]
    fn alloc_zeroed_and_rw_roundtrip() {
        let mut m = mem();
        let b = m.alloc(1024);
        assert_eq!(m.len(b), 1024);
        assert_eq!(m.read(b, 0, 16), &[0u8; 16]);
        m.write_u64(b, 8, 0xDEAD_BEEF_CAFE_F00D);
        assert_eq!(m.read_u64(b, 8), 0xDEAD_BEEF_CAFE_F00D);
        m.write_f64(b, 16, -2.5);
        assert_eq!(m.read_f64(b, 16), -2.5);
        m.write_f32(b, 24, 1.5);
        assert_eq!(m.read_f32(b, 24), 1.5);
        m.write_u8(b, 0, 7);
        assert_eq!(m.read_u8(b, 0), 7);
        m.write_u32(b, 4, 99);
        assert_eq!(m.read_u32(b, 4), 99);
    }

    #[test]
    fn vaddrs_are_disjoint_and_aligned() {
        let mut m = mem();
        let a = m.alloc(100);
        let b = m.alloc(100);
        assert_eq!(m.vaddr(a, 0) % BASE_ALIGN, 0);
        assert_eq!(m.vaddr(b, 0) % BASE_ALIGN, 0);
        assert!(m.vaddr(b, 0) >= m.vaddr(a, 0) + 100);
        assert_ne!(m.vaddr(a, 0), 0, "address 0 must stay unmapped");
    }

    #[test]
    fn free_releases_capacity() {
        let mut m = mem();
        let cap = m.capacity();
        let b = m.alloc(cap / 2);
        assert_eq!(m.used(), cap / 2);
        m.free(b);
        assert_eq!(m.used(), 0);
        let _ = m.alloc(cap); // fits again
    }

    #[test]
    fn recycled_storage_comes_back_zeroed() {
        let mut m = mem();
        let a = m.alloc(64);
        m.write_u64(a, 0, 0xFFFF_FFFF_FFFF_FFFF);
        m.write_u64(a, 56, 0xAAAA_AAAA_AAAA_AAAA);
        m.free(a);
        // The next alloc reuses the freed storage; the dirty bytes must not
        // leak through the zero-initialization contract — including past the
        // smaller new length after a later grow.
        let b = m.alloc(32);
        assert_eq!(m.read(b, 0, 32), &[0u8; 32]);
        let c = m.alloc(128);
        assert_eq!(m.read(c, 0, 128), &[0u8; 128]);
    }

    #[test]
    #[should_panic(expected = "GPU out of memory")]
    fn oom_panics() {
        let mut m = mem();
        let _ = m.alloc(m.capacity() + 1);
    }

    #[test]
    fn atomic_add_returns_old() {
        let mut m = mem();
        let b = m.alloc(16);
        assert_eq!(m.atomic_add_u32(b, 0, 5), 0);
        assert_eq!(m.atomic_add_u32(b, 0, 3), 5);
        assert_eq!(m.read_u32(b, 0), 8);
        assert_eq!(m.atomic_add_u64(b, 8, 10), 0);
        assert_eq!(m.read_u64(b, 8), 10);
    }

    #[test]
    fn atomic_cas_semantics() {
        let mut m = mem();
        let b = m.alloc(8);
        // empty cell: CAS(0 -> 42) succeeds
        assert_eq!(m.atomic_cas_u64(b, 0, 0, 42), 0);
        // occupied: CAS(0 -> 7) fails, returns current
        assert_eq!(m.atomic_cas_u64(b, 0, 0, 7), 42);
        assert_eq!(m.read_u64(b, 0), 42);
    }

    #[test]
    fn dma_roundtrip() {
        let mut m = mem();
        let b = m.alloc(32);
        m.dma_in(b, 4, &[1, 2, 3, 4]);
        assert_eq!(m.dma_out(b, 4, 4), vec![1, 2, 3, 4]);
    }
}

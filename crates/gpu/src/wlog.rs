//! Per-block device-memory write logs for deterministic parallel replay.
//!
//! The parallel pipeline simulates many thread blocks concurrently, but the
//! sequential schedule it must reproduce bit-for-bit interleaves their
//! device-memory effects in block order. A [`BlockLog`] gives each block an
//! isolated view of [`GpuMemory`]: reads come from a shared immutable
//! snapshot (the memory as of the start of the chunk) merged with the
//! block's own writes, and every externally visible operation is recorded.
//! After the concurrent phase, each block's [`BlockEffects`] is replayed
//! against the live memory *in block order*; recorded read/CAS observations
//! are validated against the live values, and a mismatch (another block
//! wrote data this block consumed) rolls the partial replay back and reports
//! a [`ReplayOutcome::Conflict`] so the caller can re-execute that block
//! against live memory.
//!
//! Two kinds of buffer get different treatment:
//!
//! * **Block-private buffers** (a block's own prefetch/write-value staging
//!   buffers) are registered via [`BlockLog::register_private`]: the log
//!   keeps a dense byte mirror and reads/writes it directly, without
//!   recording ops — no other block can touch them, so there is nothing to
//!   validate. The mirror is committed wholesale on successful replay.
//! * **Shared buffers** (kernel device state: hash tables, accumulators) use
//!   a sparse word-masked overlay for the block's own writes plus an op log.
//!   Plain writes and atomic adds replay blindly (adds commute); reads and
//!   CAS results are validated against the observations made during logging.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use crate::mem::{BufferId, GpuMemory};

/// Multiply-fold hasher for the overlay map. The keys are `(buffer index,
/// word address)` pairs the simulator generates itself, so HashDoS
/// resistance buys nothing here and SipHash showed up as a top-5 cost in
/// profiles of hash-table-heavy kernels (word count, affinity). One odd
/// multiply per word mixes the low bits — where word addresses vary — into
/// the high bits hashbrown uses for bucket selection.
#[derive(Default)]
pub struct OverlayHasher(u64);

impl Hasher for OverlayHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Only reached for non-u64 key parts; fold bytes in 8-byte chunks.
        for c in bytes.chunks(8) {
            let mut b = [0u8; 8];
            b[..c.len()].copy_from_slice(c);
            self.write_u64(u64::from_le_bytes(b));
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0 ^ v).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        // The multiply concentrates entropy in the high bits; rotate some
        // back down for the bucket index.
        self.0.rotate_left(26)
    }
}

type OverlayMap = HashMap<(usize, u64), (u64, u8), BuildHasherDefault<OverlayHasher>>;
type AddCache = HashMap<(usize, u64), usize, BuildHasherDefault<OverlayHasher>>;
type ReadCache = HashMap<(usize, u64, u32), u64, BuildHasherDefault<OverlayHasher>>;

/// Reusable backing storage for [`BlockLog`]s, owned by an execution slot.
///
/// A fresh log per block regrows its overlay map and op vector from empty —
/// rehash churn that showed up as a top-10 cost in atomic-heavy kernels.
/// Building logs over a slot's scratch ([`BlockLog::with_scratch`]) and
/// returning the buffers after replay ([`BlockEffects::reclaim`]) keeps the
/// grown capacity from block to block. All fields are held empty between
/// blocks; only their capacity persists.
#[derive(Default)]
pub struct LogScratch {
    overlay: OverlayMap,
    add_cache: AddCache,
    read_cache: ReadCache,
    overlay_bufs: Vec<usize>,
    ops: Vec<DevOp>,
    privs: Vec<(BufferId, Vec<u8>)>,
    /// Retired private-mirror byte storage, reused by later mirrors.
    mirrors: Vec<Vec<u8>>,
}

/// One logged externally-visible device-memory operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DevOp {
    /// A device read whose observed value must still hold at replay time.
    Read {
        /// Buffer read from.
        buf: BufferId,
        /// Byte offset of the access.
        offset: u64,
        /// Access width in bytes (1..=8).
        width: u32,
        /// Little-endian value observed at logging time.
        observed: u64,
    },
    /// A blind store (last-writer-wins in block order).
    Write {
        /// Buffer written to.
        buf: BufferId,
        /// Byte offset of the access.
        offset: u64,
        /// Access width in bytes (1..=8).
        width: u32,
        /// Little-endian value stored.
        value: u64,
    },
    /// Atomic 32-bit add; commutes, so it replays blindly.
    AddU32 {
        /// Buffer holding the cell.
        buf: BufferId,
        /// Byte offset of the cell.
        offset: u64,
        /// Amount added (wrapping).
        delta: u32,
    },
    /// Atomic 64-bit add; commutes, so it replays blindly.
    AddU64 {
        /// Buffer holding the cell.
        buf: BufferId,
        /// Byte offset of the cell.
        offset: u64,
        /// Amount added (wrapping).
        delta: u64,
    },
    /// Atomic CAS; the observed old value is validated at replay time.
    CasU64 {
        /// Buffer holding the cell.
        buf: BufferId,
        /// Byte offset of the cell.
        offset: u64,
        /// Value the CAS compared against.
        expected: u64,
        /// Value stored when the comparison succeeded.
        new: u64,
        /// Old value observed at logging time.
        observed: u64,
    },
}

/// Result of replaying one block's effects.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[must_use]
pub enum ReplayOutcome {
    /// All observations held; effects are applied.
    Committed,
    /// A validated observation no longer holds; the live memory is unchanged
    /// (partial replay rolled back) and the block must re-execute live.
    Conflict,
}

#[inline]
fn le_load(bytes: &[u8]) -> u64 {
    match bytes.len() {
        8 => u64::from_le_bytes(bytes.try_into().unwrap()),
        4 => u32::from_le_bytes(bytes.try_into().unwrap()) as u64,
        n => {
            let mut b = [0u8; 8];
            b[..n].copy_from_slice(bytes);
            u64::from_le_bytes(b)
        }
    }
}

/// A block's isolated, logged view of device memory.
///
/// `base` is the shared snapshot every concurrent block reads from; it must
/// not change while logs against it are live (the pipeline guarantees this
/// by taking `&GpuMemory` for the whole concurrent phase).
pub struct BlockLog<'m> {
    base: &'m GpuMemory,
    /// Dense mirrors of block-private buffers: `(buf, bytes)`.
    privs: Vec<(BufferId, Vec<u8>)>,
    /// Word-masked overlay of this block's shared-buffer writes:
    /// `(buffer index, byte_addr / 8)` → `(little-endian word, byte mask)`.
    overlay: OverlayMap,
    /// Buffer indices with at least one overlay entry (almost always 0–2:
    /// the kernel's device state). Reads of other shared buffers — notably
    /// the per-byte prefetch-buffer loads of scanning kernels — skip the
    /// overlay probe entirely.
    overlay_bufs: Vec<usize>,
    ops: Vec<DevOp>,
    /// Per-cell index into `ops` of a mergeable atomic add. Adds commute, so
    /// repeat adds to the same cell fold their deltas into one logged op —
    /// but only within an uninterrupted run of adds: the cache is cleared
    /// whenever a `Read`/`Write`/`CasU64` op lands, since adds must not be
    /// reordered across a validation or a blind store to the same cell.
    add_cache: AddCache,
    /// Memoized `Read` observations: a repeat load of the same cell returns
    /// the cached value without logging a duplicate validation op (the first
    /// `Read` already validates it at replay). Cleared on every overlay
    /// store, since any own write may change the observed value.
    read_cache: ReadCache,
    /// Spare mirror storage handed out by `register_private*`.
    mirror_pool: Vec<Vec<u8>>,
}

impl<'m> BlockLog<'m> {
    /// Start an empty log over the shared snapshot `base`.
    pub fn new(base: &'m GpuMemory) -> Self {
        BlockLog {
            base,
            privs: Vec::new(),
            overlay: OverlayMap::default(),
            overlay_bufs: Vec::new(),
            ops: Vec::new(),
            add_cache: AddCache::default(),
            read_cache: ReadCache::default(),
            mirror_pool: Vec::new(),
        }
    }

    /// Start an empty log backed by a slot's reusable scratch storage. Pair
    /// with [`Self::finish_into`] (and [`BlockEffects::reclaim`]) to hand
    /// the grown buffers back for the next block.
    pub fn with_scratch(base: &'m GpuMemory, scratch: &mut LogScratch) -> Self {
        BlockLog {
            base,
            privs: std::mem::take(&mut scratch.privs),
            overlay: std::mem::take(&mut scratch.overlay),
            overlay_bufs: std::mem::take(&mut scratch.overlay_bufs),
            ops: std::mem::take(&mut scratch.ops),
            add_cache: std::mem::take(&mut scratch.add_cache),
            read_cache: std::mem::take(&mut scratch.read_cache),
            mirror_pool: std::mem::take(&mut scratch.mirrors),
        }
    }

    fn fresh_mirror(&mut self) -> Vec<u8> {
        let mut m = self.mirror_pool.pop().unwrap_or_default();
        m.clear();
        m
    }

    /// Declare `buf` block-private: reads and writes bypass the op log and
    /// go to a dense mirror committed wholesale on successful replay.
    pub fn register_private(&mut self, buf: BufferId) {
        debug_assert!(
            self.privs.iter().all(|(b, _)| *b != buf),
            "buffer registered twice"
        );
        let mut mirror = self.fresh_mirror();
        mirror.extend_from_slice(self.base.read(buf, 0, self.base.len(buf) as usize));
        self.privs.push((buf, mirror));
    }

    /// Declare `buf` block-private like [`Self::register_private`], for a
    /// buffer the caller guarantees still holds its freshly-allocated
    /// all-zero contents: the mirror is materialized as zeros without
    /// reading the snapshot, keeping per-block setup off the memcpy path.
    pub fn register_private_zeroed(&mut self, buf: BufferId) {
        debug_assert!(
            self.privs.iter().all(|(b, _)| *b != buf),
            "buffer registered twice"
        );
        debug_assert!(
            self.base
                .read(buf, 0, self.base.len(buf) as usize)
                .iter()
                .all(|&b| b == 0),
            "register_private_zeroed on a buffer with non-zero contents"
        );
        let mut mirror = self.fresh_mirror();
        mirror.resize(self.base.len(buf) as usize, 0);
        self.privs.push((buf, mirror));
    }

    fn priv_index(&self, buf: BufferId) -> Option<usize> {
        self.privs.iter().position(|(b, _)| *b == buf)
    }

    /// Pseudo-virtual address of `offset` within `buf` (see
    /// [`GpuMemory::vaddr`]).
    #[inline]
    pub fn vaddr(&self, buf: BufferId, offset: u64) -> u64 {
        self.base.vaddr(buf, offset)
    }

    /// Expand an 8-bit byte mask to a 64-bit mask with `0xFF` per set bit
    /// (bit `i` selects byte lane `i`). Aligned full-word accesses — the
    /// overwhelmingly common case — short-circuit to all-ones.
    #[inline]
    fn byte_mask(mask: u8) -> u64 {
        if mask == 0xFF {
            return u64::MAX;
        }
        let mut m = 0u64;
        let mut bits = mask;
        while bits != 0 {
            let i = bits.trailing_zeros();
            m |= 0xFFu64 << (i * 8);
            bits &= bits - 1;
        }
        m
    }

    /// Read `width` (1..=8) bytes as a little-endian value, merging this
    /// block's overlay writes over the snapshot. Whole words merge with one
    /// mask operation; a load straddling a word boundary merges both words.
    fn load_merged(&self, buf: BufferId, offset: u64, width: u32) -> u64 {
        let mut v = le_load(self.base.read(buf, offset, width as usize));
        if self.overlay_bufs.contains(&buf.0) {
            let w0 = offset / 8;
            let w1 = (offset + width as u64 - 1) / 8;
            for w in w0..=w1 {
                if let Some(&(val, mask)) = self.overlay.get(&(buf.0, w)) {
                    // Byte lanes of word `w` covered by this load: lane `l`
                    // of the word is byte `w*8 + l - offset` of the value.
                    let lo = (w * 8).max(offset);
                    let hi = (w * 8 + 8).min(offset + width as u64);
                    let lanes =
                        ((1u16 << (hi - w * 8)) - 1) as u8 & !(((1u16 << (lo - w * 8)) - 1) as u8);
                    let m = Self::byte_mask(mask & lanes);
                    // Align the word's bytes to the value's byte lanes.
                    if w * 8 >= offset {
                        let sh = ((w * 8 - offset) * 8) as u32;
                        v = (v & !(m << sh)) | ((val & m) << sh);
                    } else {
                        let sh = ((offset - w * 8) * 8) as u32;
                        v = (v & !(m >> sh)) | ((val & m) >> sh);
                    }
                }
            }
        }
        v
    }

    fn store_overlay(&mut self, buf: BufferId, offset: u64, width: u32, value: u64) {
        if !self.read_cache.is_empty() {
            self.read_cache.clear();
        }
        if !self.overlay_bufs.contains(&buf.0) {
            self.overlay_bufs.push(buf.0);
        }
        let w0 = offset / 8;
        let w1 = (offset + width as u64 - 1) / 8;
        for w in w0..=w1 {
            let lo = (w * 8).max(offset);
            let hi = (w * 8 + 8).min(offset + width as u64);
            let lanes = ((1u16 << (hi - w * 8)) - 1) as u8 & !(((1u16 << (lo - w * 8)) - 1) as u8);
            let m = Self::byte_mask(lanes);
            // Word lane `l` holds value byte `l + (w*8 - offset)`.
            let word_val = if w * 8 >= offset {
                value >> ((w * 8 - offset) * 8)
            } else {
                value << ((offset - w * 8) * 8)
            };
            let e = self.overlay.entry((buf.0, w)).or_insert((0, 0));
            e.0 = (e.0 & !m) | (word_val & m);
            e.1 |= lanes;
        }
    }

    /// Load from a mapped-stream staging buffer. Never logged: private
    /// buffers read their mirror, shared buffers read the merged view — the
    /// pipeline only routes stream loads here for buffers whose contents
    /// other blocks cannot change before this block's replay.
    pub fn stream_load(&self, buf: BufferId, offset: u64, width: u32) -> u64 {
        match self.priv_index(buf) {
            Some(i) => le_load(&self.privs[i].1[offset as usize..(offset + width as u64) as usize]),
            None => self.load_merged(buf, offset, width),
        }
    }

    /// Store `width` bytes. Private buffers update their mirror; shared
    /// buffers record a blind `Write` op (last writer in block order wins).
    pub fn store(&mut self, buf: BufferId, offset: u64, width: u32, value: u64) {
        match self.priv_index(buf) {
            Some(i) => {
                let bytes = value.to_le_bytes();
                self.privs[i].1[offset as usize..(offset + width as u64) as usize]
                    .copy_from_slice(&bytes[..width as usize]);
            }
            None => {
                self.store_overlay(buf, offset, width, value);
                self.add_cache.clear();
                self.ops.push(DevOp::Write {
                    buf,
                    offset,
                    width,
                    value,
                });
            }
        }
    }

    /// Load from a device buffer. Shared-buffer loads log the observed value
    /// for replay-time validation.
    pub fn dev_load(&mut self, buf: BufferId, offset: u64, width: u32) -> u64 {
        match self.priv_index(buf) {
            Some(i) => le_load(&self.privs[i].1[offset as usize..(offset + width as u64) as usize]),
            None => {
                let key = (buf.0, offset, width);
                if let Some(&v) = self.read_cache.get(&key) {
                    return v;
                }
                let observed = self.load_merged(buf, offset, width);
                self.add_cache.clear();
                self.ops.push(DevOp::Read {
                    buf,
                    offset,
                    width,
                    observed,
                });
                self.read_cache.insert(key, observed);
                observed
            }
        }
    }

    /// Atomic add on a u32 cell; returns the old value *as seen by this
    /// block* (snapshot + own effects). Kernels whose results depend on the
    /// cross-block old value must declare themselves non-replayable.
    pub fn atomic_add_u32(&mut self, buf: BufferId, offset: u64, delta: u32) -> u32 {
        match self.priv_index(buf) {
            Some(i) => {
                let old = le_load(&self.privs[i].1[offset as usize..offset as usize + 4]) as u32;
                self.privs[i].1[offset as usize..offset as usize + 4]
                    .copy_from_slice(&old.wrapping_add(delta).to_le_bytes());
                old
            }
            None => {
                let old = self.load_merged(buf, offset, 4) as u32;
                self.store_overlay(buf, offset, 4, old.wrapping_add(delta) as u64);
                let key = (buf.0, offset);
                if let Some(&idx) = self.add_cache.get(&key) {
                    if let DevOp::AddU32 { delta: d, .. } = &mut self.ops[idx] {
                        *d = d.wrapping_add(delta);
                        return old;
                    }
                }
                self.add_cache.insert(key, self.ops.len());
                self.ops.push(DevOp::AddU32 { buf, offset, delta });
                old
            }
        }
    }

    /// Atomic add on a u64 cell; same semantics as [`Self::atomic_add_u32`].
    pub fn atomic_add_u64(&mut self, buf: BufferId, offset: u64, delta: u64) -> u64 {
        match self.priv_index(buf) {
            Some(i) => {
                let old = le_load(&self.privs[i].1[offset as usize..offset as usize + 8]);
                self.privs[i].1[offset as usize..offset as usize + 8]
                    .copy_from_slice(&old.wrapping_add(delta).to_le_bytes());
                old
            }
            None => {
                let old = if offset & 7 == 0 {
                    // Aligned full-word cell — the common atomic-table shape.
                    // One overlay entry lookup serves both the merged load
                    // and the store; the bookkeeping (read-cache
                    // invalidation, overlay-buffer registration) matches
                    // `load_merged` + `store_overlay` exactly.
                    if !self.read_cache.is_empty() {
                        self.read_cache.clear();
                    }
                    if !self.overlay_bufs.contains(&buf.0) {
                        self.overlay_bufs.push(buf.0);
                    }
                    let base_v = le_load(self.base.read(buf, offset, 8));
                    let e = self.overlay.entry((buf.0, offset / 8)).or_insert((0, 0));
                    let m = Self::byte_mask(e.1);
                    let old = (base_v & !m) | (e.0 & m);
                    *e = (old.wrapping_add(delta), 0xFF);
                    old
                } else {
                    let old = self.load_merged(buf, offset, 8);
                    self.store_overlay(buf, offset, 8, old.wrapping_add(delta));
                    old
                };
                let key = (buf.0, offset);
                if let Some(&idx) = self.add_cache.get(&key) {
                    if let DevOp::AddU64 { delta: d, .. } = &mut self.ops[idx] {
                        *d = d.wrapping_add(delta);
                        return old;
                    }
                }
                self.add_cache.insert(key, self.ops.len());
                self.ops.push(DevOp::AddU64 { buf, offset, delta });
                old
            }
        }
    }

    /// Atomic CAS with CUDA semantics (returns the old value). The observed
    /// old value is validated at replay, so CAS-consuming kernels (hash
    /// inserts) stay replayable: if another block won the slot first, replay
    /// detects the stale observation and the block re-executes live.
    pub fn atomic_cas_u64(&mut self, buf: BufferId, offset: u64, expected: u64, new: u64) -> u64 {
        match self.priv_index(buf) {
            Some(i) => {
                let old = le_load(&self.privs[i].1[offset as usize..offset as usize + 8]);
                if old == expected {
                    self.privs[i].1[offset as usize..offset as usize + 8]
                        .copy_from_slice(&new.to_le_bytes());
                }
                old
            }
            None => {
                let observed = self.load_merged(buf, offset, 8);
                if observed == expected {
                    self.store_overlay(buf, offset, 8, new);
                }
                self.add_cache.clear();
                self.ops.push(DevOp::CasU64 {
                    buf,
                    offset,
                    expected,
                    new,
                    observed,
                });
                observed
            }
        }
    }

    /// Consume the log into its replayable effects.
    pub fn finish(self) -> BlockEffects {
        BlockEffects {
            privs: self.privs,
            ops: self.ops,
        }
    }

    /// Consume the log into its replayable effects, returning the cache
    /// storage to `scratch` immediately (the op and mirror buffers follow
    /// via [`BlockEffects::reclaim`] once replayed).
    pub fn finish_into(mut self, scratch: &mut LogScratch) -> BlockEffects {
        self.overlay.clear();
        self.add_cache.clear();
        self.read_cache.clear();
        self.overlay_bufs.clear();
        scratch.overlay = self.overlay;
        scratch.add_cache = self.add_cache;
        scratch.read_cache = self.read_cache;
        scratch.overlay_bufs = self.overlay_bufs;
        scratch.mirrors = self.mirror_pool;
        BlockEffects {
            privs: self.privs,
            ops: self.ops,
        }
    }
}

/// The externally visible effects of one logged block, ready for in-order
/// replay.
pub struct BlockEffects {
    privs: Vec<(BufferId, Vec<u8>)>,
    ops: Vec<DevOp>,
}

impl BlockEffects {
    /// Whether the block produced no externally visible effects at all.
    pub fn is_empty(&self) -> bool {
        self.privs.is_empty() && self.ops.is_empty()
    }

    /// Return the effect buffers to `scratch` after replay, keeping their
    /// capacity for the next block's log.
    pub fn reclaim(mut self, scratch: &mut LogScratch) {
        self.ops.clear();
        scratch.ops = self.ops;
        scratch.mirrors.extend(self.privs.drain(..).map(|(_, m)| m));
        scratch.privs = self.privs;
    }

    /// Apply this block's effects to live memory. On a validation failure
    /// every op applied so far is rolled back (byte-exact) and `Conflict` is
    /// returned with `gmem` unchanged.
    pub fn replay(&self, gmem: &mut GpuMemory) -> ReplayOutcome {
        let mut undo: Vec<(BufferId, u64, u32, [u8; 8])> = Vec::new();
        let save = |gmem: &GpuMemory, buf: BufferId, offset: u64, width: u32| {
            let mut bytes = [0u8; 8];
            bytes[..width as usize].copy_from_slice(gmem.read(buf, offset, width as usize));
            (buf, offset, width, bytes)
        };
        for op in &self.ops {
            match *op {
                DevOp::Read {
                    buf,
                    offset,
                    width,
                    observed,
                } => {
                    let live = le_load(gmem.read(buf, offset, width as usize));
                    if live != observed {
                        Self::rollback(gmem, &undo);
                        return ReplayOutcome::Conflict;
                    }
                }
                DevOp::Write {
                    buf,
                    offset,
                    width,
                    value,
                } => {
                    undo.push(save(gmem, buf, offset, width));
                    gmem.write(buf, offset, &value.to_le_bytes()[..width as usize]);
                }
                DevOp::AddU32 { buf, offset, delta } => {
                    undo.push(save(gmem, buf, offset, 4));
                    let _ = gmem.atomic_add_u32(buf, offset, delta);
                }
                DevOp::AddU64 { buf, offset, delta } => {
                    undo.push(save(gmem, buf, offset, 8));
                    let _ = gmem.atomic_add_u64(buf, offset, delta);
                }
                DevOp::CasU64 {
                    buf,
                    offset,
                    expected,
                    new,
                    observed,
                } => {
                    let live = gmem.read_u64(buf, offset);
                    if live != observed {
                        Self::rollback(gmem, &undo);
                        return ReplayOutcome::Conflict;
                    }
                    undo.push(save(gmem, buf, offset, 8));
                    let _ = gmem.atomic_cas_u64(buf, offset, expected, new);
                }
            }
        }
        for (buf, bytes) in &self.privs {
            gmem.write(*buf, 0, bytes);
        }
        ReplayOutcome::Committed
    }

    fn rollback(gmem: &mut GpuMemory, undo: &[(BufferId, u64, u32, [u8; 8])]) {
        for &(buf, offset, width, bytes) in undo.iter().rev() {
            gmem.write(buf, offset, &bytes[..width as usize]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::DeviceSpec;

    fn mem() -> GpuMemory {
        GpuMemory::new(&DeviceSpec::test_tiny())
    }

    #[test]
    fn private_buffer_roundtrip_and_commit() {
        let mut m = mem();
        let b = m.alloc(64);
        m.write_u64(b, 0, 11);
        let mut log = BlockLog::new(&m);
        log.register_private(b);
        assert_eq!(log.stream_load(b, 0, 8), 11);
        log.store(b, 8, 8, 22);
        assert_eq!(log.stream_load(b, 8, 8), 22);
        assert_eq!(log.atomic_add_u32(b, 16, 5), 0);
        assert_eq!(log.atomic_add_u32(b, 16, 5), 5);
        let fx = log.finish();
        // Nothing hit gmem yet; replay commits the mirror wholesale.
        assert_eq!(m.read_u64(b, 8), 0);
        assert_eq!(fx.replay(&mut m), ReplayOutcome::Committed);
        assert_eq!(m.read_u64(b, 8), 22);
        assert_eq!(m.read_u32(b, 16), 10);
    }

    #[test]
    fn shared_overlay_merges_own_writes() {
        let mut m = mem();
        let b = m.alloc(64);
        m.write_u64(b, 0, 0x8877665544332211);
        let mut log = BlockLog::new(&m);
        // Own 4-byte write at offset 2 straddles nothing; merged load at
        // offset 0 must mix base and overlay bytes.
        log.store(b, 2, 4, 0xDDCCBBAA);
        assert_eq!(log.stream_load(b, 0, 8), 0x8877DDCCBBAA2211);
        // Base memory untouched until replay.
        assert_eq!(m.read_u64(b, 0), 0x8877665544332211);
        let outcome = log.finish().replay(&mut m);
        assert_eq!(outcome, ReplayOutcome::Committed);
        assert_eq!(m.read_u64(b, 0), 0x8877DDCCBBAA2211);
    }

    #[test]
    fn word_straddling_store_merges_across_words() {
        let mut m = mem();
        let b = m.alloc(64);
        let mut log = BlockLog::new(&m);
        // 4-byte store at offset 6 straddles the word boundary at 8.
        log.store(b, 6, 4, 0x44332211);
        assert_eq!(log.stream_load(b, 6, 4), 0x44332211);
        assert_eq!(log.stream_load(b, 0, 8), 0x2211_0000_0000_0000);
        assert_eq!(log.stream_load(b, 8, 8), 0x4433);
        let outcome = log.finish().replay(&mut m);
        assert_eq!(outcome, ReplayOutcome::Committed);
        assert_eq!(m.read_u32(b, 6), 0x44332211);
    }

    #[test]
    fn adds_chain_locally_and_replay_applies_on_top_of_live() {
        let mut m = mem();
        let b = m.alloc(16);
        m.write_u64(b, 0, 100);
        let mut log = BlockLog::new(&m);
        assert_eq!(log.atomic_add_u64(b, 0, 7), 100);
        assert_eq!(log.atomic_add_u64(b, 0, 3), 107);
        let fx = log.finish();
        // Another (earlier) block bumped the cell before replay: adds
        // commute, so replay lands on top without conflict.
        m.atomic_add_u64(b, 0, 1000);
        assert_eq!(fx.replay(&mut m), ReplayOutcome::Committed);
        assert_eq!(m.read_u64(b, 0), 1110);
    }

    #[test]
    fn stale_read_conflicts_and_rolls_back() {
        let mut m = mem();
        let b = m.alloc(32);
        m.write_u64(b, 0, 5);
        let mut log = BlockLog::new(&m);
        log.store(b, 8, 8, 0xFEED); // applied before the read during replay
        assert_eq!(log.dev_load(b, 0, 8), 5);
        let fx = log.finish();
        m.write_u64(b, 0, 6); // earlier block invalidates the observation
        assert_eq!(fx.replay(&mut m), ReplayOutcome::Conflict);
        // The already-applied write was rolled back byte-exactly.
        assert_eq!(m.read_u64(b, 8), 0);
        assert_eq!(m.read_u64(b, 0), 6);
    }

    #[test]
    fn stale_cas_conflicts() {
        let mut m = mem();
        let b = m.alloc(16);
        let mut log = BlockLog::new(&m);
        // Block claims an empty slot.
        assert_eq!(log.atomic_cas_u64(b, 0, 0, 42), 0);
        let fx = log.finish();
        // An earlier block claimed it first.
        assert_eq!(m.atomic_cas_u64(b, 0, 0, 7), 0);
        assert_eq!(fx.replay(&mut m), ReplayOutcome::Conflict);
        assert_eq!(m.read_u64(b, 0), 7);
    }

    #[test]
    fn adds_do_not_merge_across_a_validated_read() {
        let mut m = mem();
        let b = m.alloc(16);
        m.write_u64(b, 0, 10);
        let mut log = BlockLog::new(&m);
        // If the second add folded into the first, replay would apply +3
        // before the read validation and spuriously conflict.
        assert_eq!(log.atomic_add_u64(b, 0, 1), 10);
        assert_eq!(log.dev_load(b, 0, 8), 11);
        assert_eq!(log.atomic_add_u64(b, 0, 2), 11);
        let fx = log.finish();
        assert_eq!(fx.replay(&mut m), ReplayOutcome::Committed);
        assert_eq!(m.read_u64(b, 0), 13);
    }

    #[test]
    fn adds_do_not_merge_across_a_blind_write() {
        let mut m = mem();
        let b = m.alloc(16);
        let mut log = BlockLog::new(&m);
        log.atomic_add_u64(b, 0, 1);
        log.store(b, 0, 8, 100);
        log.atomic_add_u64(b, 0, 2);
        let fx = log.finish();
        assert_eq!(fx.replay(&mut m), ReplayOutcome::Committed);
        // Replay order must stay add, write, add: 1 → 100 → 102.
        assert_eq!(m.read_u64(b, 0), 102);
    }

    #[test]
    fn coalesced_adds_replay_with_the_summed_delta() {
        let mut m = mem();
        let b = m.alloc(32);
        let mut log = BlockLog::new(&m);
        for i in 0..100u64 {
            assert_eq!(log.atomic_add_u64(b, 0, 1), i);
            log.atomic_add_u32(b, 8, 2);
        }
        let fx = log.finish();
        // An earlier block's adds land first; commuting adds stack on top.
        m.atomic_add_u64(b, 0, 1000);
        assert_eq!(fx.replay(&mut m), ReplayOutcome::Committed);
        assert_eq!(m.read_u64(b, 0), 1100);
        assert_eq!(m.read_u32(b, 8), 200);
    }

    #[test]
    fn repeat_reads_see_own_writes_between_them() {
        let mut m = mem();
        let b = m.alloc(16);
        m.write_u64(b, 0, 7);
        let mut log = BlockLog::new(&m);
        assert_eq!(log.dev_load(b, 0, 8), 7);
        assert_eq!(log.dev_load(b, 0, 8), 7, "memoized repeat read");
        log.store(b, 0, 8, 99);
        assert_eq!(log.dev_load(b, 0, 8), 99, "own write invalidates memo");
        let fx = log.finish();
        assert_eq!(fx.replay(&mut m), ReplayOutcome::Committed);
        assert_eq!(m.read_u64(b, 0), 99);
    }

    #[test]
    fn successful_cas_replays() {
        let mut m = mem();
        let b = m.alloc(16);
        let mut log = BlockLog::new(&m);
        assert_eq!(log.atomic_cas_u64(b, 0, 0, 42), 0);
        // A second CAS by the same block sees its own claim.
        assert_eq!(log.atomic_cas_u64(b, 0, 0, 9), 42);
        let fx = log.finish();
        assert_eq!(fx.replay(&mut m), ReplayOutcome::Committed);
        assert_eq!(m.read_u64(b, 0), 42);
    }
}

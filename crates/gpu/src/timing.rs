//! Kernel-stage timing: aggregate warp costs into a roofline duration.
//!
//! A GPU stage (address generation or computation) is characterized by the
//! totals accumulated in [`KernelCost`]; its duration on a [`GpuPool`] (the
//! whole device, or the half of it that BigKernel dedicates to each thread
//! role) is the maximum of:
//!
//! * the **issue bound**: warp issue slots / aggregate issue rate;
//! * the **memory bound**: transacted bytes / achievable DRAM bandwidth —
//!   this is where coalescing quality changes everything;
//! * the **atomic bound**: throughput of the atomic units plus the serial
//!   chain on the hottest address (the centralized hash-table effect that
//!   dominates Word Count);
//! * plus fixed overheads: barrier executions and a per-launch constant.
//!
//! Occupancy scales the achievable issue rate: with too few resident warps
//! an SM cannot hide latency, so a low occupancy fraction derates compute
//! throughput (it does not derate DRAM bandwidth, which saturates with few
//! warps on streaming patterns).

use crate::spec::DeviceSpec;
use crate::trace::WarpCost;
use bk_simcore::{RooflineTerms, SimTime};

/// L2 bandwidth relative to DRAM bandwidth. Kepler GK104's L2 sustains
/// roughly 2-3x its DRAM bandwidth on sector-hit streams, and its 512 KiB
/// capacity sits right at the concurrent working set of a full complement
/// of per-thread streaming warps — so treating every one-step reuse as an
/// L2 hit at 2x DRAM speed is the balanced middle of those two effects.
pub const L2_BANDWIDTH_FACTOR: f64 = 2.0;

/// Accumulated cost of one kernel stage execution over a chunk.
#[derive(Clone, Debug, Default)]
pub struct KernelCost {
    /// Warp issue slots consumed (lock-step; includes divergence waste).
    pub issue_slots: u64,
    /// Sum of per-lane instruction counts (useful work).
    pub useful_instructions: u64,
    /// Global-memory transactions after coalescing.
    pub mem_transactions: u64,
    /// Bytes moved over DRAM (segment-granular).
    pub mem_bytes_moved: u64,
    /// Bytes served from the L2 reuse window instead of DRAM.
    pub mem_bytes_l2: u64,
    /// Bytes the lanes actually asked for.
    pub mem_bytes_useful: u64,
    /// Global atomic operations issued.
    pub atomic_ops: u64,
    /// Shared-memory accesses issued.
    pub shared_accesses: u64,
    /// Block-wide barriers executed.
    pub barriers: u64,
    /// Address of every atomic issued, appended raw — the stage hot path
    /// pays one `extend` per warp; contention (the serial chain on the
    /// hottest cell) is derived by sorting once in
    /// [`Self::hot_atomic_max`].
    atomic_addrs: Vec<u64>,
}

impl KernelCost {
    /// An empty cost (identical to `Default`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one warp's cost into the stage totals.
    pub fn add_warp(&mut self, w: &WarpCost) {
        self.issue_slots += w.issue_slots;
        self.useful_instructions += w.useful_instructions;
        self.mem_transactions += w.mem.transactions;
        self.mem_bytes_moved += w.mem.bytes_moved;
        self.mem_bytes_l2 += w.mem.bytes_l2;
        self.mem_bytes_useful += w.mem.bytes_useful;
        self.shared_accesses += w.shared_accesses;
        self.atomic_ops += w.atomic_addrs.len() as u64;
        self.atomic_addrs.extend_from_slice(&w.atomic_addrs);
    }

    /// Account `n` block-wide barriers.
    pub fn add_barrier(&mut self, n: u64) {
        self.barriers += n;
    }

    /// Merge another stage cost (e.g. across thread blocks).
    pub fn merge(&mut self, other: &KernelCost) {
        self.issue_slots += other.issue_slots;
        self.useful_instructions += other.useful_instructions;
        self.mem_transactions += other.mem_transactions;
        self.mem_bytes_moved += other.mem_bytes_moved;
        self.mem_bytes_l2 += other.mem_bytes_l2;
        self.mem_bytes_useful += other.mem_bytes_useful;
        self.atomic_ops += other.atomic_ops;
        self.shared_accesses += other.shared_accesses;
        self.barriers += other.barriers;
        self.atomic_addrs.extend_from_slice(&other.atomic_addrs);
    }

    /// Largest number of atomics aimed at a single address.
    pub fn hot_atomic_max(&self) -> u64 {
        if self.atomic_addrs.is_empty() {
            return 0;
        }
        let mut addrs = self.atomic_addrs.clone();
        addrs.sort_unstable();
        let mut best = 1u64;
        let mut run = 1u64;
        for w in addrs.windows(2) {
            run = if w[1] == w[0] { run + 1 } else { 1 };
            best = best.max(run);
        }
        best
    }

    /// Moved/useful byte ratio (1.0 = perfectly coalesced).
    pub fn coalescing_inflation(&self) -> f64 {
        if self.mem_bytes_useful == 0 {
            0.0
        } else {
            self.mem_bytes_moved as f64 / self.mem_bytes_useful as f64
        }
    }

    /// Whether the stage did no accountable work at all.
    pub fn is_empty(&self) -> bool {
        self.issue_slots == 0 && self.mem_transactions == 0 && self.atomic_ops == 0
    }
}

/// A share of the device's execution resources.
///
/// BigKernel launches twice the threads and dedicates alternate warps to
/// address generation vs computation (§III), so each role gets roughly half
/// the issue throughput; `fraction` expresses that split. DRAM bandwidth is
/// not split: a single role easily saturates it and the pipeline overlaps
/// the two roles' phases.
#[derive(Clone, Debug)]
pub struct GpuPool {
    spec: DeviceSpec,
    fraction: f64,
    /// Issue-rate derating from occupancy (latency hiding), in `(0, 1]`.
    occupancy_factor: f64,
}

impl GpuPool {
    /// A pool giving `fraction` of the device's issue throughput, derated
    /// by `occupancy_factor` (both in `(0, 1]`).
    pub fn new(spec: DeviceSpec, fraction: f64, occupancy_factor: f64) -> Self {
        assert!(fraction > 0.0 && fraction <= 1.0, "invalid pool fraction");
        assert!(
            occupancy_factor > 0.0 && occupancy_factor <= 1.0,
            "invalid occupancy factor"
        );
        GpuPool {
            spec,
            fraction,
            occupancy_factor,
        }
    }

    /// The whole device at full occupancy.
    pub fn whole(spec: DeviceSpec) -> Self {
        Self::new(spec, 1.0, 1.0)
    }

    /// The underlying device description.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// Roofline duration of a stage with this cost.
    pub fn stage_terms(&self, cost: &KernelCost) -> RooflineTerms {
        let s = &self.spec;
        let mut t = RooflineTerms::new();

        let issue_rate = s.issue_rate() * self.fraction * self.occupancy_factor;
        t.bound(
            "gpu-issue",
            SimTime::from_secs(cost.issue_slots as f64 / issue_rate),
        );

        t.bound(
            "gpu-mem",
            s.mem_bandwidth.transfer_time(cost.mem_bytes_moved),
        );

        if cost.mem_bytes_l2 > 0 {
            // L2 sector hits: ~4x DRAM bandwidth on Kepler-class parts.
            t.bound(
                "gpu-l2",
                s.mem_bandwidth
                    .scale(L2_BANDWIDTH_FACTOR)
                    .transfer_time(cost.mem_bytes_l2),
            );
        }

        if cost.atomic_ops > 0 {
            // Atomic units: one per SM, `atomic_cycles` per op throughput.
            let atomic_rate = s.num_sms as f64 * s.clock.as_hz() / s.atomic_cycles;
            t.bound(
                "gpu-atomic-throughput",
                SimTime::from_secs(cost.atomic_ops as f64 / atomic_rate),
            );
            // Hot-address serial chain: conflicting RMWs to one cell cannot
            // be parallelized across SMs at all.
            let hot = cost.hot_atomic_max();
            t.bound(
                "gpu-atomic-conflict",
                s.clock.cycles(hot as f64 * s.atomic_conflict_cycles),
            );
        }

        t.fixed(s.clock.cycles(cost.barriers as f64 * s.barrier_cycles));
        t
    }

    /// [`Self::stage_terms`] collapsed to the roofline duration.
    pub fn stage_time(&self, cost: &KernelCost) -> SimTime {
        self.stage_terms(cost).duration()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coalesce::StepCost;
    use crate::trace::WarpCost;

    fn warp(issue: u64, txns: u64, atomics: Vec<u64>) -> WarpCost {
        WarpCost {
            mem: StepCost {
                transactions: txns,
                bytes_moved: txns * 32,
                bytes_l2: 0,
                bytes_useful: txns * 32,
            },
            issue_slots: issue,
            useful_instructions: issue,
            atomic_addrs: atomics,
            shared_accesses: 0,
            bank_replay_slots: 0,
        }
    }

    #[test]
    fn accumulation_and_merge() {
        let mut a = KernelCost::new();
        a.add_warp(&warp(100, 10, vec![4096, 4096]));
        let mut b = KernelCost::new();
        b.add_warp(&warp(50, 5, vec![4096, 8192]));
        a.merge(&b);
        assert_eq!(a.issue_slots, 150);
        assert_eq!(a.mem_transactions, 15);
        assert_eq!(a.atomic_ops, 4);
        assert_eq!(a.hot_atomic_max(), 3); // 4096 hit three times
    }

    #[test]
    fn memory_bound_dominates_when_uncoalesced() {
        let spec = DeviceSpec::gtx680();
        let pool = GpuPool::whole(spec);
        let mut c = KernelCost::new();
        // Huge memory traffic, little compute.
        c.mem_bytes_moved = 100 * (1u64 << 30);
        c.issue_slots = 1_000;
        let terms = pool.stage_terms(&c);
        assert_eq!(terms.dominant().unwrap().label, "gpu-mem");
    }

    #[test]
    fn issue_bound_dominates_for_compute_heavy() {
        let pool = GpuPool::whole(DeviceSpec::gtx680());
        let mut c = KernelCost::new();
        c.issue_slots = 10u64.pow(13);
        c.mem_bytes_moved = 1024;
        assert_eq!(pool.stage_terms(&c).dominant().unwrap().label, "gpu-issue");
    }

    #[test]
    fn hot_atomics_serialize() {
        let pool = GpuPool::whole(DeviceSpec::gtx680());
        let mut spread = KernelCost::new();
        let mut hot = KernelCost::new();
        for i in 0..10_000u64 {
            spread.add_warp(&warp(1, 0, vec![i * 64]));
            hot.add_warp(&warp(1, 0, vec![4096]));
        }
        assert!(pool.stage_time(&hot) > pool.stage_time(&spread) * 5.0);
    }

    #[test]
    fn half_pool_is_slower_for_compute() {
        let spec = DeviceSpec::gtx680();
        let whole = GpuPool::whole(spec.clone());
        let half = GpuPool::new(spec, 0.5, 1.0);
        let mut c = KernelCost::new();
        c.issue_slots = 1u64 << 32;
        let t_whole = whole.stage_time(&c);
        let t_half = half.stage_time(&c);
        assert!((t_half.secs() / t_whole.secs() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn occupancy_derates_issue_not_memory() {
        let spec = DeviceSpec::gtx680();
        let full = GpuPool::new(spec.clone(), 1.0, 1.0);
        let low = GpuPool::new(spec, 1.0, 0.25);
        let mut mem_heavy = KernelCost::new();
        mem_heavy.mem_bytes_moved = 10 * (1u64 << 30);
        assert_eq!(full.stage_time(&mem_heavy), low.stage_time(&mem_heavy));
        let mut cpu_heavy = KernelCost::new();
        cpu_heavy.issue_slots = 1u64 << 40;
        assert!(low.stage_time(&cpu_heavy) > full.stage_time(&cpu_heavy) * 3.9);
    }

    #[test]
    fn barriers_add_fixed_cost() {
        let pool = GpuPool::whole(DeviceSpec::gtx680());
        let mut a = KernelCost::new();
        a.issue_slots = 1000;
        let base = pool.stage_time(&a);
        a.add_barrier(1000);
        assert!(pool.stage_time(&a) > base);
    }

    #[test]
    fn coalescing_inflation_reported() {
        let mut c = KernelCost::new();
        c.mem_bytes_moved = 800;
        c.mem_bytes_useful = 100;
        assert_eq!(c.coalescing_inflation(), 8.0);
        assert_eq!(KernelCost::new().coalescing_inflation(), 0.0);
    }

    #[test]
    #[should_panic(expected = "invalid pool fraction")]
    fn zero_fraction_rejected() {
        let _ = GpuPool::new(DeviceSpec::test_tiny(), 0.0, 1.0);
    }

    #[test]
    fn empty_cost_is_empty_and_free() {
        let c = KernelCost::new();
        assert!(c.is_empty());
        let pool = GpuPool::whole(DeviceSpec::test_tiny());
        assert_eq!(pool.stage_time(&c), SimTime::ZERO);
    }
}

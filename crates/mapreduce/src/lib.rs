//! # bk-mapreduce — MapReduce over BigKernel-streamed data
//!
//! The paper's concluding remarks name this as the next step: *"we plan on
//! applying BigKernel to MapReduce."* This crate builds that layer on the
//! reproduction's runtime:
//!
//! * a [`MapJob`] decodes records from a mapped stream and emits
//!   `(key, value)` pairs;
//! * an [`Emitter`] combines pairs GPU-side into a device hash table with an
//!   associative [`ReduceOp`] (sum / count / min / max) — the combiner that
//!   makes the map phase a pure streaming kernel, exactly the computation
//!   class BigKernel targets;
//! * [`run_mapreduce`] adapts the job to a [`StreamKernel`] and runs it under
//!   any of the paper's five implementations, then drains and finalizes the
//!   table host-side (the reduce phase).
//!
//! The adapter means a MapReduce job inherits everything measured in the
//! evaluation: pipelined transfers, pattern-compressed address streams,
//! coalesced prefetch layout, and the cross-checked address slice. For flat
//! record scans, [`schema::FieldJob`] goes one step further and derives
//! *both* kernel halves from a declarative record schema.
//!
//! [`StreamKernel`]: bk_runtime::StreamKernel

pub mod emitter;
pub mod job;
pub mod runner;
pub mod schema;

pub use emitter::{Emitter, ReduceOp};
pub use job::MapJob;
pub use runner::{run_mapreduce, Engine, MapReduceOutput};
pub use schema::{Field, FieldJob};

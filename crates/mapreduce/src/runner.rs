//! Run a MapReduce job under any of the paper's implementations.

use crate::emitter::{Emitter, ReduceOp};
use crate::job::{MapJob, MapKernel};
use bk_baselines::{
    run_cpu_multithreaded, run_cpu_serial, run_gpu_double_buffer, run_gpu_single_buffer,
    BaselineConfig,
};
use bk_runtime::{run_bigkernel, BigKernelConfig, LaunchConfig, Machine, RunResult, StreamArray};

/// Which execution scheme drives the map phase.
#[derive(Clone, Debug)]
pub enum Engine {
    CpuSerial,
    CpuMultithreaded,
    GpuSingleBuffer(BaselineConfig, LaunchConfig),
    GpuDoubleBuffer(BaselineConfig, LaunchConfig),
    BigKernel(BigKernelConfig, LaunchConfig),
}

impl Default for Engine {
    fn default() -> Self {
        Engine::BigKernel(BigKernelConfig::default(), LaunchConfig::new(16, 128))
    }
}

/// Result of a MapReduce run.
pub struct MapReduceOutput {
    /// `(key, accumulator)` pairs, sorted by key.
    pub pairs: Vec<(u64, u64)>,
    /// Timing/counters of the map phase.
    pub run: RunResult,
}

/// Run `job` over `streams` with the given engine; returns the reduced
/// pairs plus the map-phase run result.
pub fn run_mapreduce<J: MapJob>(
    machine: &mut Machine,
    job: &J,
    streams: &[StreamArray],
    expected_keys: u64,
    op: ReduceOp,
    engine: &Engine,
) -> MapReduceOutput {
    let emitter = Emitter::new(machine, expected_keys, op);
    let kernel = MapKernel { job, emitter };
    let run = match engine {
        Engine::CpuSerial => run_cpu_serial(machine, &kernel, streams),
        Engine::CpuMultithreaded => run_cpu_multithreaded(machine, &kernel, streams),
        Engine::GpuSingleBuffer(cfg, launch) => {
            run_gpu_single_buffer(machine, &kernel, streams, *launch, cfg)
        }
        Engine::GpuDoubleBuffer(cfg, launch) => {
            run_gpu_double_buffer(machine, &kernel, streams, *launch, cfg)
        }
        Engine::BigKernel(cfg, launch) => run_bigkernel(machine, &kernel, streams, *launch, cfg),
    };
    let pairs = emitter.drain(machine);
    MapReduceOutput { pairs, run }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bk_runtime::ctx::AddrGenCtx;
    use bk_runtime::{KernelCtx, StreamId, ValueExt};
    use std::collections::BTreeMap;
    use std::ops::Range;

    /// Records: [group: u32][amount: u32]; job sums amounts per group.
    struct GroupSumJob;

    const REC: u64 = 8;

    impl MapJob for GroupSumJob {
        fn name(&self) -> &'static str {
            "group-sum"
        }
        fn record_size(&self) -> Option<u64> {
            Some(REC)
        }
        fn addresses(&self, ctx: &mut AddrGenCtx<'_>, range: Range<u64>) {
            let mut off = range.start;
            while off < range.end {
                ctx.emit_read(StreamId(0), off, 4);
                ctx.emit_read(StreamId(0), off + 4, 4);
                off += REC;
            }
        }
        fn map(&self, ctx: &mut dyn KernelCtx, range: Range<u64>, out: &Emitter) {
            let mut off = range.start;
            while off < range.end {
                let group = ctx.stream_read_u32(StreamId(0), off);
                let amount = ctx.stream_read_u32(StreamId(0), off + 4);
                out.emit(ctx, group as u64 + 1, amount as u64);
                off += REC;
            }
        }
    }

    fn setup(n: u64, seed: u64) -> (Machine, Vec<StreamArray>, BTreeMap<u64, u64>) {
        let mut m = Machine::test_platform();
        let mut rng = bk_simcore::SplitMix64::new(seed);
        let region = m.hmem.alloc(n * REC);
        let mut expected = BTreeMap::new();
        for r in 0..n {
            let group = rng.next_below(37) as u32;
            let amount = rng.next_below(1000) as u32;
            m.hmem.write_u32(region, r * REC, group);
            m.hmem.write_u32(region, r * REC + 4, amount);
            *expected.entry(group as u64 + 1).or_insert(0u64) += amount as u64;
        }
        let stream = StreamArray::map(&m, StreamId(0), region);
        (m, vec![stream], expected)
    }

    fn engines() -> Vec<Engine> {
        let bl = BaselineConfig {
            window_bytes: 8 * 1024,
            ..BaselineConfig::default()
        };
        let bk = BigKernelConfig {
            chunk_input_bytes: 8 * 1024,
            ..BigKernelConfig::default()
        };
        let launch = LaunchConfig::new(2, 32);
        vec![
            Engine::CpuSerial,
            Engine::CpuMultithreaded,
            Engine::GpuSingleBuffer(bl.clone(), launch),
            Engine::GpuDoubleBuffer(bl, launch),
            Engine::BigKernel(bk, launch),
        ]
    }

    #[test]
    fn group_sum_agrees_across_all_engines() {
        for engine in engines() {
            let (mut m, streams, expected) = setup(5000, 42);
            let out = run_mapreduce(&mut m, &GroupSumJob, &streams, 64, ReduceOp::Sum, &engine);
            let got: BTreeMap<u64, u64> = out.pairs.into_iter().collect();
            assert_eq!(got, expected, "engine {engine:?}");
            assert!(out.run.total.secs() > 0.0);
        }
    }

    #[test]
    fn count_op_counts_records() {
        let (mut m, streams, expected) = setup(3000, 7);
        let out = run_mapreduce(
            &mut m,
            &GroupSumJob,
            &streams,
            64,
            ReduceOp::Count,
            &Engine::CpuSerial,
        );
        let total: u64 = out.pairs.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, 3000);
        assert_eq!(out.pairs.len(), expected.len());
    }

    #[test]
    fn max_op_finds_per_group_maximum() {
        let (mut m, streams, _) = setup(2000, 9);
        // Reference max per group, read from host memory directly.
        let mut expected = BTreeMap::new();
        {
            let region = streams[0].region;
            for r in 0..2000u64 {
                let g = m.hmem.read_u32(region, r * REC) as u64 + 1;
                let a = m.hmem.read_u32(region, r * REC + 4) as u64;
                let e = expected.entry(g).or_insert(0u64);
                *e = (*e).max(a);
            }
        }
        let out = run_mapreduce(
            &mut m,
            &GroupSumJob,
            &streams,
            64,
            ReduceOp::Max,
            &Engine::default(),
        );
        let got: BTreeMap<u64, u64> = out.pairs.into_iter().collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn bigkernel_engine_pattern_compresses_the_map_scan() {
        let (mut m, streams, _) = setup(20_000, 3);
        let bk = BigKernelConfig {
            chunk_input_bytes: 16 * 1024,
            ..BigKernelConfig::default()
        };
        let engine = Engine::BigKernel(bk, LaunchConfig::new(2, 32));
        let out = run_mapreduce(&mut m, &GroupSumJob, &streams, 64, ReduceOp::Sum, &engine);
        assert!(out.run.metrics.get("addr.patterns_found") > 0);
        assert_eq!(out.run.metrics.get("addr.patterns_missed"), 0);
    }
}

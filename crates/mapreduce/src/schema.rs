//! Schema-driven jobs: declare the record layout and which fields form the
//! key and value, and both halves of the kernel — the map body *and* its
//! address slice — are derived from the schema. This is the declarative
//! endpoint of the paper's compiler story: for flat record scans, no one
//! needs to write address-generation code at all.

use crate::emitter::Emitter;
use crate::job::MapJob;
use bk_runtime::ctx::AddrGenCtx;
use bk_runtime::{KernelCtx, StreamId};
use std::ops::Range;

/// A fixed-width field within a record.
#[derive(Clone, Copy, Debug)]
pub struct Field {
    /// Byte offset within the record.
    pub offset: u64,
    /// Width in bytes (1..=8); values are little-endian zero-extended.
    pub width: u32,
}

impl Field {
    pub fn new(offset: u64, width: u32) -> Self {
        assert!((1..=8).contains(&width), "field width must be 1..=8 bytes");
        Field { offset, width }
    }
}

/// How the emitted key/value is derived from the decoded fields.
type KeyValueFn = fn(key_raw: u64, value_raw: u64) -> (u64, u64);

/// A declarative group-by job over fixed-size records: for every record,
/// emit `(key_field, value_field)` (optionally remapped) into the combiner.
pub struct FieldJob {
    name: &'static str,
    record: u64,
    key: Field,
    value: Field,
    /// Post-decode remapping (e.g. bucketing, +1 to avoid the zero key).
    remap: KeyValueFn,
}

impl FieldJob {
    pub fn new(name: &'static str, record: u64, key: Field, value: Field) -> Self {
        assert!(record > 0, "empty record");
        assert!(
            key.offset + key.width as u64 <= record,
            "key field outside record"
        );
        assert!(
            value.offset + value.width as u64 <= record,
            "value field outside record"
        );
        // Keys must be non-zero for the combiner; default remap adds 1.
        FieldJob {
            name,
            record,
            key,
            value,
            remap: |k, v| (k + 1, v),
        }
    }

    /// Replace the key/value remapping (must yield non-zero keys).
    pub fn with_remap(mut self, remap: KeyValueFn) -> Self {
        self.remap = remap;
        self
    }
}

impl MapJob for FieldJob {
    fn name(&self) -> &'static str {
        self.name
    }

    fn record_size(&self) -> Option<u64> {
        Some(self.record)
    }

    /// Derived mechanically from the schema — the declarative analogue of
    /// the compiler's address slice.
    fn addresses(&self, ctx: &mut AddrGenCtx<'_>, range: Range<u64>) {
        let mut off = range.start;
        while off < range.end {
            ctx.emit_read(StreamId(0), off + self.key.offset, self.key.width);
            ctx.emit_read(StreamId(0), off + self.value.offset, self.value.width);
            off += self.record;
        }
    }

    fn map(&self, ctx: &mut dyn KernelCtx, range: Range<u64>, out: &Emitter) {
        let mut off = range.start;
        while off < range.end {
            let k = ctx.stream_read(StreamId(0), off + self.key.offset, self.key.width);
            let v = ctx.stream_read(StreamId(0), off + self.value.offset, self.value.width);
            ctx.alu(2);
            let (k, v) = (self.remap)(k, v);
            out.emit(ctx, k, v);
            off += self.record;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emitter::ReduceOp;
    use crate::runner::{run_mapreduce, Engine};
    use bk_runtime::{BigKernelConfig, LaunchConfig, Machine, StreamArray};
    use std::collections::BTreeMap;

    const REC: u64 = 12; // [group: u16][pad: u16][amount: u32][extra: u32]

    fn setup(n: u64, seed: u64) -> (Machine, Vec<StreamArray>, BTreeMap<u64, u64>) {
        let mut m = Machine::test_platform();
        let mut rng = bk_simcore::SplitMix64::new(seed);
        let region = m.hmem.alloc(n * REC);
        let mut expected = BTreeMap::new();
        for r in 0..n {
            let g = rng.next_below(23) as u16;
            let amount = rng.next_below(500) as u32;
            m.hmem.write(region, r * REC, &g.to_le_bytes());
            m.hmem.write_u32(region, r * REC + 4, amount);
            m.hmem
                .write_u32(region, r * REC + 8, rng.next_below(1 << 30) as u32);
            *expected.entry(g as u64 + 1).or_insert(0u64) += amount as u64;
        }
        let s = vec![StreamArray::map(&m, StreamId(0), region)];
        (m, s, expected)
    }

    fn job() -> FieldJob {
        FieldJob::new("schema-group-sum", REC, Field::new(0, 2), Field::new(4, 4))
    }

    #[test]
    fn schema_job_sums_per_group_under_bigkernel() {
        let (mut m, streams, expected) = setup(4000, 11);
        let engine = Engine::BigKernel(
            BigKernelConfig {
                chunk_input_bytes: 8 * 1024,
                ..BigKernelConfig::default()
            },
            LaunchConfig::new(2, 32),
        );
        let out = run_mapreduce(&mut m, &job(), &streams, 64, ReduceOp::Sum, &engine);
        let got: BTreeMap<u64, u64> = out.pairs.into_iter().collect();
        assert_eq!(got, expected);
        // The derived address slice is periodic — patterns must engage.
        assert!(out.run.metrics.get("addr.patterns_found") > 0);
    }

    #[test]
    fn schema_job_agrees_with_cpu() {
        let (mut m, streams, expected) = setup(2000, 5);
        let out = run_mapreduce(
            &mut m,
            &job(),
            &streams,
            64,
            ReduceOp::Sum,
            &Engine::CpuSerial,
        );
        let got: BTreeMap<u64, u64> = out.pairs.into_iter().collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn remap_buckets_keys() {
        let (mut m, streams, _) = setup(2000, 5);
        // Bucket amounts by hundreds instead of grouping by the key field.
        let j = FieldJob::new("bucketed", REC, Field::new(4, 4), Field::new(4, 4))
            .with_remap(|amount, _| (amount / 100 + 1, 1));
        let out = run_mapreduce(&mut m, &j, &streams, 16, ReduceOp::Sum, &Engine::CpuSerial);
        let total: u64 = out.pairs.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, 2000);
        assert!(out.pairs.len() <= 5); // amounts < 500 → buckets 1..=5
    }

    #[test]
    #[should_panic(expected = "outside record")]
    fn out_of_record_field_rejected() {
        let _ = FieldJob::new("bad", 8, Field::new(0, 4), Field::new(6, 4));
    }

    #[test]
    #[should_panic(expected = "width must be")]
    fn oversized_field_rejected() {
        let _ = Field::new(0, 9);
    }
}

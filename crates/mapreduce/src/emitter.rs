//! GPU-side combiner: an open-addressing device hash table that folds
//! emitted `(key, value)` pairs with an associative reduction operator.

use bk_runtime::{DevBufId, KernelCtx, Machine};

/// Bytes per table entry: `[tag: u64][accumulator: u64]`.
pub const ENTRY_BYTES: u64 = 16;

/// The associative combine operator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReduceOp {
    /// `acc += value`
    Sum,
    /// `acc += 1` (value ignored)
    Count,
    /// `acc = min(acc, value)`
    Min,
    /// `acc = max(acc, value)`
    Max,
}

impl ReduceOp {
    /// Identity element stored in a freshly-claimed slot.
    fn identity(self) -> u64 {
        match self {
            ReduceOp::Sum | ReduceOp::Count => 0,
            ReduceOp::Min => u64::MAX,
            ReduceOp::Max => 0,
        }
    }

    /// Host-side fold (verification/reduce phase).
    pub fn fold(self, acc: u64, value: u64) -> u64 {
        match self {
            ReduceOp::Sum => acc.wrapping_add(value),
            ReduceOp::Count => acc.wrapping_add(1),
            ReduceOp::Min => acc.min(value),
            ReduceOp::Max => acc.max(value),
        }
    }
}

/// The device-resident combiner table.
#[derive(Clone, Copy, Debug)]
pub struct Emitter {
    buf: DevBufId,
    slots: u64,
    op: ReduceOp,
}

impl Emitter {
    /// Allocate a combiner with capacity for roughly `expected_keys`
    /// distinct keys (4x slack, power-of-two slots).
    pub fn new(machine: &mut Machine, expected_keys: u64, op: ReduceOp) -> Self {
        let slots = (expected_keys.max(16) * 4).next_power_of_two();
        let buf = machine.gmem.alloc(slots * ENTRY_BYTES);
        Emitter { buf, slots, op }
    }

    pub fn op(&self) -> ReduceOp {
        self.op
    }

    /// Combine `(key, value)` into the table. `key` must be non-zero.
    /// All probing and atomics run through `ctx` so they are costed like any
    /// kernel work (this is Word Count's centralized-hash-table shape).
    pub fn emit(&self, ctx: &mut dyn KernelCtx, key: u64, value: u64) {
        debug_assert!(key != 0, "key 0 is reserved for empty slots");
        let mut i = key & (self.slots - 1);
        for _ in 0..self.slots {
            let off = i * ENTRY_BYTES;
            let seen = ctx.dev_atomic_cas_u64(self.buf, off, 0, key);
            if seen == 0 || seen == key {
                let acc_off = off + 8;
                if seen == 0 && self.op.identity() != 0 {
                    // Freshly claimed: install the identity before folding.
                    // (Sequential simulation makes this trivially safe; a
                    // real kernel packs identity install into the claim.)
                    ctx.dev_write(self.buf, acc_off, 8, self.op.identity());
                }
                match self.op {
                    ReduceOp::Sum => {
                        ctx.dev_atomic_add_u64(self.buf, acc_off, value);
                    }
                    ReduceOp::Count => {
                        ctx.dev_atomic_add_u64(self.buf, acc_off, 1);
                    }
                    ReduceOp::Min | ReduceOp::Max => {
                        // CAS loop (atomicMin/Max on u64 via CAS, the CUDA
                        // idiom for 64-bit min/max).
                        loop {
                            let cur = ctx.dev_read(self.buf, acc_off, 8);
                            let folded = self.op.fold(cur, value);
                            if folded == cur {
                                break;
                            }
                            let prev = ctx.dev_atomic_cas_u64(self.buf, acc_off, cur, folded);
                            if prev == cur {
                                break;
                            }
                            ctx.alu(1);
                        }
                    }
                }
                return;
            }
            ctx.alu(2);
            i = (i + 1) & (self.slots - 1);
        }
        panic!("combiner table full ({} slots)", self.slots);
    }

    /// Drain the table host-side: all `(key, accumulator)` pairs, sorted by
    /// key (the reduce/output phase; not part of the measured kernel).
    pub fn drain(&self, machine: &Machine) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        for i in 0..self.slots {
            let tag = machine.gmem.read_u64(self.buf, i * ENTRY_BYTES);
            if tag != 0 {
                out.push((tag, machine.gmem.read_u64(self.buf, i * ENTRY_BYTES + 8)));
            }
        }
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bk_baselines::CpuCtx;
    use bk_host::CacheSim;
    use bk_runtime::{StreamArray, StreamId};

    fn setup(op: ReduceOp) -> (Machine, Emitter) {
        let mut m = Machine::test_platform();
        let e = Emitter::new(&mut m, 64, op);
        (m, e)
    }

    fn emit_all(m: &mut Machine, e: Emitter, pairs: &[(u64, u64)]) {
        let r = m.hmem.alloc(64);
        let streams = vec![StreamArray::map(m, StreamId(0), r)];
        let mut cache = CacheSim::xeon_llc();
        let mut ctx = CpuCtx::new(&mut m.hmem, &mut m.gmem, &streams, &mut cache, 0, 1);
        for &(k, v) in pairs {
            e.emit(&mut ctx, k, v);
        }
    }

    #[test]
    fn sum_combines() {
        let (mut m, e) = setup(ReduceOp::Sum);
        emit_all(&mut m, e, &[(5, 10), (5, 32), (9, 1)]);
        assert_eq!(e.drain(&m), vec![(5, 42), (9, 1)]);
    }

    #[test]
    fn count_ignores_values() {
        let (mut m, e) = setup(ReduceOp::Count);
        emit_all(&mut m, e, &[(5, 999), (5, 1), (5, 7), (9, 0)]);
        assert_eq!(e.drain(&m), vec![(5, 3), (9, 1)]);
    }

    #[test]
    fn min_and_max() {
        let (mut m, e) = setup(ReduceOp::Min);
        emit_all(&mut m, e, &[(1, 30), (1, 10), (1, 20)]);
        assert_eq!(e.drain(&m), vec![(1, 10)]);

        let (mut m, e) = setup(ReduceOp::Max);
        emit_all(&mut m, e, &[(1, 30), (1, 10), (1, 20), (2, 0)]);
        assert_eq!(e.drain(&m), vec![(1, 30), (2, 0)]);
    }

    #[test]
    fn colliding_keys_probe_independently() {
        let (mut m, e) = setup(ReduceOp::Sum);
        // slots is a power of two >= 256; keys congruent mod slots collide.
        let s = 256u64;
        emit_all(&mut m, e, &[(s, 1), (2 * s, 2), (3 * s, 3)]);
        let got = e.drain(&m);
        assert_eq!(got.len(), 3);
        assert!(got.contains(&(s, 1)) && got.contains(&(2 * s, 2)) && got.contains(&(3 * s, 3)));
    }

    #[test]
    fn fold_host_side_matches() {
        assert_eq!(ReduceOp::Sum.fold(40, 2), 42);
        assert_eq!(ReduceOp::Count.fold(41, 999), 42);
        assert_eq!(ReduceOp::Min.fold(7, 42), 7);
        assert_eq!(ReduceOp::Max.fold(7, 42), 42);
    }

    #[test]
    fn empty_drain() {
        let (m, e) = setup(ReduceOp::Sum);
        assert!(e.drain(&m).is_empty());
    }
}

#[cfg(test)]
mod capacity_tests {
    use super::*;
    use bk_baselines::CpuCtx;
    use bk_host::CacheSim;
    use bk_runtime::{Machine, StreamArray, StreamId};

    #[test]
    #[should_panic(expected = "combiner table full")]
    fn overfull_combiner_panics_with_context() {
        let mut m = Machine::test_platform();
        // 16 expected keys → 64 slots; insert 65 distinct keys.
        let e = Emitter::new(&mut m, 16, ReduceOp::Sum);
        let r = m.hmem.alloc(64);
        let streams = vec![StreamArray::map(&m, StreamId(0), r)];
        let mut cache = CacheSim::xeon_llc();
        let mut ctx = CpuCtx::new(&mut m.hmem, &mut m.gmem, &streams, &mut cache, 0, 1);
        for k in 1..=65u64 {
            e.emit(&mut ctx, k, 1);
        }
    }

    #[test]
    fn capacity_headroom_is_4x() {
        let mut m = Machine::test_platform();
        let e = Emitter::new(&mut m, 100, ReduceOp::Sum);
        // 100 keys * 4 slack → next pow2 = 512 slots; the table must absorb
        // well beyond the expected key count without probing failure.
        let r = m.hmem.alloc(64);
        let streams = vec![StreamArray::map(&m, StreamId(0), r)];
        let mut cache = CacheSim::xeon_llc();
        let mut ctx = CpuCtx::new(&mut m.hmem, &mut m.gmem, &streams, &mut cache, 0, 1);
        for k in 1..=300u64 {
            e.emit(&mut ctx, k, k);
        }
        drop(ctx);
        assert_eq!(e.drain(&m).len(), 300);
    }
}

//! The MapReduce job trait and its adapter onto [`StreamKernel`].
//!
//! [`StreamKernel`]: bk_runtime::StreamKernel

use crate::emitter::Emitter;
use bk_gpu::occupancy::BlockResources;
use bk_runtime::ctx::AddrGenCtx;
use bk_runtime::{KernelCtx, StreamKernel};
use std::ops::Range;

/// A MapReduce job over a mapped stream.
///
/// `map` decodes the records starting in `range` (reading mapped data only
/// through `ctx`) and emits `(key, value)` pairs into `out`; `addresses` is
/// the compiler-slice analogue describing exactly the reads `map` performs
/// (verified at run time like any BigKernel kernel).
pub trait MapJob: Sync {
    fn name(&self) -> &'static str;

    /// Fixed record size, or `None` for variable-length records.
    fn record_size(&self) -> Option<u64>;

    /// Bytes past the range end a thread may touch (variable-length data).
    fn halo_bytes(&self) -> u64 {
        0
    }

    /// The address-generation half of `map`.
    fn addresses(&self, ctx: &mut AddrGenCtx<'_>, range: Range<u64>);

    /// Decode records starting in `range`, emitting pairs into `out`.
    fn map(&self, ctx: &mut dyn KernelCtx, range: Range<u64>, out: &Emitter);
}

/// Adapter: a [`MapJob`] plus its combiner run as an ordinary streaming
/// kernel under any implementation.
pub struct MapKernel<'a, J: MapJob> {
    pub job: &'a J,
    pub emitter: Emitter,
}

impl<J: MapJob> StreamKernel for MapKernel<'_, J> {
    fn name(&self) -> &'static str {
        self.job.name()
    }

    fn record_size(&self) -> Option<u64> {
        self.job.record_size()
    }

    fn halo_bytes(&self) -> u64 {
        self.job.halo_bytes()
    }

    fn addresses(&self, ctx: &mut AddrGenCtx<'_>, range: Range<u64>) {
        self.job.addresses(ctx, range);
    }

    fn process(&self, ctx: &mut dyn KernelCtx, range: Range<u64>) {
        self.job.map(ctx, range, &self.emitter);
    }

    fn resources(&self) -> BlockResources {
        BlockResources::streaming_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emitter::ReduceOp;
    use bk_runtime::{Machine, StreamId, ValueExt};

    /// Counts records by their first byte.
    struct ByteClassJob;

    impl MapJob for ByteClassJob {
        fn name(&self) -> &'static str {
            "byte-class"
        }
        fn record_size(&self) -> Option<u64> {
            Some(4)
        }
        fn addresses(&self, ctx: &mut AddrGenCtx<'_>, range: Range<u64>) {
            let mut off = range.start;
            while off < range.end {
                ctx.emit_read(StreamId(0), off, 1);
                off += 4;
            }
        }
        fn map(&self, ctx: &mut dyn KernelCtx, range: Range<u64>, out: &Emitter) {
            let mut off = range.start;
            while off < range.end {
                let b = ctx.stream_read_u8(StreamId(0), off);
                out.emit(ctx, b as u64 + 1, 1);
                off += 4;
            }
        }
    }

    #[test]
    fn adapter_exposes_job_metadata() {
        let mut m = Machine::test_platform();
        let emitter = Emitter::new(&mut m, 16, ReduceOp::Sum);
        let k = MapKernel {
            job: &ByteClassJob,
            emitter,
        };
        assert_eq!(StreamKernel::name(&k), "byte-class");
        assert_eq!(k.record_size(), Some(4));
        assert_eq!(k.halo_bytes(), 0);
    }
}

//! Critical-path reconstruction over recorded schedules.
//!
//! Stall attribution ([`crate::stall`]) answers *where time waits*; this
//! module answers the sharper question — *which waits actually bound the
//! makespan*. The forward list scheduler records, for every slot, the
//! constraint that set its start time ([`bk_simcore::SlotMeta`]): a
//! dataflow dependency, in-order contention on the slot's resource, or a
//! buffer-reuse edge (§IV.C back-pressure). Because each start is computed
//! as an exact f64 `max` over candidate ready times, every slot's start
//! *equals* the finish of exactly the predecessor that bound it. Walking
//! backwards from the slot that finishes at the makespan therefore yields a
//! chain of abutting segments that tiles `[0, makespan]` with **no gaps**:
//! the critical path.
//!
//! Blame — the share of the critical path a stage / resource / device
//! occupies — is accounted in integer nanoseconds derived by rounding the
//! segment *boundaries* (not the durations). Consecutive segments share the
//! exact same boundary value, so the per-segment nanosecond durations
//! telescope and their sum equals the rounded makespan **exactly**; the
//! `bottleneck` bench binary and CI gate on that identity.
//!
//! Capture follows the [`crate::trace`] pattern: the runtime snapshots every
//! scheduled wave (per-device shards, including dependency edges, reuse
//! edges and capacities, so the schedule is self-describing) into a
//! thread-local sink, but only while a [`capture`] guard is live — an
//! unobserved run allocates nothing and does no work beyond one
//! thread-local check per wave.

use crate::trace::SpanRecord;
use bk_simcore::pipeline::Slot;
use bk_simcore::{ReuseEdge, ScheduleView, SimTime, SlotMeta, StallKind};
use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};

/// Track name the exporter uses for critical-path marker spans (one
/// Perfetto lane showing the bottleneck chain; see [`marker_spans`]).
pub const CRITPATH_TRACK: &str = "critpath";

/// A schedule that also describes the graph it was scheduled under —
/// everything [`critical_path`] needs to re-derive each slot's binding
/// predecessor. Implemented by the runtime's `GraphSchedule` and by the
/// captured [`ShardDag`] snapshots.
pub trait ScheduleDag: ScheduleView {
    /// Same-chunk stage indices `stage` depends on (all smaller — stages
    /// are listed in topological order).
    fn stage_deps(&self, stage: usize) -> &[usize];
    /// The spec's cross-chunk buffer-reuse edges.
    fn reuse_edges(&self) -> &[ReuseEdge];
    /// Number of identical units of `resource` (default 1, the production
    /// configuration).
    fn resource_capacity(&self, resource: &str) -> usize {
        let _ = resource;
        1
    }
}

/// The constraint through which the critical path *entered* a slot — i.e.
/// what the slot was waiting for when it started.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EdgeKind {
    /// The slot started at t = 0 unconstrained (the path's origin).
    Start,
    /// A same-chunk dataflow dependency finished exactly at the start.
    Dataflow,
    /// The slot waited for its resource's in-order queue to drain.
    Resource,
    /// The slot waited on a buffer-reuse edge: `consumer` of chunk
    /// `n − depth` had to release the buffer set first.
    Reuse {
        /// Consumer stage index of the binding reuse edge.
        consumer: usize,
    },
}

impl EdgeKind {
    /// Stable label for reports and trace span annotations.
    pub fn label(self) -> &'static str {
        match self {
            EdgeKind::Start => "start",
            EdgeKind::Dataflow => "dataflow",
            EdgeKind::Resource => "resource",
            EdgeKind::Reuse { .. } => "reuse",
        }
    }
}

/// One slot on the critical path of a single schedule. Segments abut
/// exactly: each segment's `start` equals the previous segment's `finish`.
#[derive(Clone, Copy, Debug)]
pub struct CritSegment {
    /// Schedule-local chunk row of the slot.
    pub chunk: usize,
    /// Stage index of the slot.
    pub stage: usize,
    /// Slot start (schedule-local time).
    pub start: SimTime,
    /// Slot finish (schedule-local time).
    pub finish: SimTime,
    /// Constraint that set the slot's start.
    pub entered: EdgeKind,
    /// The slot's recorded stall (start − dataflow-ready).
    pub wait: SimTime,
}

/// Round a simulated time to integer nanoseconds. All blame accounting
/// rounds *boundaries* with this one function so that equal `f64` times map
/// to equal integers and segment sums telescope exactly.
pub fn boundary_ns(t: SimTime) -> u64 {
    t.nanos().round() as u64
}

fn segment_ns(start: SimTime, finish: SimTime) -> u64 {
    boundary_ns(finish).saturating_sub(boundary_ns(start))
}

/// Reconstruct the critical path of one schedule: the chain of slots, in
/// time order, whose segments tile `[0, makespan]` exactly.
///
/// Walks backwards from the first slot that finishes at the makespan,
/// choosing each slot's binding predecessor from its recorded
/// [`StallKind`]:
///
/// * `None` — the slot started the moment its dataflow input was ready; the
///   predecessor is the dependency whose finish equals the start (or the
///   path origin when the start is 0).
/// * `Resource` — the predecessor is the previous occupant of the unit the
///   slot ran on, re-derived by replaying the scheduler's earliest-free
///   unit selection over the recorded finish times (exact, because unit
///   choice is a pure function of those times).
/// * `Reuse { consumer }` — the predecessor is `consumer` of chunk
///   `n − depth` for the binding reuse edge.
///
/// Every predecessor's finish equals the slot's start *bit-exactly* (each
/// start is a `max` over exactly those finishes), so the returned segments
/// abut with no gaps. Zero-duration slots can appear on the path; they
/// contribute zero-length segments and no blame.
pub fn critical_path<S: ScheduleDag + ?Sized>(sched: &S) -> Vec<CritSegment> {
    let nc = sched.num_chunks();
    let ns = sched.num_stages();
    if nc == 0 || ns == 0 {
        return Vec::new();
    }

    // Forward replay of the scheduler's unit selection: which slot last
    // occupied the unit each slot ran on. `free` mirrors the scheduler's
    // per-resource free times; occupants ride along.
    type Occupant = Option<(usize, usize)>;
    let mut free: HashMap<&'static str, (Vec<SimTime>, Vec<Occupant>)> = HashMap::new();
    let mut res_pred: Vec<Vec<Occupant>> = vec![vec![None; ns]; nc];
    for (chunk, preds) in res_pred.iter_mut().enumerate() {
        for (stage, pred) in preds.iter_mut().enumerate() {
            let slot = sched.slot(chunk, stage);
            if slot.duration().is_zero() {
                continue; // zero-duration stages never occupy their resource
            }
            let res = sched.stage_resource(stage);
            let cap = sched.resource_capacity(res).max(1);
            let (times, occupants) = free
                .entry(res)
                .or_insert_with(|| (vec![SimTime::ZERO; cap], vec![None; cap]));
            let mut unit = 0usize;
            for (i, &t) in times.iter().enumerate() {
                if t < times[unit] {
                    unit = i;
                }
            }
            *pred = occupants[unit];
            times[unit] = slot.finish;
            occupants[unit] = Some((chunk, stage));
        }
    }

    // The terminal slot: first (chunk, stage) whose finish is the makespan.
    let makespan = sched.makespan();
    let mut cur = (0usize, 0usize);
    'find: for chunk in 0..nc {
        for stage in 0..ns {
            if sched.slot(chunk, stage).finish == makespan {
                cur = (chunk, stage);
                break 'find;
            }
        }
    }

    let mut segs: Vec<CritSegment> = Vec::new();
    loop {
        let (chunk, stage) = cur;
        let slot = sched.slot(chunk, stage);
        let meta: SlotMeta = sched.slot_meta(chunk, stage);
        let (entered, pred) = match meta.kind {
            Some(StallKind::Reuse { consumer }) => {
                // Later edges win scheduler ties, so scan in reverse.
                let p = sched.reuse_edges().iter().rev().find_map(|e| {
                    (e.producer == stage
                        && e.consumer == consumer
                        && chunk >= e.depth
                        && sched.slot(chunk - e.depth, e.consumer).finish == slot.start)
                        .then(|| (chunk - e.depth, e.consumer))
                });
                debug_assert!(p.is_some(), "reuse stall without a matching edge");
                (EdgeKind::Reuse { consumer }, p)
            }
            Some(StallKind::Resource(_)) => {
                let p = res_pred[chunk][stage];
                debug_assert!(p.is_some(), "resource stall without a prior occupant");
                (EdgeKind::Resource, p)
            }
            None if slot.start.is_zero() => (EdgeKind::Start, None),
            None => {
                let p = sched
                    .stage_deps(stage)
                    .iter()
                    .find(|&&d| sched.slot(chunk, d).finish == slot.start)
                    .map(|&d| (chunk, d));
                debug_assert!(p.is_some(), "seamless handover without a matching dep");
                (EdgeKind::Dataflow, p)
            }
        };
        segs.push(CritSegment {
            chunk,
            stage,
            start: slot.start,
            finish: slot.finish,
            entered,
            wait: meta.stall,
        });
        match pred {
            Some(p) => cur = p,
            None => break,
        }
    }
    segs.reverse();
    segs
}

/// Sum of a path's segment durations in integer nanoseconds. Equals
/// `boundary_ns(makespan)` exactly for any path produced by
/// [`critical_path`] (the boundaries telescope).
pub fn path_sum_ns(segs: &[CritSegment]) -> u64 {
    segs.iter().map(|s| segment_ns(s.start, s.finish)).sum()
}

// ---------------------------------------------------------------------------
// Captured snapshots: self-describing per-shard schedules.
// ---------------------------------------------------------------------------

/// An owned snapshot of one device's scheduled shard, including the graph
/// shape (deps, reuse edges, capacities) so it satisfies [`ScheduleDag`]
/// without a reference back into the runtime.
#[derive(Clone, Debug)]
pub struct ShardDag {
    /// The device that ran the shard.
    pub device: usize,
    /// Run-global chunk id of each local chunk row.
    pub chunk_ids: Vec<usize>,
    stage_names: Vec<&'static str>,
    resources: Vec<&'static str>,
    deps: Vec<Vec<usize>>,
    reuse: Vec<ReuseEdge>,
    capacities: Vec<(&'static str, usize)>,
    slots: Vec<Vec<Slot>>,
    meta: Vec<Vec<SlotMeta>>,
    makespan: SimTime,
}

impl ShardDag {
    /// Snapshot a scheduled shard. `chunk_ids[local]` is the run-global id
    /// of local chunk row `local` (sharding deals non-contiguous chunk
    /// subsequences to each device).
    pub fn from_dag<S: ScheduleDag>(sched: &S, device: usize, chunk_ids: Vec<usize>) -> ShardDag {
        let nc = sched.num_chunks();
        let ns = sched.num_stages();
        assert_eq!(chunk_ids.len(), nc, "one global id per chunk row");
        let resources: Vec<&'static str> = (0..ns).map(|s| sched.stage_resource(s)).collect();
        let mut capacities: Vec<(&'static str, usize)> = Vec::new();
        for &r in &resources {
            if !capacities.iter().any(|&(seen, _)| seen == r) {
                capacities.push((r, sched.resource_capacity(r)));
            }
        }
        ShardDag {
            device,
            chunk_ids,
            stage_names: (0..ns).map(|s| sched.stage_name(s)).collect(),
            resources,
            deps: (0..ns).map(|s| sched.stage_deps(s).to_vec()).collect(),
            reuse: sched.reuse_edges().to_vec(),
            capacities,
            slots: (0..nc)
                .map(|c| (0..ns).map(|s| sched.slot(c, s)).collect())
                .collect(),
            meta: (0..nc)
                .map(|c| (0..ns).map(|s| sched.slot_meta(c, s)).collect())
                .collect(),
            makespan: sched.makespan(),
        }
    }

    /// The distinct resources the shard's stages run on, with their unit
    /// counts (the what-if replayer rebuilds a spec from these).
    pub fn capacities(&self) -> &[(&'static str, usize)] {
        &self.capacities
    }
}

impl ScheduleView for ShardDag {
    fn num_chunks(&self) -> usize {
        self.slots.len()
    }
    fn num_stages(&self) -> usize {
        self.stage_names.len()
    }
    fn slot(&self, chunk: usize, stage: usize) -> Slot {
        self.slots[chunk][stage]
    }
    fn stage_name(&self, stage: usize) -> &'static str {
        self.stage_names[stage]
    }
    fn stage_resource(&self, stage: usize) -> &'static str {
        self.resources[stage]
    }
    fn slot_meta(&self, chunk: usize, stage: usize) -> SlotMeta {
        self.meta[chunk][stage]
    }
    fn makespan(&self) -> SimTime {
        self.makespan
    }
}

impl ScheduleDag for ShardDag {
    fn stage_deps(&self, stage: usize) -> &[usize] {
        &self.deps[stage]
    }
    fn reuse_edges(&self) -> &[ReuseEdge] {
        &self.reuse
    }
    fn resource_capacity(&self, resource: &str) -> usize {
        self.capacities
            .iter()
            .find(|&&(r, _)| r == resource)
            .map_or(1, |&(_, n)| n)
    }
}

/// One scheduled wave: every device's shard plus the absolute simulated
/// time the wave started (waves run back to back, so `time_base` of wave
/// `w + 1` equals `time_base + max shard makespan` of wave `w`).
#[derive(Clone, Debug)]
pub struct WaveDag {
    /// Explicit pass index of the pipeline invocation that scheduled this
    /// wave. Multi-pass apps run one pipeline per kernel pass with its own
    /// clock; the recording side stamps the current [`set_pass`] value so
    /// [`analyze`] stacks passes on explicit boundaries instead of
    /// guessing them from clock restarts.
    pub pass: usize,
    /// Absolute simulated start time of the wave (relative to its pass's
    /// pipeline invocation).
    pub time_base: SimTime,
    /// Per-device shard snapshots.
    pub shards: Vec<ShardDag>,
}

// ---------------------------------------------------------------------------
// Capture guard (mirrors `trace`, but runtime-gated only: snapshots are
// built per wave, never per span, so there is no hot-path cost to gate at
// compile time).
// ---------------------------------------------------------------------------

thread_local! {
    static CAPTURE: RefCell<Option<Vec<WaveDag>>> = const { RefCell::new(None) };
    static PASS: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

/// Set the pass index stamped into subsequently recorded waves. Multi-pass
/// harnesses call this before each pipeline invocation so the capture
/// carries explicit pass boundaries; [`capture`] resets it to 0.
pub fn set_pass(pass: usize) {
    PASS.with(|p| p.set(pass));
}

/// The pass index the next recorded wave will carry (see [`set_pass`]).
pub fn current_pass() -> usize {
    PASS.with(|p| p.get())
}

/// RAII guard for schedule capture on the current thread. Obtain with
/// [`capture`], harvest with [`CaptureGuard::finish`]; dropping it without
/// finishing discards the buffer. Guards do not nest: a second [`capture`]
/// on the same thread resets the buffer.
#[must_use = "dropping the guard discards captured waves"]
pub struct CaptureGuard {
    _priv: (),
}

/// Begin capturing scheduled waves on this thread. Resets the current
/// pass index (see [`set_pass`]) to 0.
pub fn capture() -> CaptureGuard {
    CAPTURE.with(|c| *c.borrow_mut() = Some(Vec::new()));
    set_pass(0);
    CaptureGuard { _priv: () }
}

impl CaptureGuard {
    /// Stop capturing and return the waves recorded since [`capture`].
    pub fn finish(self) -> Vec<WaveDag> {
        std::mem::forget(self);
        CAPTURE.with(|c| c.borrow_mut().take()).unwrap_or_default()
    }
}

impl Drop for CaptureGuard {
    fn drop(&mut self) {
        CAPTURE.with(|c| drop(c.borrow_mut().take()));
    }
}

/// Is schedule capture active on this thread? The runtime checks this
/// before building any [`WaveDag`] snapshot, so an unobserved run performs
/// no allocation.
#[inline]
pub fn capture_enabled() -> bool {
    CAPTURE.with(|c| c.borrow().is_some())
}

/// Record one wave snapshot if capture is active on this thread.
pub fn record_wave(wave: WaveDag) {
    CAPTURE.with(|c| {
        if let Some(v) = c.borrow_mut().as_mut() {
            v.push(wave);
        }
    });
}

// ---------------------------------------------------------------------------
// Run-level analysis.
// ---------------------------------------------------------------------------

/// One slot on the whole-run critical path, in absolute simulated time and
/// run-global chunk ids.
#[derive(Clone, Copy, Debug)]
pub struct RunSegment {
    /// Device the slot ran on.
    pub device: usize,
    /// Run-global chunk id.
    pub chunk: usize,
    /// Stage name.
    pub stage: &'static str,
    /// Full resource string (possibly `dev<i>.`-qualified).
    pub resource: &'static str,
    /// Absolute start time.
    pub start: SimTime,
    /// Absolute finish time.
    pub finish: SimTime,
    /// Constraint that set the slot's start.
    pub entered: EdgeKind,
    /// The slot's recorded stall (start − dataflow-ready).
    pub wait: SimTime,
}

/// Critical path of a whole run plus blame aggregations. Produced by
/// [`analyze`]; rendered by the `bottleneck` binary and `perf_snapshot`.
#[derive(Clone, Debug, Default)]
pub struct CritReport {
    /// End of the run: sum over waves of the bottleneck shard's makespan —
    /// the same f64 additions the pipeline performs for its total, so this
    /// equals the reported simulated time bit-exactly.
    pub makespan: SimTime,
    /// `makespan` rounded with [`boundary_ns`]; the blame tables sum to
    /// this exactly.
    pub makespan_ns: u64,
    /// The path segments in time order, tiling `[0, makespan]`.
    pub segments: Vec<RunSegment>,
    /// Critical-path nanoseconds per stage name, descending.
    pub stage_blame: Vec<(&'static str, u64)>,
    /// Critical-path nanoseconds per base resource (device prefix
    /// stripped), descending.
    pub resource_blame: Vec<(&'static str, u64)>,
    /// Critical-path nanoseconds per device, descending.
    pub device_blame: Vec<(usize, u64)>,
    /// Time the path spent waiting on each reuse edge, keyed by the edge's
    /// consumer stage index, descending. This is the autotuner's
    /// blame-ranked feedback signal — distinct from (and usually much
    /// smaller than) the raw reuse-stall totals, because only waits that
    /// bound the makespan count.
    pub reuse_blame: Vec<(usize, u64)>,
    /// Number of waves analyzed.
    pub waves: usize,
}

impl CritReport {
    /// Total blamed nanoseconds (sum over path segments).
    pub fn blame_sum_ns(&self) -> u64 {
        self.segments
            .iter()
            .map(|s| segment_ns(s.start, s.finish))
            .sum()
    }

    /// Do the path segments sum to the makespan exactly? True by
    /// construction; the `bottleneck` binary and CI gate on it anyway.
    pub fn tiles_exactly(&self) -> bool {
        self.blame_sum_ns() == self.makespan_ns
    }

    /// A blame entry's share of the makespan in `[0, 1]`.
    pub fn share(&self, ns: u64) -> f64 {
        if self.makespan_ns == 0 {
            0.0
        } else {
            ns as f64 / self.makespan_ns as f64
        }
    }
}

/// Split a resource/track string into `(device, base name)`:
/// `"dev3.gpu-comp"` → `(3, "gpu-comp")`, `"dma"` → `(0, "dma")`.
pub fn split_device(resource: &'static str) -> (usize, &'static str) {
    if let Some(rest) = resource.strip_prefix("dev") {
        if let Some((d, tail)) = rest.split_once('.') {
            if let Ok(n) = d.parse::<usize>() {
                return (n, tail);
            }
        }
    }
    (0, resource)
}

/// Compute the whole-run critical path and blame tables from captured
/// waves. Per wave, the path runs through the *bottleneck shard* (the
/// device whose schedule finishes last — ties go to the lowest device);
/// the other devices finish earlier and are not on the run's critical
/// chain. Segments are offset into absolute time by each wave's
/// `time_base`, so the whole-run path tiles `[0, makespan]` across wave
/// boundaries exactly.
///
/// A capture may span *several* pipeline invocations — multi-pass apps
/// (e.g. MasterCard Affinity) launch one pipeline per kernel pass, and
/// each pass restarts its clock at zero. Each wave carries its explicit
/// pass index (stamped from [`set_pass`] at record time); a pass change
/// stacks the new pass directly after the previous pass's end, mirroring
/// how the harness sums pass totals, so `makespan` still equals the
/// reported simulated total bit-exactly. The old clock-restart inference
/// (`time_base` running backwards) survives only as a debug assertion: a
/// restart without a pass boundary means a recorder forgot [`set_pass`].
pub fn analyze(waves: &[WaveDag]) -> CritReport {
    let mut segments: Vec<RunSegment> = Vec::new();
    let mut end = SimTime::ZERO;
    // Absolute start of the current pipeline invocation, and the relative
    // time_base the next wave of that invocation would carry. Boundaries
    // are always computed as `offset + rel` with `rel` formed first, so
    // abutting segments share bit-identical f64 boundaries and the
    // integer-ns blame telescopes to `makespan_ns` exactly.
    let mut offset = SimTime::ZERO;
    let mut expected = SimTime::ZERO;
    let mut prev_pass: Option<usize> = None;
    for wave in waves {
        let Some(shard) = wave
            .shards
            .iter()
            .fold(None::<&ShardDag>, |best, s| match best {
                Some(b) if b.makespan() >= s.makespan() => Some(b),
                _ => Some(s),
            })
        else {
            continue;
        };
        match prev_pass {
            Some(p) if p != wave.pass => offset = end,
            Some(_) => debug_assert!(
                wave.time_base >= expected,
                "wave clock restarted ({:?} < {:?}) without an explicit pass \
                 boundary — the recorder must call critpath::set_pass per pass",
                wave.time_base,
                expected,
            ),
            None => {}
        }
        prev_pass = Some(wave.pass);
        for seg in critical_path(shard) {
            segments.push(RunSegment {
                device: shard.device,
                chunk: shard.chunk_ids[seg.chunk],
                stage: shard.stage_name(seg.stage),
                resource: shard.stage_resource(seg.stage),
                start: offset + (wave.time_base + seg.start),
                finish: offset + (wave.time_base + seg.finish),
                entered: seg.entered,
                wait: seg.wait,
            });
        }
        expected = wave.time_base + shard.makespan();
        end = offset + expected;
    }

    let mut by_stage: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut by_resource: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut by_device: BTreeMap<usize, u64> = BTreeMap::new();
    let mut by_edge: BTreeMap<usize, u64> = BTreeMap::new();
    for seg in &segments {
        let ns = segment_ns(seg.start, seg.finish);
        *by_stage.entry(seg.stage).or_default() += ns;
        let (dev, base) = split_device(seg.resource);
        *by_resource.entry(base).or_default() += ns;
        *by_device.entry(dev).or_default() += ns;
        if let EdgeKind::Reuse { consumer } = seg.entered {
            *by_edge.entry(consumer).or_default() += boundary_ns(seg.wait);
        }
    }
    fn sorted<K: Copy + Ord>(m: BTreeMap<K, u64>) -> Vec<(K, u64)> {
        let mut v: Vec<(K, u64)> = m.into_iter().collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }
    CritReport {
        makespan: end,
        makespan_ns: boundary_ns(end),
        segments,
        stage_blame: sorted(by_stage),
        resource_blame: sorted(by_resource),
        device_blame: sorted(by_device),
        reuse_blame: sorted(by_edge),
        waves: waves.len(),
    }
}

/// Render a report's path as marker spans on the [`CRITPATH_TRACK`] lane,
/// so the bottleneck chain is visible alongside the per-resource tracks in
/// the Perfetto UI. Zero-length segments are skipped; segments that
/// entered through a wait carry it as the span's stall annotation.
pub fn marker_spans(report: &CritReport) -> Vec<SpanRecord> {
    report
        .segments
        .iter()
        .filter(|s| !s.finish.saturating_sub(s.start).is_zero())
        .map(|s| SpanRecord {
            track: CRITPATH_TRACK,
            stage: s.stage,
            chunk: s.chunk,
            start: s.start,
            dur: s.finish.saturating_sub(s.start),
            stall: match s.entered {
                EdgeKind::Reuse { .. } | EdgeKind::Resource if !s.wait.is_zero() => {
                    Some((s.entered.label(), s.wait))
                }
                _ => None,
            },
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: f64) -> SimTime {
        SimTime::from_micros(us)
    }

    /// Hand-built DAG schedule for tests: a 2-stage chain on one shared
    /// resource with a reuse edge, scheduled by the same rules as the
    /// production scheduler (computed by hand).
    struct TestDag {
        slots: Vec<Vec<Slot>>,
        meta: Vec<Vec<SlotMeta>>,
        deps: Vec<Vec<usize>>,
        reuse: Vec<ReuseEdge>,
        names: Vec<&'static str>,
        resources: Vec<&'static str>,
        makespan: SimTime,
    }

    impl ScheduleView for TestDag {
        fn num_chunks(&self) -> usize {
            self.slots.len()
        }
        fn num_stages(&self) -> usize {
            self.names.len()
        }
        fn slot(&self, chunk: usize, stage: usize) -> Slot {
            self.slots[chunk][stage]
        }
        fn stage_name(&self, stage: usize) -> &'static str {
            self.names[stage]
        }
        fn stage_resource(&self, stage: usize) -> &'static str {
            self.resources[stage]
        }
        fn slot_meta(&self, chunk: usize, stage: usize) -> SlotMeta {
            self.meta[chunk][stage]
        }
        fn makespan(&self) -> SimTime {
            self.makespan
        }
    }

    impl ScheduleDag for TestDag {
        fn stage_deps(&self, stage: usize) -> &[usize] {
            &self.deps[stage]
        }
        fn reuse_edges(&self) -> &[ReuseEdge] {
            &self.reuse
        }
    }

    /// One chunk, two chained stages of 1 µs and 3 µs on distinct
    /// resources: the path is both slots back to back.
    fn single_chunk_chain() -> TestDag {
        TestDag {
            slots: vec![vec![
                Slot {
                    start: t(0.0),
                    finish: t(1.0),
                },
                Slot {
                    start: t(1.0),
                    finish: t(4.0),
                },
            ]],
            meta: vec![vec![SlotMeta::default(), SlotMeta::default()]],
            deps: vec![vec![], vec![0]],
            reuse: vec![],
            names: vec!["transfer", "compute"],
            resources: vec!["dma", "gpu-comp"],
            makespan: t(4.0),
        }
    }

    #[test]
    fn chain_path_visits_every_stage_and_sums_to_makespan() {
        let d = single_chunk_chain();
        let path = critical_path(&d);
        assert_eq!(path.len(), 2);
        assert_eq!(path[0].entered, EdgeKind::Start);
        assert_eq!(path[1].entered, EdgeKind::Dataflow);
        assert_eq!((path[0].stage, path[1].stage), (0, 1));
        assert_eq!(path_sum_ns(&path), boundary_ns(d.makespan));
    }

    #[test]
    fn resource_contention_walks_through_the_prior_occupant() {
        // Two chunks on one serial resource: chunk 1 waits for chunk 0.
        let d = TestDag {
            slots: vec![
                vec![Slot {
                    start: t(0.0),
                    finish: t(2.0),
                }],
                vec![Slot {
                    start: t(2.0),
                    finish: t(4.0),
                }],
            ],
            meta: vec![
                vec![SlotMeta::default()],
                vec![SlotMeta {
                    kind: Some(StallKind::Resource("serial")),
                    stall: t(2.0),
                }],
            ],
            deps: vec![vec![]],
            reuse: vec![],
            names: vec!["compute"],
            resources: vec!["serial"],
            makespan: t(4.0),
        };
        let path = critical_path(&d);
        assert_eq!(path.len(), 2);
        assert_eq!(path[0].chunk, 0);
        assert_eq!(path[1].chunk, 1);
        assert_eq!(path[1].entered, EdgeKind::Resource);
        assert_eq!(path_sum_ns(&path), boundary_ns(d.makespan));
    }

    #[test]
    fn reuse_stall_walks_across_chunks_via_the_edge() {
        // Stage 0 of chunk 1 waits on stage 1 of chunk 0 (depth 1).
        let d = TestDag {
            slots: vec![
                vec![
                    Slot {
                        start: t(0.0),
                        finish: t(1.0),
                    },
                    Slot {
                        start: t(1.0),
                        finish: t(5.0),
                    },
                ],
                vec![
                    Slot {
                        start: t(5.0),
                        finish: t(6.0),
                    },
                    Slot {
                        start: t(6.0),
                        finish: t(10.0),
                    },
                ],
            ],
            meta: vec![
                vec![SlotMeta::default(), SlotMeta::default()],
                vec![
                    SlotMeta {
                        kind: Some(StallKind::Reuse { consumer: 1 }),
                        stall: t(4.0),
                    },
                    SlotMeta::default(),
                ],
            ],
            deps: vec![vec![], vec![0]],
            reuse: vec![ReuseEdge {
                producer: 0,
                consumer: 1,
                depth: 1,
            }],
            names: vec!["transfer", "compute"],
            // Distinct resources so only the reuse edge can couple chunks.
            resources: vec!["dma", "gpu-comp"],
            makespan: t(10.0),
        };
        let path = critical_path(&d);
        assert_eq!(path.len(), 4);
        assert_eq!(path[2].entered, EdgeKind::Reuse { consumer: 1 });
        assert_eq!((path[2].chunk, path[2].stage), (1, 0));
        assert_eq!((path[1].chunk, path[1].stage), (0, 1));
        assert_eq!(path_sum_ns(&path), boundary_ns(d.makespan));
    }

    #[test]
    fn capture_guard_gates_recording() {
        assert!(!capture_enabled());
        record_wave(WaveDag {
            pass: 0,
            time_base: SimTime::ZERO,
            shards: vec![],
        });
        let g = capture();
        assert!(capture_enabled());
        record_wave(WaveDag {
            pass: 0,
            time_base: SimTime::ZERO,
            shards: vec![ShardDag::from_dag(&single_chunk_chain(), 0, vec![7])],
        });
        let waves = g.finish();
        assert!(!capture_enabled());
        assert_eq!(waves.len(), 1);
        assert_eq!(waves[0].shards[0].chunk_ids, vec![7]);
    }

    #[test]
    fn dropping_the_guard_discards_waves() {
        let g = capture();
        record_wave(WaveDag {
            pass: 0,
            time_base: SimTime::ZERO,
            shards: vec![],
        });
        drop(g);
        assert!(!capture_enabled());
        assert!(capture().finish().is_empty());
    }

    #[test]
    fn analyze_offsets_waves_and_blames_exactly() {
        let shard = ShardDag::from_dag(&single_chunk_chain(), 0, vec![0]);
        let mut shard2 = shard.clone();
        shard2.chunk_ids = vec![1];
        let waves = vec![
            WaveDag {
                pass: 0,
                time_base: SimTime::ZERO,
                shards: vec![shard.clone()],
            },
            WaveDag {
                pass: 0,
                time_base: shard.makespan(),
                shards: vec![shard2],
            },
        ];
        let report = analyze(&waves);
        assert_eq!(report.waves, 2);
        assert_eq!(report.segments.len(), 4);
        assert_eq!(report.segments[2].chunk, 1);
        assert!(report.tiles_exactly());
        assert_eq!(report.makespan_ns, boundary_ns(t(8.0)));
        // 1 µs transfer + 3 µs compute per wave.
        assert_eq!(report.stage_blame[0], ("compute", 6_000));
        assert_eq!(report.stage_blame[1], ("transfer", 2_000));
        assert_eq!(report.resource_blame[0], ("gpu-comp", 6_000));
        assert_eq!(report.device_blame, vec![(0, 8_000)]);
    }

    #[test]
    fn explicit_pass_boundaries_stack_passes() {
        // Two pipeline invocations, each restarting its clock at zero. The
        // explicit pass indices stack pass 1 after pass 0's end.
        let shard = ShardDag::from_dag(&single_chunk_chain(), 0, vec![0]);
        let mut shard2 = shard.clone();
        shard2.chunk_ids = vec![1];
        let waves = vec![
            WaveDag {
                pass: 0,
                time_base: SimTime::ZERO,
                shards: vec![shard.clone()],
            },
            WaveDag {
                pass: 1,
                time_base: SimTime::ZERO,
                shards: vec![shard2],
            },
        ];
        let report = analyze(&waves);
        assert_eq!(report.waves, 2);
        assert!(report.tiles_exactly());
        // 4 µs per pass, stacked back to back.
        assert_eq!(report.makespan_ns, boundary_ns(t(8.0)));
        assert_eq!(report.segments[2].chunk, 1);
        assert!(report.segments[2].start >= t(4.0));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "without an explicit pass boundary")]
    fn clock_restart_without_pass_boundary_asserts() {
        let shard = ShardDag::from_dag(&single_chunk_chain(), 0, vec![0]);
        let waves = vec![
            WaveDag {
                pass: 0,
                time_base: SimTime::ZERO,
                shards: vec![shard.clone()],
            },
            // Same pass index but a restarted clock: the recorder forgot
            // set_pass — the debug assertion must catch it.
            WaveDag {
                pass: 0,
                time_base: SimTime::ZERO,
                shards: vec![shard],
            },
        ];
        let _ = analyze(&waves);
    }

    #[test]
    fn set_pass_stamps_recorded_waves() {
        let g = capture();
        assert_eq!(current_pass(), 0);
        set_pass(3);
        assert_eq!(current_pass(), 3);
        record_wave(WaveDag {
            pass: current_pass(),
            time_base: SimTime::ZERO,
            shards: vec![],
        });
        let waves = g.finish();
        assert_eq!(waves[0].pass, 3);
        // A fresh capture resets the pass index.
        let g2 = capture();
        assert_eq!(current_pass(), 0);
        drop(g2);
    }

    #[test]
    fn bottleneck_shard_wins_per_wave() {
        let fast = ShardDag::from_dag(&single_chunk_chain(), 0, vec![0]);
        let mut slow_src = single_chunk_chain();
        slow_src.slots[0][1].finish = t(9.0);
        slow_src.makespan = t(9.0);
        slow_src.resources = vec!["dev1.dma", "dev1.gpu-comp"];
        let slow = ShardDag::from_dag(&slow_src, 1, vec![1]);
        let report = analyze(&[WaveDag {
            pass: 0,
            time_base: SimTime::ZERO,
            shards: vec![fast, slow],
        }]);
        assert_eq!(report.device_blame, vec![(1, 9_000)]);
        assert_eq!(report.resource_blame[0].0, "gpu-comp"); // prefix stripped
        assert!(report.tiles_exactly());
    }

    #[test]
    fn split_device_parses_prefixes() {
        assert_eq!(split_device("dma"), (0, "dma"));
        assert_eq!(split_device("dev3.gpu-comp"), (3, "gpu-comp"));
        assert_eq!(split_device("critpath"), (0, "critpath"));
    }

    #[test]
    fn marker_spans_land_on_the_critpath_track() {
        let shard = ShardDag::from_dag(&single_chunk_chain(), 0, vec![0]);
        let report = analyze(&[WaveDag {
            pass: 0,
            time_base: SimTime::ZERO,
            shards: vec![shard],
        }]);
        let spans = marker_spans(&report);
        assert_eq!(spans.len(), 2);
        assert!(spans.iter().all(|s| s.track == CRITPATH_TRACK));
        assert_eq!(spans[1].stage, "compute");
    }
}

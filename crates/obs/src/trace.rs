//! Simulated-time span recorder.
//!
//! A [`SpanRecord`] is one stage instance of one chunk, placed on the track
//! of the hardware resource it occupied (GPU addr-gen half, CPU assembly
//! thread, DMA engine, GPU compute half...). Spans carry simulated time, not
//! wall-clock time: the exporter turns them into a Chrome/Perfetto trace of
//! the *schedule*, which is what the paper's Fig. 2 pipeline diagrams show.
//!
//! Two gates keep the untraced path free:
//!
//! * **compile time** — without the `trace` cargo feature every function
//!   here is an empty `#[inline]` stub;
//! * **runtime** — with the feature on, spans are only collected while a
//!   [`start`] guard is live on the *calling* thread (collection is
//!   thread-local; the pipeline records spans from the scheduling thread).
//!   The disabled path is one thread-local `Option` check and performs zero
//!   heap allocations — pinned by `crates/gpu/tests/alloc_free.rs`.
//!
//! Guards do not nest: a second [`start`] on the same thread resets the
//! buffer.

use bk_simcore::pipeline::ResourceId;
use bk_simcore::SimTime;

/// Stage label marking a span as a fault-recovery marker rather than a
/// pipeline stage instance: `dur` is zero, `start` is where the faulted
/// stage was rescheduled, and `stall` carries `("fault", lost time)`. The
/// exporter renders these as Perfetto instant events on the faulted
/// resource's track.
pub const FAULT_MARKER_STAGE: &str = "fault";

/// Stage label marking a span as a streaming re-detection point: the
/// per-window §IV.A access-pattern fingerprint drifted past the configured
/// threshold, so `OnlineDetect` re-classified the stream and the persistent
/// autotuner re-opened its search (`bk_runtime::stream`). `dur` is zero,
/// `start` is the admission time of the window that drifted, `chunk` is that
/// window's index, and `stall` is `None`. Rendered as Perfetto instant
/// events on the `"ingest"` track.
pub const REDETECT_MARKER_STAGE: &str = "redetect";

/// Stage label marking a span as an autotuner re-plan point: `dur` is zero,
/// `start` is the simulated time the new plan took effect (a window
/// boundary), `chunk` is the first chunk scheduled under the new plan, and
/// `stall` carries `("buffer-reuse", reuse stall of the window that
/// triggered the decision)`. Rendered as Perfetto instant events on the
/// `"autotune"` track.
pub const RETUNE_MARKER_STAGE: &str = "retune";

/// One recorded stage instance.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SpanRecord {
    /// Resource the stage ran on — one exporter track per distinct value.
    pub track: ResourceId,
    /// Stage name ("addr-gen", "assemble", ...).
    pub stage: &'static str,
    /// Global chunk index (monotone across waves).
    pub chunk: usize,
    /// Absolute simulated start time.
    pub start: SimTime,
    /// Busy duration of the stage instance.
    pub dur: SimTime,
    /// Why the span started later than its dataflow predecessor finished,
    /// and by how much — `None` when the pipeline handed over seamlessly.
    pub stall: Option<(&'static str, SimTime)>,
}

#[cfg(feature = "trace")]
mod imp {
    use super::SpanRecord;
    use bk_simcore::SimTime;
    use std::cell::{Cell, RefCell};

    thread_local! {
        static SINK: RefCell<Option<Vec<SpanRecord>>> = RefCell::new(None);
        static OFFSET: Cell<SimTime> = const { Cell::new(SimTime::ZERO) };
    }

    pub fn start() {
        SINK.with(|s| *s.borrow_mut() = Some(Vec::new()));
        OFFSET.with(|o| o.set(SimTime::ZERO));
    }

    pub fn finish() -> Vec<SpanRecord> {
        OFFSET.with(|o| o.set(SimTime::ZERO));
        SINK.with(|s| s.borrow_mut().take()).unwrap_or_default()
    }

    #[inline]
    pub fn record(span: &SpanRecord) {
        SINK.with(|s| {
            if let Some(v) = s.borrow_mut().as_mut() {
                let mut placed = *span;
                placed.start += OFFSET.with(|o| o.get());
                v.push(placed);
            }
        });
    }

    #[inline]
    pub fn set_time_offset(offset: SimTime) {
        OFFSET.with(|o| o.set(offset));
    }

    #[inline]
    pub fn enabled() -> bool {
        SINK.with(|s| s.borrow().is_some())
    }
}

/// RAII guard for span collection on the current thread. Obtain with
/// [`start`], harvest with [`TraceGuard::finish`]; dropping it without
/// finishing discards the buffer.
#[must_use = "dropping the guard discards collected spans"]
pub struct TraceGuard {
    _priv: (),
}

/// Begin collecting spans on this thread.
pub fn start() -> TraceGuard {
    #[cfg(feature = "trace")]
    imp::start();
    TraceGuard { _priv: () }
}

impl TraceGuard {
    /// Stop collecting and return the spans recorded since [`start`].
    pub fn finish(self) -> Vec<SpanRecord> {
        std::mem::forget(self);
        #[cfg(feature = "trace")]
        {
            imp::finish()
        }
        #[cfg(not(feature = "trace"))]
        {
            Vec::new()
        }
    }
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        #[cfg(feature = "trace")]
        drop(imp::finish());
    }
}

/// Record one span if collection is active on this thread; a no-op (and,
/// without the `trace` feature, an empty stub) otherwise.
#[inline]
pub fn record(span: &SpanRecord) {
    #[cfg(feature = "trace")]
    imp::record(span);
    #[cfg(not(feature = "trace"))]
    let _ = span;
}

/// Shift the `start` of every span recorded *after* this call by `offset`
/// (on the current thread, until changed or a new guard [`start`]s).
///
/// Batch runners place spans on their own zero-based time axis; the
/// streaming runner (`bk_runtime::stream`) sets the offset to each window's
/// pipeline start time before invoking the batch runner, so all windows of a
/// streamed run land on one absolute stream timeline in the exported trace.
/// Purely observational: without an active guard (or the `trace` feature)
/// this is a no-op and no simulated result can depend on it.
#[inline]
pub fn set_time_offset(offset: SimTime) {
    #[cfg(feature = "trace")]
    imp::set_time_offset(offset);
    #[cfg(not(feature = "trace"))]
    let _ = offset;
}

/// Is span collection active on this thread?
#[inline]
pub fn enabled() -> bool {
    #[cfg(feature = "trace")]
    {
        imp::enabled()
    }
    #[cfg(not(feature = "trace"))]
    {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(chunk: usize) -> SpanRecord {
        SpanRecord {
            track: "dma",
            stage: "transfer",
            chunk,
            start: SimTime::from_micros(chunk as f64),
            dur: SimTime::from_micros(1.0),
            stall: None,
        }
    }

    #[test]
    fn record_without_guard_is_dropped() {
        assert!(!enabled());
        record(&span(0));
        let g = start();
        drop(g.finish()); // not asserting content here; see below
        assert!(!enabled());
    }

    #[cfg(feature = "trace")]
    #[test]
    fn guard_collects_and_finish_harvests() {
        let g = start();
        assert!(enabled());
        record(&span(0));
        record(&span(1));
        let spans = g.finish();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[1].chunk, 1);
        assert!(!enabled(), "finish disables collection");
        record(&span(2)); // dropped, no guard
        let spans = start().finish();
        assert!(spans.is_empty());
    }

    #[cfg(feature = "trace")]
    #[test]
    fn time_offset_shifts_spans_until_reset() {
        let g = start();
        record(&span(0)); // starts at 0 µs
        set_time_offset(SimTime::from_micros(100.0));
        record(&span(1)); // starts at 1 µs + 100 µs offset
        set_time_offset(SimTime::ZERO);
        record(&span(2));
        let spans = g.finish();
        assert!((spans[0].start.micros() - 0.0).abs() < 1e-9);
        assert!((spans[1].start.micros() - 101.0).abs() < 1e-9);
        assert!((spans[2].start.micros() - 2.0).abs() < 1e-9);
        // A fresh guard resets any lingering offset.
        set_time_offset(SimTime::from_micros(7.0));
        let g = start();
        record(&span(0));
        assert!((g.finish()[0].start.micros() - 0.0).abs() < 1e-9);
    }

    #[cfg(feature = "trace")]
    #[test]
    fn dropping_the_guard_discards_spans() {
        let g = start();
        record(&span(0));
        drop(g);
        assert!(!enabled());
        assert!(start().finish().is_empty());
    }

    #[cfg(not(feature = "trace"))]
    #[test]
    fn feature_off_is_fully_inert() {
        let g = start();
        assert!(!enabled());
        record(&span(0));
        assert!(g.finish().is_empty());
    }
}

//! Exporters: Chrome/Perfetto `trace.json` and a text utilization report.
//!
//! The Chrome trace-event format is the least common denominator both
//! `chrome://tracing` and [Perfetto](https://ui.perfetto.dev) load directly:
//! an object `{"traceEvents": [...]}` of `"ph":"X"` complete events with
//! microsecond `ts`/`dur`, one thread (track) per hardware resource, plus
//! `"ph":"M"` metadata events naming the tracks. Everything here is written
//! with the workspace's hand-rolled JSON (no serde in the dependency set),
//! with deterministic ordering: one process per simulated device (pid =
//! device + 1, named `bigkernel-sim` / `bigkernel-sim dev<i>`), tracks in
//! canonical pipeline order within each device, spans in recorded order.
//! Canonical — not first-seen — track order matters on multi-GPU traces:
//! shards interleave recording, so first-seen order would shuffle lanes
//! from run to run.

use crate::trace::SpanRecord;
use bk_simcore::SimTime;
use std::fmt::Write as _;

/// Escape a string for a JSON literal. Span/track names are static
/// identifiers today, but the exporter should not silently corrupt output if
/// that ever changes.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Canonical lane order within one device's process: the six pipeline
/// resources in stage order, then the degraded-mode and marker tracks.
/// Track names missing from this list sort after it, alphabetically.
const TRACK_RANK: [&str; 11] = [
    "gpu-ag",
    "cpu-asm",
    "dma",
    "gpu-comp",
    "dma-d2h",
    "cpu-wb",
    "cpu-stage",
    "gpu",
    "serial",
    "autotune",
    "critpath",
];

/// Split an optional `dev<i>.` shard prefix off a track name; unprefixed
/// tracks belong to device 0.
fn track_device(track: &str) -> (usize, &str) {
    if let Some(rest) = track.strip_prefix("dev") {
        if let Some(dot) = rest.find('.') {
            if let Ok(d) = rest[..dot].parse::<usize>() {
                return (d, &rest[dot + 1..]);
            }
        }
    }
    (0, track)
}

fn rank(base: &str) -> usize {
    TRACK_RANK
        .iter()
        .position(|&r| r == base)
        .unwrap_or(TRACK_RANK.len())
}

/// Distinct tracks in canonical order: device ascending, then pipeline
/// rank within the device — stable no matter what order the spans were
/// recorded in, so multi-GPU traces never shuffle lanes between runs.
fn tracks(spans: &[SpanRecord]) -> Vec<&'static str> {
    let mut out: Vec<&'static str> = Vec::new();
    for s in spans {
        if !out.contains(&s.track) {
            out.push(s.track);
        }
    }
    out.sort_by(|a, b| {
        let (da, ba) = track_device(a);
        let (db, bb) = track_device(b);
        da.cmp(&db).then(rank(ba).cmp(&rank(bb))).then(ba.cmp(bb))
    });
    out
}

/// Render spans as a Chrome trace-event JSON document (Perfetto-loadable).
/// Each simulated device is its own process (pid = device + 1) so replica
/// lanes group under their device instead of interleaving in one flat list.
pub fn to_chrome_json(spans: &[SpanRecord]) -> String {
    let tracks = tracks(spans);
    // tids are globally unique (position in the canonical order + 1); pids
    // come from the `dev<i>.` track prefix.
    let ids = |t: &str| {
        let pos = tracks.iter().position(|&x| x == t).unwrap();
        (track_device(t).0 + 1, pos + 1)
    };

    let mut out = String::new();
    out.push_str("{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [\n");
    let mut first = true;
    let mut push = |ev: String, out: &mut String| {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str("    ");
        out.push_str(&ev);
    };

    let mut named_devices: Vec<usize> = Vec::new();
    for t in &tracks {
        let dev = track_device(t).0;
        if !named_devices.contains(&dev) {
            named_devices.push(dev);
            let name = if dev == 0 {
                "bigkernel-sim".to_string()
            } else {
                format!("bigkernel-sim dev{dev}")
            };
            push(
                format!(
                    "{{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": {}, \"tid\": 0, \
                     \"args\": {{\"name\": \"{name}\"}}}}",
                    dev + 1
                ),
                &mut out,
            );
            push(
                format!(
                    "{{\"name\": \"process_sort_index\", \"ph\": \"M\", \"pid\": {}, \
                     \"tid\": 0, \"args\": {{\"sort_index\": {dev}}}}}",
                    dev + 1
                ),
                &mut out,
            );
        }
    }
    for t in &tracks {
        let (pid, tid) = ids(t);
        push(
            format!(
                "{{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": {pid}, \"tid\": {tid}, \
                 \"args\": {{\"name\": \"{}\"}}}}",
                esc(t)
            ),
            &mut out,
        );
        push(
            format!(
                "{{\"name\": \"thread_sort_index\", \"ph\": \"M\", \"pid\": {pid}, \
                 \"tid\": {tid}, \"args\": {{\"sort_index\": {tid}}}}}"
            ),
            &mut out,
        );
    }
    for s in spans {
        let (pid, tid) = ids(s.track);
        if s.stage == crate::trace::FAULT_MARKER_STAGE {
            // Fault-recovery markers render as thread-scoped instant events
            // pinned to the moment the faulted stage was rescheduled.
            let lost = s.stall.map_or(0.0, |(_, gap)| gap.micros());
            push(
                format!(
                    "{{\"name\": \"fault c{}\", \"cat\": \"fault\", \"ph\": \"i\", \
                     \"s\": \"t\", \"pid\": {pid}, \"tid\": {tid}, \"ts\": {:.3}, \
                     \"args\": {{\"chunk\": {}, \"lost_us\": {:.3}}}}}",
                    s.chunk,
                    s.start.micros(),
                    s.chunk,
                    lost
                ),
                &mut out,
            );
            continue;
        }
        let mut args = format!("\"chunk\": {}, \"stage\": \"{}\"", s.chunk, esc(s.stage));
        if let Some((cause, gap)) = s.stall {
            let _ = write!(
                args,
                ", \"stall_cause\": \"{}\", \"stall_us\": {:.3}",
                esc(cause),
                gap.micros()
            );
        }
        push(
            format!(
                "{{\"name\": \"{} c{}\", \"cat\": \"stage\", \"ph\": \"X\", \"pid\": {pid}, \
                 \"tid\": {tid}, \"ts\": {:.3}, \"dur\": {:.3}, \"args\": {{{}}}}}",
                esc(s.stage),
                s.chunk,
                s.start.micros(),
                s.dur.micros(),
                args
            ),
            &mut out,
        );
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// Fraction of `total_busy` covered by the recorded spans (the acceptance
/// gauge: the trace must account for ≥ 99% of simulated busy time).
pub fn busy_coverage(spans: &[SpanRecord], total_busy: SimTime) -> f64 {
    if total_busy.is_zero() {
        return if spans.is_empty() { 1.0 } else { 0.0 };
    }
    let covered: SimTime = spans.iter().map(|s| s.dur).sum();
    covered.ratio(total_busy)
}

/// Plain-text utilization / bubble report: per-track busy time and
/// utilization over the traced window, plus the top stall causes by total
/// stalled simulated time.
pub fn text_report(spans: &[SpanRecord]) -> String {
    let mut out = String::new();
    if spans.is_empty() {
        out.push_str("no spans recorded\n");
        return out;
    }
    let t0 = spans
        .iter()
        .map(|s| s.start)
        .fold(spans[0].start, SimTime::min);
    let t1 = spans
        .iter()
        .map(|s| s.start + s.dur)
        .fold(SimTime::ZERO, SimTime::max);
    let window = t1.saturating_sub(t0);

    let _ = writeln!(
        out,
        "trace window: {window}  ({} spans on {} tracks)",
        spans.len(),
        tracks(spans).len()
    );
    let _ = writeln!(
        out,
        "{:<10} {:>7} {:>12} {:>7} {:>12}",
        "track", "spans", "busy", "util", "bubble"
    );
    for t in tracks(spans) {
        let busy: SimTime = spans.iter().filter(|s| s.track == t).map(|s| s.dur).sum();
        let n = spans.iter().filter(|s| s.track == t).count();
        let util = if window.is_zero() {
            0.0
        } else {
            busy.ratio(window)
        };
        let _ = writeln!(
            out,
            "{:<10} {:>7} {:>12} {:>6.1}% {:>12}",
            t,
            n,
            format!("{busy}"),
            util * 100.0,
            format!("{}", window.saturating_sub(busy)),
        );
    }

    // Top stall causes: aggregate by (stage, cause), sort by stalled time.
    let mut totals: Vec<(String, SimTime)> = Vec::new();
    for s in spans {
        if let Some((cause, gap)) = s.stall {
            let key = format!("{}.{}", s.stage, cause);
            match totals.iter_mut().find(|(k, _)| *k == key) {
                Some((_, t)) => *t += gap,
                None => totals.push((key, gap)),
            }
        }
    }
    totals.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    if totals.is_empty() {
        let _ = writeln!(out, "no stalls: the pipeline never went hungry");
    } else {
        let _ = writeln!(out, "top stall causes (stage.cause, total stalled time):");
        for (k, t) in totals.iter().take(8) {
            let share = if window.is_zero() {
                0.0
            } else {
                t.ratio(window)
            };
            let _ = writeln!(
                out,
                "  {:<28} {:>12}  ({:.1}% of window)",
                k,
                format!("{t}"),
                share * 100.0
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spans() -> Vec<SpanRecord> {
        vec![
            SpanRecord {
                track: "dma",
                stage: "transfer",
                chunk: 0,
                start: SimTime::ZERO,
                dur: SimTime::from_micros(10.0),
                stall: None,
            },
            SpanRecord {
                track: "gpu-comp",
                stage: "compute",
                chunk: 0,
                start: SimTime::from_micros(10.0),
                dur: SimTime::from_micros(30.0),
                stall: None,
            },
            SpanRecord {
                track: "dma",
                stage: "transfer",
                chunk: 1,
                start: SimTime::from_micros(40.0),
                dur: SimTime::from_micros(10.0),
                stall: Some(("buffer-reuse", SimTime::from_micros(30.0))),
            },
        ]
    }

    #[test]
    fn chrome_json_has_tracks_events_and_stalls() {
        let j = to_chrome_json(&spans());
        assert!(j.contains("\"traceEvents\""));
        assert!(j.contains("\"thread_name\""));
        assert!(j.contains("\"name\": \"dma\""));
        assert!(j.contains("\"name\": \"gpu-comp\""));
        assert!(j.contains("\"ph\": \"X\""));
        assert!(j.contains("\"transfer c1\""));
        assert!(j.contains("\"stall_cause\": \"buffer-reuse\""));
        assert!(j.contains("\"ts\": 40.000"));
        // Two metadata-named tracks → tids 1 and 2, consistent between
        // metadata and spans.
        assert!(j.contains("\"tid\": 1"));
        assert!(j.contains("\"tid\": 2"));
    }

    #[test]
    fn chrome_json_is_structurally_balanced() {
        let j = to_chrome_json(&spans());
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
        let empty = to_chrome_json(&[]);
        assert!(empty.contains("\"traceEvents\""));
        assert_eq!(empty.matches('{').count(), empty.matches('}').count());
    }

    #[test]
    fn fault_markers_become_instant_events() {
        let mut s = spans();
        s.push(SpanRecord {
            track: "gpu-comp",
            stage: crate::trace::FAULT_MARKER_STAGE,
            chunk: 1,
            start: SimTime::from_micros(12.0),
            dur: SimTime::ZERO,
            stall: Some(("fault", SimTime::from_micros(7.0))),
        });
        let j = to_chrome_json(&s);
        assert!(j.contains("\"ph\": \"i\""));
        assert!(j.contains("\"fault c1\""));
        assert!(j.contains("\"cat\": \"fault\""));
        assert!(j.contains("\"lost_us\": 7.000"));
        assert!(j.contains("\"s\": \"t\""));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn device_prefixed_tracks_get_their_own_process() {
        let mut s = spans();
        s.push(SpanRecord {
            track: "dev1.gpu-comp",
            stage: "compute",
            chunk: 2,
            start: SimTime::from_micros(5.0),
            dur: SimTime::from_micros(10.0),
            stall: None,
        });
        let j = to_chrome_json(&s);
        // Device 0 keeps the bare process name; device 1 is a second
        // process with pid 2 and an explicit sort index.
        assert!(j.contains("\"pid\": 1, \"tid\": 0, \"args\": {\"name\": \"bigkernel-sim\"}"));
        assert!(j.contains("\"args\": {\"name\": \"bigkernel-sim dev1\"}"));
        assert!(j.contains("\"process_sort_index\""));
        // The dev1 span carries the dev1 pid.
        assert!(j.contains("\"cat\": \"stage\", \"ph\": \"X\", \"pid\": 2"));
    }

    #[test]
    fn track_order_is_canonical_not_first_seen() {
        // Record compute before transfer, on two devices, deliberately
        // interleaved: the exported lane order must still be
        // device-major pipeline order.
        let mk = |track: &'static str, start: f64| SpanRecord {
            track,
            stage: "x",
            chunk: 0,
            start: SimTime::from_micros(start),
            dur: SimTime::from_micros(1.0),
            stall: None,
        };
        let s = vec![
            mk("dev1.gpu-comp", 0.0),
            mk("gpu-comp", 1.0),
            mk("dev1.dma", 2.0),
            mk("dma", 3.0),
        ];
        assert_eq!(
            tracks(&s),
            vec!["dma", "gpu-comp", "dev1.dma", "dev1.gpu-comp"]
        );
        // Shuffled recording order yields the same lane order.
        let mut rev = s.clone();
        rev.reverse();
        assert_eq!(tracks(&rev), tracks(&s));
    }

    #[test]
    fn track_device_splits_prefixes() {
        assert_eq!(track_device("dma"), (0, "dma"));
        assert_eq!(track_device("dev3.gpu-comp"), (3, "gpu-comp"));
        assert_eq!(track_device("devoid"), (0, "devoid"));
        assert_eq!(track_device("dev9.custom"), (9, "custom"));
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(esc("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(esc("x\ny"), "x\\u000ay");
        assert_eq!(esc("plain"), "plain");
    }

    #[test]
    fn coverage_counts_span_time() {
        let s = spans();
        let busy = SimTime::from_micros(50.0);
        assert!((busy_coverage(&s, busy) - 1.0).abs() < 1e-12);
        assert!((busy_coverage(&s[..2], busy) - 0.8).abs() < 1e-12);
        assert_eq!(busy_coverage(&[], SimTime::ZERO), 1.0);
    }

    #[test]
    fn text_report_lists_tracks_and_top_stalls() {
        let r = text_report(&spans());
        assert!(r.contains("dma"));
        assert!(r.contains("gpu-comp"));
        assert!(r.contains("transfer.buffer-reuse"));
        assert!(r.contains("% of window"));
        assert!(text_report(&[]).contains("no spans"));
    }
}

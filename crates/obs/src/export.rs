//! Exporters: Chrome/Perfetto `trace.json` and a text utilization report.
//!
//! The Chrome trace-event format is the least common denominator both
//! `chrome://tracing` and [Perfetto](https://ui.perfetto.dev) load directly:
//! an object `{"traceEvents": [...]}` of `"ph":"X"` complete events with
//! microsecond `ts`/`dur`, one thread (track) per hardware resource, plus
//! `"ph":"M"` metadata events naming the tracks. Everything here is written
//! with the workspace's hand-rolled JSON (no serde in the dependency set),
//! with deterministic ordering: tracks in first-seen (pipeline) order, spans
//! in recorded order.

use crate::trace::SpanRecord;
use bk_simcore::SimTime;
use std::fmt::Write as _;

/// Escape a string for a JSON literal. Span/track names are static
/// identifiers today, but the exporter should not silently corrupt output if
/// that ever changes.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Tracks in first-seen order (spans are recorded chunk-major in stage
/// order, so this is pipeline order, which reads naturally in Perfetto).
fn tracks(spans: &[SpanRecord]) -> Vec<&'static str> {
    let mut out: Vec<&'static str> = Vec::new();
    for s in spans {
        if !out.contains(&s.track) {
            out.push(s.track);
        }
    }
    out
}

/// Render spans as a Chrome trace-event JSON document (Perfetto-loadable).
pub fn to_chrome_json(spans: &[SpanRecord]) -> String {
    let tracks = tracks(spans);
    let tid = |t: &str| tracks.iter().position(|&x| x == t).unwrap() + 1;

    let mut out = String::new();
    out.push_str("{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [\n");
    let mut first = true;
    let mut push = |ev: String, out: &mut String| {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str("    ");
        out.push_str(&ev);
    };

    push(
        "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": 0, \
         \"args\": {\"name\": \"bigkernel-sim\"}}"
            .to_string(),
        &mut out,
    );
    for t in &tracks {
        push(
            format!(
                "{{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": {}, \
                 \"args\": {{\"name\": \"{}\"}}}}",
                tid(t),
                esc(t)
            ),
            &mut out,
        );
    }
    for s in spans {
        if s.stage == crate::trace::FAULT_MARKER_STAGE {
            // Fault-recovery markers render as thread-scoped instant events
            // pinned to the moment the faulted stage was rescheduled.
            let lost = s.stall.map_or(0.0, |(_, gap)| gap.micros());
            push(
                format!(
                    "{{\"name\": \"fault c{}\", \"cat\": \"fault\", \"ph\": \"i\", \
                     \"s\": \"t\", \"pid\": 1, \"tid\": {}, \"ts\": {:.3}, \
                     \"args\": {{\"chunk\": {}, \"lost_us\": {:.3}}}}}",
                    s.chunk,
                    tid(s.track),
                    s.start.micros(),
                    s.chunk,
                    lost
                ),
                &mut out,
            );
            continue;
        }
        let mut args = format!("\"chunk\": {}, \"stage\": \"{}\"", s.chunk, esc(s.stage));
        if let Some((cause, gap)) = s.stall {
            let _ = write!(
                args,
                ", \"stall_cause\": \"{}\", \"stall_us\": {:.3}",
                esc(cause),
                gap.micros()
            );
        }
        push(
            format!(
                "{{\"name\": \"{} c{}\", \"cat\": \"stage\", \"ph\": \"X\", \"pid\": 1, \
                 \"tid\": {}, \"ts\": {:.3}, \"dur\": {:.3}, \"args\": {{{}}}}}",
                esc(s.stage),
                s.chunk,
                tid(s.track),
                s.start.micros(),
                s.dur.micros(),
                args
            ),
            &mut out,
        );
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// Fraction of `total_busy` covered by the recorded spans (the acceptance
/// gauge: the trace must account for ≥ 99% of simulated busy time).
pub fn busy_coverage(spans: &[SpanRecord], total_busy: SimTime) -> f64 {
    if total_busy.is_zero() {
        return if spans.is_empty() { 1.0 } else { 0.0 };
    }
    let covered: SimTime = spans.iter().map(|s| s.dur).sum();
    covered.ratio(total_busy)
}

/// Plain-text utilization / bubble report: per-track busy time and
/// utilization over the traced window, plus the top stall causes by total
/// stalled simulated time.
pub fn text_report(spans: &[SpanRecord]) -> String {
    let mut out = String::new();
    if spans.is_empty() {
        out.push_str("no spans recorded\n");
        return out;
    }
    let t0 = spans
        .iter()
        .map(|s| s.start)
        .fold(spans[0].start, SimTime::min);
    let t1 = spans
        .iter()
        .map(|s| s.start + s.dur)
        .fold(SimTime::ZERO, SimTime::max);
    let window = t1.saturating_sub(t0);

    let _ = writeln!(
        out,
        "trace window: {window}  ({} spans on {} tracks)",
        spans.len(),
        tracks(spans).len()
    );
    let _ = writeln!(
        out,
        "{:<10} {:>7} {:>12} {:>7} {:>12}",
        "track", "spans", "busy", "util", "bubble"
    );
    for t in tracks(spans) {
        let busy: SimTime = spans.iter().filter(|s| s.track == t).map(|s| s.dur).sum();
        let n = spans.iter().filter(|s| s.track == t).count();
        let util = if window.is_zero() {
            0.0
        } else {
            busy.ratio(window)
        };
        let _ = writeln!(
            out,
            "{:<10} {:>7} {:>12} {:>6.1}% {:>12}",
            t,
            n,
            format!("{busy}"),
            util * 100.0,
            format!("{}", window.saturating_sub(busy)),
        );
    }

    // Top stall causes: aggregate by (stage, cause), sort by stalled time.
    let mut totals: Vec<(String, SimTime)> = Vec::new();
    for s in spans {
        if let Some((cause, gap)) = s.stall {
            let key = format!("{}.{}", s.stage, cause);
            match totals.iter_mut().find(|(k, _)| *k == key) {
                Some((_, t)) => *t += gap,
                None => totals.push((key, gap)),
            }
        }
    }
    totals.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    if totals.is_empty() {
        let _ = writeln!(out, "no stalls: the pipeline never went hungry");
    } else {
        let _ = writeln!(out, "top stall causes (stage.cause, total stalled time):");
        for (k, t) in totals.iter().take(8) {
            let share = if window.is_zero() {
                0.0
            } else {
                t.ratio(window)
            };
            let _ = writeln!(
                out,
                "  {:<28} {:>12}  ({:.1}% of window)",
                k,
                format!("{t}"),
                share * 100.0
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spans() -> Vec<SpanRecord> {
        vec![
            SpanRecord {
                track: "dma",
                stage: "transfer",
                chunk: 0,
                start: SimTime::ZERO,
                dur: SimTime::from_micros(10.0),
                stall: None,
            },
            SpanRecord {
                track: "gpu-comp",
                stage: "compute",
                chunk: 0,
                start: SimTime::from_micros(10.0),
                dur: SimTime::from_micros(30.0),
                stall: None,
            },
            SpanRecord {
                track: "dma",
                stage: "transfer",
                chunk: 1,
                start: SimTime::from_micros(40.0),
                dur: SimTime::from_micros(10.0),
                stall: Some(("buffer-reuse", SimTime::from_micros(30.0))),
            },
        ]
    }

    #[test]
    fn chrome_json_has_tracks_events_and_stalls() {
        let j = to_chrome_json(&spans());
        assert!(j.contains("\"traceEvents\""));
        assert!(j.contains("\"thread_name\""));
        assert!(j.contains("\"name\": \"dma\""));
        assert!(j.contains("\"name\": \"gpu-comp\""));
        assert!(j.contains("\"ph\": \"X\""));
        assert!(j.contains("\"transfer c1\""));
        assert!(j.contains("\"stall_cause\": \"buffer-reuse\""));
        assert!(j.contains("\"ts\": 40.000"));
        // Two metadata-named tracks → tids 1 and 2, consistent between
        // metadata and spans.
        assert!(j.contains("\"tid\": 1"));
        assert!(j.contains("\"tid\": 2"));
    }

    #[test]
    fn chrome_json_is_structurally_balanced() {
        let j = to_chrome_json(&spans());
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
        let empty = to_chrome_json(&[]);
        assert!(empty.contains("\"traceEvents\""));
        assert_eq!(empty.matches('{').count(), empty.matches('}').count());
    }

    #[test]
    fn fault_markers_become_instant_events() {
        let mut s = spans();
        s.push(SpanRecord {
            track: "gpu-comp",
            stage: crate::trace::FAULT_MARKER_STAGE,
            chunk: 1,
            start: SimTime::from_micros(12.0),
            dur: SimTime::ZERO,
            stall: Some(("fault", SimTime::from_micros(7.0))),
        });
        let j = to_chrome_json(&s);
        assert!(j.contains("\"ph\": \"i\""));
        assert!(j.contains("\"fault c1\""));
        assert!(j.contains("\"cat\": \"fault\""));
        assert!(j.contains("\"lost_us\": 7.000"));
        assert!(j.contains("\"s\": \"t\""));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(esc("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(esc("x\ny"), "x\\u000ay");
        assert_eq!(esc("plain"), "plain");
    }

    #[test]
    fn coverage_counts_span_time() {
        let s = spans();
        let busy = SimTime::from_micros(50.0);
        assert!((busy_coverage(&s, busy) - 1.0).abs() < 1e-12);
        assert!((busy_coverage(&s[..2], busy) - 0.8).abs() < 1e-12);
        assert_eq!(busy_coverage(&[], SimTime::ZERO), 1.0);
    }

    #[test]
    fn text_report_lists_tracks_and_top_stalls() {
        let r = text_report(&spans());
        assert!(r.contains("dma"));
        assert!(r.contains("gpu-comp"));
        assert!(r.contains("transfer.buffer-reuse"));
        assert!(r.contains("% of window"));
        assert!(text_report(&[]).contains("no spans"));
    }
}

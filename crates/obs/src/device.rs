//! Per-device metric names for multi-GPU runs.
//!
//! The sharding scheduler records, per simulated device, how many chunks it
//! owned, its total busy time, its schedule makespan and its stalled time —
//! the numbers behind the `scaling` bench's per-device utilization columns.
//! Counter names must be `&'static str` (the [`crate::MetricsRegistry`]
//! interns nothing at runtime), so the device × quantity cross product is
//! expanded at compile time, which also caps the supported device count.

/// Maximum number of simulated devices with interned metric/track names.
pub const MAX_DEVICES: usize = 8;

/// Expand the quantity arms for one device literal.
macro_rules! device_arms {
    ($dev:literal, $what:expr) => {
        match $what {
            "chunks" => Some(concat!("device.", $dev, ".chunks")),
            "busy_ns" => Some(concat!("device.", $dev, ".busy_ns")),
            "makespan_ns" => Some(concat!("device.", $dev, ".makespan_ns")),
            "stall_ns" => Some(concat!("device.", $dev, ".stall_ns")),
            _ => None,
        }
    };
}

/// Interned `device.<i>.<what>` counter name for `what` in
/// `{chunks, busy_ns, makespan_ns, stall_ns}` and `device < MAX_DEVICES`;
/// `None` outside the table.
pub fn device_counter(device: usize, what: &str) -> Option<&'static str> {
    match device {
        0 => device_arms!("0", what),
        1 => device_arms!("1", what),
        2 => device_arms!("2", what),
        3 => device_arms!("3", what),
        4 => device_arms!("4", what),
        5 => device_arms!("5", what),
        6 => device_arms!("6", what),
        7 => device_arms!("7", what),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_cover_the_device_range() {
        assert_eq!(device_counter(0, "chunks"), Some("device.0.chunks"));
        assert_eq!(device_counter(7, "stall_ns"), Some("device.7.stall_ns"));
        assert_eq!(device_counter(3, "busy_ns"), Some("device.3.busy_ns"));
        assert_eq!(device_counter(MAX_DEVICES, "chunks"), None);
        assert_eq!(device_counter(0, "unknown"), None);
    }
}

//! # bk-obs — observability for the BigKernel reproduction
//!
//! The pipeline's whole value proposition (§III, Fig. 2) is *staying full*;
//! this crate makes emptiness visible. Four pieces:
//!
//! * [`metrics`] — the [`MetricsRegistry`]: the workspace's single metrics
//!   sink, wrapping the event counters ([`bk_simcore::Counters`]) and adding
//!   fixed-footprint log₂ [`Histogram`]s (span durations, per-chunk bytes).
//! * [`trace`] — a span recorder for simulated-time spans
//!   `(chunk, stage, resource)`. Collection is compile-time gated behind the
//!   `trace` cargo feature *and* runtime-gated behind a thread-local
//!   [`trace::start`] guard, so an untraced run does no work and allocates
//!   nothing.
//! * [`stall`] — stall attribution: converts the scheduler's per-slot
//!   [`bk_simcore::StallKind`] into typed [`StallCause`]s and
//!   `stall.<stage>.<cause>` counters, and [`stall::record_schedule`] walks a
//!   computed [`bk_simcore::Schedule`] emitting spans + stall counters +
//!   duration histograms in one pass.
//! * [`export`] — exporters: Chrome/Perfetto `trace.json` (one track per
//!   hardware resource) and a plain-text utilization / bubble report.
//! * [`critpath`] — critical-path reconstruction: which chain of slots
//!   actually bound the makespan, with per-stage/resource/device blame and
//!   a capture sink for the runtime's scheduled-wave snapshots.
//!
//! Determinism contract: everything recorded into the [`MetricsRegistry`]
//! (counters, histograms, stall totals) is derived purely from the
//! deterministic [`bk_simcore::Schedule`] and is recorded *unconditionally*,
//! whether or not tracing is enabled — so enabling tracing can never change
//! a simulated result. Only span collection and export are gated.

#![deny(missing_docs)]

pub mod critpath;
pub mod device;
pub mod export;
pub mod metrics;
pub mod stall;
pub mod trace;

pub use critpath::{analyze, critical_path, CritReport, ScheduleDag};
pub use device::{device_counter, MAX_DEVICES};
pub use export::{text_report, to_chrome_json};
pub use metrics::{Histogram, MetricsRegistry};
pub use stall::{
    record_schedule, record_schedule_mapped, reuse_wait_hist, stall_counter, StallCause,
};
pub use trace::{SpanRecord, FAULT_MARKER_STAGE, REDETECT_MARKER_STAGE, RETUNE_MARKER_STAGE};

//! The unified metrics registry: counters + fixed-footprint histograms.
//!
//! [`MetricsRegistry`] is the single sink every layer (runtime, baselines,
//! experiment binaries) reports through. It wraps the existing
//! [`Counters`] map unchanged and adds log₂-bucketed [`Histogram`]s for
//! distributions the counters flatten away: span durations per stage,
//! per-chunk transferred bytes, and anything a later PR wants to observe.
//!
//! Both halves use `BTreeMap`s keyed by `&'static str`, so iteration order —
//! and therefore every printed report and exported JSON — is deterministic.
//! A histogram's storage is a fixed inline array: `observe` never allocates
//! once the name exists, which keeps the steady-state pipeline loop
//! allocation-free (pinned by `crates/gpu/tests/alloc_free.rs`).

use bk_simcore::Counters;
use std::collections::BTreeMap;
use std::fmt;

/// Number of log₂ buckets: bucket `i` counts values whose bit length is `i`
/// (so bucket 0 is exactly the value 0, bucket 64 is `2^63..=u64::MAX`).
pub const HIST_BUCKETS: usize = 65;

/// A log₂-bucketed histogram of `u64` samples with exact count / sum /
/// min / max. Fixed footprint; `observe` is branch-light and allocation-free.
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; HIST_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; HIST_BUCKETS],
        }
    }
}

impl Histogram {
    /// An empty histogram (identical to `Default`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample.
    #[inline]
    pub fn observe(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[(64 - value.leading_zeros()) as usize] += 1;
    }

    /// Number of samples observed.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observed samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observed sample; zero for an empty histogram.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest observed sample; zero for an empty histogram.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of the observed samples, zero when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Occupancy of one log₂ bucket (see [`HIST_BUCKETS`]).
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
    }
}

/// The workspace-wide metrics sink: named counters plus named histograms.
///
/// The counter half mirrors the [`Counters`] API (`add` / `incr` / `get` /
/// `ratio` / `merge` / `iter`) so migrated call sites read the same; the
/// histogram half adds `observe` / `hist`.
///
/// ```
/// use bk_obs::MetricsRegistry;
///
/// let mut m = MetricsRegistry::new();
/// m.add("pcie.h2d_bytes", 4096);
/// m.incr("chunks");
/// m.observe("hist.span.compute", 1250);
/// assert_eq!(m.get("pcie.h2d_bytes"), 4096);
/// assert_eq!(m.hist("hist.span.compute").unwrap().count(), 1);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: Counters,
    hists: BTreeMap<&'static str, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry (identical to `Default`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta` to the named counter (overflow-checked, see
    /// [`Counters::add`]).
    #[inline]
    pub fn add(&mut self, name: &'static str, delta: u64) {
        self.counters.add(name, delta);
    }

    /// Increment the named counter by one.
    #[inline]
    pub fn incr(&mut self, name: &'static str) {
        self.counters.incr(name);
    }

    /// Current counter value (zero if never touched).
    #[inline]
    pub fn get(&self, name: &str) -> u64 {
        self.counters.get(name)
    }

    /// Ratio of two counters, `0.0` when the denominator is zero.
    pub fn ratio(&self, num: &str, den: &str) -> f64 {
        self.counters.ratio(num, den)
    }

    /// Record one sample into the named histogram (created empty first).
    #[inline]
    pub fn observe(&mut self, name: &'static str, value: u64) {
        self.hists.entry(name).or_default().observe(value);
    }

    /// The named histogram, if any sample was ever observed under it.
    pub fn hist(&self, name: &str) -> Option<&Histogram> {
        self.hists.get(name)
    }

    /// Merge a standalone histogram into the named one (created empty
    /// first) — for stages that accumulate a local [`Histogram`] off to the
    /// side and fold it in wholesale.
    pub fn merge_hist(&mut self, name: &'static str, h: &Histogram) {
        self.hists.entry(name).or_default().merge(h);
    }

    /// Merge another registry into this one (summing counters, merging
    /// histograms by name).
    pub fn merge(&mut self, other: &MetricsRegistry) {
        self.counters.merge(&other.counters);
        for (&k, v) in &other.hists {
            self.hists.entry(k).or_default().merge(v);
        }
    }

    /// Iterate counters in deterministic name order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter()
    }

    /// Iterate histograms in deterministic name order.
    pub fn hists(&self) -> impl Iterator<Item = (&'static str, &Histogram)> + '_ {
        self.hists.iter().map(|(&k, v)| (k, v))
    }

    /// The wrapped counter map (for code that still speaks [`Counters`]).
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Whether neither a counter nor a histogram was ever touched.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.hists.is_empty()
    }
}

impl fmt::Display for MetricsRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.counters)?;
        for (name, h) in self.hists() {
            writeln!(
                f,
                "{name:40} n={} mean={:.1} min={} max={}",
                h.count(),
                h.mean(),
                h.min(),
                h.max()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_tracks_count_sum_min_max() {
        let mut h = Histogram::new();
        assert_eq!((h.count(), h.sum(), h.min(), h.max()), (0, 0, 0, 0));
        for v in [0u64, 1, 7, 8, 1024] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1040);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1024);
        assert!((h.mean() - 208.0).abs() < 1e-12);
        // log2 buckets: 0 → bucket 0, 1 → 1, 7 → 3, 8 → 4, 1024 → 11.
        assert_eq!(h.bucket(0), 1);
        assert_eq!(h.bucket(1), 1);
        assert_eq!(h.bucket(3), 1);
        assert_eq!(h.bucket(4), 1);
        assert_eq!(h.bucket(11), 1);
    }

    #[test]
    fn histogram_handles_extremes() {
        let mut h = Histogram::new();
        h.observe(u64::MAX);
        h.observe(u64::MAX);
        assert_eq!(h.bucket(64), 2);
        assert_eq!(h.sum(), u64::MAX, "sum saturates instead of wrapping");
    }

    #[test]
    fn histogram_merge_is_additive() {
        let mut a = Histogram::new();
        a.observe(3);
        let mut b = Histogram::new();
        b.observe(100);
        b.observe(1);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 104);
        assert_eq!(a.min(), 1);
        assert_eq!(a.max(), 100);
    }

    #[test]
    fn registry_mirrors_counter_api_and_adds_histograms() {
        let mut m = MetricsRegistry::new();
        assert!(m.is_empty());
        m.add("bytes", 10);
        m.incr("bytes");
        assert_eq!(m.get("bytes"), 11);
        m.add("hits", 3);
        m.add("total", 4);
        assert!((m.ratio("hits", "total") - 0.75).abs() < 1e-12);
        m.observe("lat", 5);
        m.observe("lat", 7);
        assert_eq!(m.hist("lat").unwrap().count(), 2);
        assert!(m.hist("absent").is_none());
        assert!(!m.is_empty());
    }

    #[test]
    fn registry_merge_combines_both_halves() {
        let mut a = MetricsRegistry::new();
        a.add("c", 1);
        a.observe("h", 2);
        let mut b = MetricsRegistry::new();
        b.add("c", 2);
        b.observe("h", 4);
        b.observe("only_b", 1);
        a.merge(&b);
        assert_eq!(a.get("c"), 3);
        assert_eq!(a.hist("h").unwrap().count(), 2);
        assert_eq!(a.hist("h").unwrap().sum(), 6);
        assert_eq!(a.hist("only_b").unwrap().count(), 1);
    }

    #[test]
    fn merge_hist_folds_a_local_histogram_in() {
        let mut m = MetricsRegistry::new();
        m.observe("h", 1);
        let mut local = Histogram::new();
        local.observe(9);
        local.observe(3);
        m.merge_hist("h", &local);
        m.merge_hist("fresh", &local);
        assert_eq!(m.hist("h").unwrap().count(), 3);
        assert_eq!(m.hist("h").unwrap().sum(), 13);
        assert_eq!(m.hist("fresh").unwrap().count(), 2);
    }

    #[test]
    fn registry_equality_covers_histograms() {
        let mut a = MetricsRegistry::new();
        let mut b = MetricsRegistry::new();
        assert_eq!(a, b);
        a.observe("h", 1);
        assert_ne!(a, b);
        b.observe("h", 1);
        assert_eq!(a, b);
    }

    #[test]
    fn display_lists_counters_and_hist_summaries() {
        let mut m = MetricsRegistry::new();
        m.add("events", 2);
        m.observe("lat", 10);
        let s = format!("{m}");
        assert!(s.contains("events"));
        assert!(s.contains("lat"));
        assert!(s.contains("n=1"));
    }
}

//! Stall attribution: typed causes, `stall.<stage>.<cause>` counters, and
//! the schedule walker that feeds spans + metrics in one pass.
//!
//! The scheduler ([`bk_simcore::pipeline::schedule`]) records *why* each
//! slot started later than its dataflow predecessor finished — a
//! [`StallKind`]: either a buffer-reuse edge (§IV.C's `addr-gen(n)` waits
//! for `compute(n−3)` rule, implemented by flag signalling over PCIe) or
//! in-order contention on the slot's resource. This module maps those raw
//! kinds onto the pipeline's hardware vocabulary ([`StallCause`]): the DMA
//! in-order queue, CPU assembly-thread availability, GPU queue pressure, the
//! fully-serialized single-buffer resource, or the buffer-reuse/flag wait.

use crate::metrics::MetricsRegistry;
use crate::trace::{self, SpanRecord};
use bk_simcore::{ScheduleView, SimTime, StallKind};

/// Why a pipeline stage instance could not start when its input was ready.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StallCause {
    /// Buffer-reuse rule: the producer waited for the consumer of chunk
    /// `n − depth` to release the buffer (the paper's flag/barrier wait).
    BufferReuse,
    /// The in-order DMA queue was still transferring earlier chunks.
    DmaQueue,
    /// No CPU thread (assembly, staging, write-back apply) was available.
    CpuThread,
    /// The GPU half (addr-gen or compute queue) was still busy.
    GpuQueue,
    /// The single shared resource of a fully serialized baseline.
    Serial,
    /// Injected fault recovery: wasted attempts plus retry backoff added by
    /// a fault plan (`bk_runtime::fault`). Never produced by
    /// [`StallCause::from_kind`] — fault delays are injected into stage
    /// durations before scheduling, not attributed by the scheduler; the
    /// fault context records them directly.
    Fault,
    /// Streaming ingestion blocked on the bounded inter-stage queue's
    /// high-watermark: a window's bytes had fully arrived but the pipeline
    /// still held `queue_bound` unretired windows, so admission waited for
    /// the oldest to drain (`bk_runtime::stream`). Like [`Fault`](Self::Fault)
    /// this is never produced by [`StallCause::from_kind`] — the streaming
    /// runner attributes it directly on the `ingest` stage.
    Backpressure,
    /// A resource outside the known vocabulary (kept visible, never silent).
    Other,
}

impl StallCause {
    /// Stable label used in counter names, span records and reports.
    pub fn label(self) -> &'static str {
        match self {
            StallCause::BufferReuse => "buffer-reuse",
            StallCause::DmaQueue => "dma-queue",
            StallCause::CpuThread => "cpu-thread",
            StallCause::GpuQueue => "gpu-queue",
            StallCause::Serial => "serial",
            StallCause::Fault => "fault",
            StallCause::Backpressure => "backpressure",
            StallCause::Other => "other",
        }
    }

    /// Classify a scheduler-level stall by the resource vocabulary used by
    /// the runtime (`gpu-ag`, `cpu-asm`, `dma`, `dma-d2h`, `gpu-comp`,
    /// `cpu-wb`) and the baselines (`cpu-stage`, `dma`, `gpu`, `wb_dma`,
    /// `cpu-wb`, `serial`). Multi-device runs qualify resources as
    /// `dev<i>.<name>`; the device prefix is stripped before
    /// classification, so all devices feed the same cause buckets.
    pub fn from_kind(kind: StallKind) -> StallCause {
        match kind {
            StallKind::Reuse { .. } => StallCause::BufferReuse,
            StallKind::Resource(r) => {
                let r = match r.strip_prefix("dev") {
                    Some(rest) => rest.split_once('.').map_or(r, |(_, tail)| tail),
                    None => r,
                };
                if r == "serial" {
                    StallCause::Serial
                } else if r.contains("dma") {
                    StallCause::DmaQueue
                } else if r.starts_with("cpu") {
                    StallCause::CpuThread
                } else if r.starts_with("gpu") {
                    StallCause::GpuQueue
                } else {
                    StallCause::Other
                }
            }
        }
    }
}

/// Expand the causes for one stage literal (the stage × cause cross product
/// needs the stage bound once per arm, hence the two-level macro).
macro_rules! stall_arms {
    ($stage:literal, $cause:expr) => {
        match $cause {
            "buffer-reuse" => Some(concat!("stall.", $stage, ".buffer-reuse")),
            "dma-queue" => Some(concat!("stall.", $stage, ".dma-queue")),
            "cpu-thread" => Some(concat!("stall.", $stage, ".cpu-thread")),
            "gpu-queue" => Some(concat!("stall.", $stage, ".gpu-queue")),
            "serial" => Some(concat!("stall.", $stage, ".serial")),
            "fault" => Some(concat!("stall.", $stage, ".fault")),
            "backpressure" => Some(concat!("stall.", $stage, ".backpressure")),
            "other" => Some(concat!("stall.", $stage, ".other")),
            _ => None,
        }
    };
}

/// Interned `stall.<stage>.<cause>` counter name for every known
/// stage/cause pair, `None` for a pair outside the table. Counter names must
/// be `&'static str`, so the cross product is expanded at compile time.
pub fn stall_counter(stage: &str, cause: &str) -> Option<&'static str> {
    match stage {
        "addr-gen" => stall_arms!("addr-gen", cause),
        "assemble" => stall_arms!("assemble", cause),
        "transfer" => stall_arms!("transfer", cause),
        "compute" => stall_arms!("compute", cause),
        "wb-xfer" => stall_arms!("wb-xfer", cause),
        "wb-apply" => stall_arms!("wb-apply", cause),
        "stage-pin" => stall_arms!("stage-pin", cause),
        "ingest" => stall_arms!("ingest", cause),
        _ => None,
    }
}

/// Interned `hist.span.<stage>` histogram name (span durations in
/// simulated nanoseconds).
fn span_hist(stage: &str) -> Option<&'static str> {
    macro_rules! table {
        ($( $stage:literal ),* $(,)?) => {
            match stage {
                $( $stage => Some(concat!("hist.span.", $stage)), )*
                _ => None,
            }
        };
    }
    table!(
        "addr-gen",
        "assemble",
        "transfer",
        "compute",
        "wb-xfer",
        "wb-apply",
        "stage-pin",
        "ingest"
    )
}

/// Interned `hist.reuse-wait.<stage>` histogram name: how long each
/// buffer-reuse wait lasted, in simulated nanoseconds, log₂-bucketed by the
/// registry's [`crate::Histogram`]. The autotuner's main input, and the
/// wait-depth distribution `perf_snapshot` summarizes.
pub fn reuse_wait_hist(stage: &str) -> Option<&'static str> {
    macro_rules! table {
        ($( $stage:literal ),* $(,)?) => {
            match stage {
                $( $stage => Some(concat!("hist.reuse-wait.", $stage)), )*
                _ => None,
            }
        };
    }
    table!(
        "addr-gen",
        "assemble",
        "transfer",
        "compute",
        "wb-xfer",
        "wb-apply",
        "stage-pin"
    )
}

/// Walk one computed wave `Schedule` and record, for every non-empty slot:
///
/// * a [`SpanRecord`] on the slot's resource track (only collected while a
///   [`trace::start`] guard is live — see the crate docs),
/// * the span-duration histogram `hist.span.<stage>`,
/// * if the slot stalled, the `stall.<stage>.<cause>` counter (simulated
///   nanoseconds), plus the per-wait `hist.reuse-wait.<stage>` histogram
///   when the cause is the buffer-reuse rule.
///
/// `chunk_base` and `time_base` place the wave in the whole run: the
/// runtime schedules waves back to back, so wave-local chunk indices and
/// times are offset into run-global ones. Metrics are recorded
/// unconditionally and derive purely from the deterministic schedule, so
/// tracing on/off cannot change any simulated result.
pub fn record_schedule<S: ScheduleView>(
    sched: &S,
    chunk_base: usize,
    time_base: SimTime,
    metrics: &mut MetricsRegistry,
) {
    record_schedule_with(sched, |local| chunk_base + local, time_base, metrics)
}

/// [`record_schedule`] with an arbitrary local→global chunk-index map.
///
/// A sharded multi-device schedule covers a non-contiguous subsequence of
/// the run's chunks (device `d` owns chunks `d, d + N, d + 2N, ...` under
/// round-robin); `chunk_ids[local]` names the run-global chunk each local
/// row corresponds to, so spans land on the right chunk labels.
pub fn record_schedule_mapped<S: ScheduleView>(
    sched: &S,
    chunk_ids: &[usize],
    time_base: SimTime,
    metrics: &mut MetricsRegistry,
) {
    assert_eq!(
        chunk_ids.len(),
        sched.num_chunks(),
        "one global id per scheduled chunk"
    );
    record_schedule_with(sched, |local| chunk_ids[local], time_base, metrics)
}

/// Strip a fused-pass `p<i>.` qualifier from a stage name. Fused multi-pass
/// graphs name their stages `p0.addr-gen` … `p3.wb-apply`; every pass's copy
/// of a role feeds the same span histogram and stall buckets, exactly like
/// the `dev<i>.` resource qualifier. Names without the qualifier pass
/// through unchanged.
fn stage_role(name: &str) -> &str {
    if let Some(rest) = name.strip_prefix('p') {
        if let Some((idx, role)) = rest.split_once('.') {
            if !idx.is_empty() && idx.bytes().all(|b| b.is_ascii_digit()) {
                return role;
            }
        }
    }
    name
}

fn record_schedule_with<S: ScheduleView>(
    sched: &S,
    chunk_id: impl Fn(usize) -> usize,
    time_base: SimTime,
    metrics: &mut MetricsRegistry,
) {
    for chunk in 0..sched.num_chunks() {
        for stage in 0..sched.num_stages() {
            let slot = sched.slot(chunk, stage);
            let dur = slot.duration();
            if dur.is_zero() {
                continue;
            }
            let full_name = sched.stage_name(stage);
            let name = stage_role(full_name);
            if let Some(h) = span_hist(name) {
                metrics.observe(h, dur.nanos() as u64);
            }
            let meta = sched.slot_meta(chunk, stage);
            let stall = meta.kind.map(|k| {
                let cause = StallCause::from_kind(k);
                if cause == StallCause::BufferReuse {
                    if let Some(h) = reuse_wait_hist(name) {
                        metrics.observe(h, meta.stall.nanos() as u64);
                    }
                }
                match stall_counter(name, cause.label()) {
                    Some(c) => metrics.add(c, meta.stall.nanos() as u64),
                    None => {
                        debug_assert!(
                            false,
                            "no stall counter for stage `{name}` cause `{}`",
                            cause.label()
                        );
                        metrics.add("stall.other", meta.stall.nanos() as u64);
                    }
                }
                (cause.label(), meta.stall)
            });
            trace::record(&SpanRecord {
                track: sched.stage_resource(stage),
                stage: full_name,
                chunk: chunk_id(chunk),
                start: time_base + slot.start,
                dur,
                stall,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bk_simcore::{pipeline, SimTime, StageDef};

    fn t(us: f64) -> SimTime {
        SimTime::from_micros(us)
    }

    fn sched() -> pipeline::Schedule {
        // Two stages sharing one DMA-like resource plus a reuse edge, so
        // both stall flavours appear.
        let spec = pipeline::PipelineSpec::new(vec![
            StageDef {
                name: "transfer",
                resource: "dma",
            },
            StageDef {
                name: "compute",
                resource: "gpu-comp",
            },
        ])
        .with_reuse(0, 1, 1);
        pipeline::schedule(&spec, &vec![vec![t(1.0), t(3.0)]; 4])
    }

    #[test]
    fn cause_classification_covers_the_resource_vocabulary() {
        use StallCause::*;
        for (res, want) in [
            ("dma", DmaQueue),
            ("dma-d2h", DmaQueue),
            ("wb_dma", DmaQueue),
            ("cpu-asm", CpuThread),
            ("cpu-stage", CpuThread),
            ("cpu-wb", CpuThread),
            ("gpu-ag", GpuQueue),
            ("gpu-comp", GpuQueue),
            ("gpu", GpuQueue),
            ("serial", Serial),
            ("fpga", Other),
        ] {
            assert_eq!(
                StallCause::from_kind(StallKind::Resource(res)),
                want,
                "{res}"
            );
        }
        assert_eq!(
            StallCause::from_kind(StallKind::Reuse { consumer: 3 }),
            BufferReuse
        );
    }

    #[test]
    fn stall_counter_names_are_interned() {
        assert_eq!(
            stall_counter("addr-gen", "buffer-reuse"),
            Some("stall.addr-gen.buffer-reuse")
        );
        assert_eq!(
            stall_counter("stage-pin", "serial"),
            Some("stall.stage-pin.serial")
        );
        assert_eq!(
            stall_counter("compute", StallCause::Fault.label()),
            Some("stall.compute.fault")
        );
        assert_eq!(
            stall_counter("ingest", StallCause::Backpressure.label()),
            Some("stall.ingest.backpressure")
        );
        assert_eq!(stall_counter("unknown-stage", "serial"), None);
        assert_eq!(stall_counter("compute", "unknown-cause"), None);
    }

    #[test]
    fn record_schedule_rolls_stalls_into_counters_and_histograms() {
        let s = sched();
        let mut m = MetricsRegistry::new();
        record_schedule(&s, 0, SimTime::ZERO, &mut m);
        // 4 chunks × 2 stages, all non-empty.
        assert_eq!(m.hist("hist.span.transfer").unwrap().count(), 4);
        assert_eq!(m.hist("hist.span.compute").unwrap().count(), 4);
        // Chunks 1.. stall on the reuse edge before transferring.
        assert!(m.get("stall.transfer.buffer-reuse") > 0);
        // The stall totals must equal the scheduler's per-slot gaps.
        let want: u64 = (0..s.num_chunks())
            .map(|c| s.slot_meta(c, 0).stall.nanos() as u64)
            .sum();
        assert_eq!(m.get("stall.transfer.buffer-reuse"), want);
    }

    #[test]
    fn reuse_wait_histogram_counts_each_stalled_wait() {
        let s = sched();
        let mut m = MetricsRegistry::new();
        record_schedule(&s, 0, SimTime::ZERO, &mut m);
        // One wait per reuse-stalled slot, summing to the stall counter.
        let stalled = (0..s.num_chunks())
            .filter(|&c| matches!(s.slot_meta(c, 0).kind, Some(StallKind::Reuse { .. })))
            .count() as u64;
        let h = m.hist("hist.reuse-wait.transfer").expect("histogram");
        assert!(stalled > 0);
        assert_eq!(h.count(), stalled);
        assert_eq!(h.sum(), m.get("stall.transfer.buffer-reuse"));
        // The non-reuse stage recorded no reuse waits.
        assert!(m.hist("hist.reuse-wait.compute").is_none());
    }

    #[test]
    fn fused_stage_names_fold_onto_roles() {
        assert_eq!(stage_role("p0.addr-gen"), "addr-gen");
        assert_eq!(stage_role("p3.wb-apply"), "wb-apply");
        assert_eq!(stage_role("addr-gen"), "addr-gen");
        // Not a fused qualifier: no digits / no dot.
        assert_eq!(stage_role("prefetch"), "prefetch");
        assert_eq!(stage_role("px.compute"), "px.compute");
    }

    #[test]
    fn reuse_wait_hist_names_are_interned() {
        assert_eq!(
            reuse_wait_hist("addr-gen"),
            Some("hist.reuse-wait.addr-gen")
        );
        assert_eq!(reuse_wait_hist("compute"), Some("hist.reuse-wait.compute"));
        assert_eq!(reuse_wait_hist("unknown"), None);
    }

    #[test]
    fn record_schedule_offsets_chunks_and_time() {
        let s = sched();
        let g = crate::trace::start();
        record_schedule(
            &s,
            100,
            SimTime::from_micros(50.0),
            &mut MetricsRegistry::new(),
        );
        let spans = g.finish();
        if cfg!(feature = "trace") {
            assert_eq!(spans.len(), 8);
            assert_eq!(spans[0].chunk, 100);
            assert_eq!(spans[0].track, "dma");
            assert!((spans[0].start.micros() - 50.0).abs() < 1e-9);
            // Every positive inter-stage gap carries a cause.
            for sp in &spans {
                if let Some((cause, gap)) = sp.stall {
                    assert!(!gap.is_zero());
                    assert!(!cause.is_empty());
                }
            }
            assert!(spans.iter().any(|sp| sp.stall.is_some()));
        } else {
            assert!(spans.is_empty());
        }
    }

    #[test]
    fn metrics_identical_with_and_without_tracing() {
        let s = sched();
        let mut with = MetricsRegistry::new();
        let g = crate::trace::start();
        record_schedule(&s, 0, SimTime::ZERO, &mut with);
        drop(g.finish());
        let mut without = MetricsRegistry::new();
        record_schedule(&s, 0, SimTime::ZERO, &mut without);
        assert_eq!(with, without);
    }
}

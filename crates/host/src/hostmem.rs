//! Functional host memory: mapped source arrays and pinned DMA buffers.
//!
//! Regions are real byte vectors with stable virtual addresses (used by the
//! cache simulator when costing gathers). DMA engines may only touch
//! *pinned* regions — the allocator tracks pinned bytes because the paper
//! explicitly discusses the cost of pinning (non-pageable memory taken from
//! other processes, §III).

/// Handle to a host memory region.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct RegionId(pub(crate) usize);

/// Alignment of region base addresses; 4 KiB pages.
pub const PAGE: u64 = 4096;

struct Region {
    base: u64,
    pinned: bool,
    data: Vec<u8>,
}

/// Host DRAM: allocator + functional storage.
pub struct HostMemory {
    next_base: u64,
    pinned_bytes: u64,
    regions: Vec<Region>,
}

impl Default for HostMemory {
    fn default() -> Self {
        Self::new()
    }
}

impl HostMemory {
    pub fn new() -> Self {
        HostMemory {
            next_base: PAGE,
            pinned_bytes: 0,
            regions: Vec::new(),
        }
    }

    fn alloc_inner(&mut self, len: u64, pinned: bool) -> RegionId {
        let id = RegionId(self.regions.len());
        let base = self.next_base;
        self.next_base = base + len.div_ceil(PAGE) * PAGE;
        if pinned {
            self.pinned_bytes += len;
        }
        self.regions.push(Region {
            base,
            pinned,
            data: vec![0u8; len as usize],
        });
        id
    }

    /// Allocate ordinary pageable memory (mapped source arrays).
    pub fn alloc(&mut self, len: u64) -> RegionId {
        self.alloc_inner(len, false)
    }

    /// Allocate pinned (page-locked) memory usable by the DMA engine.
    pub fn alloc_pinned(&mut self, len: u64) -> RegionId {
        self.alloc_inner(len, true)
    }

    /// Allocate and fill from `bytes`.
    pub fn alloc_from(&mut self, bytes: &[u8]) -> RegionId {
        let id = self.alloc(bytes.len() as u64);
        self.regions[id.0].data.copy_from_slice(bytes);
        id
    }

    pub fn is_pinned(&self, id: RegionId) -> bool {
        self.regions[id.0].pinned
    }

    /// Total currently-pinned bytes (reported in experiment outputs).
    pub fn pinned_bytes(&self) -> u64 {
        self.pinned_bytes
    }

    pub fn len(&self, id: RegionId) -> u64 {
        self.regions[id.0].data.len() as u64
    }

    pub fn is_empty(&self, id: RegionId) -> bool {
        self.regions[id.0].data.is_empty()
    }

    /// Virtual address of `offset` within the region (cache-sim input).
    #[inline]
    pub fn vaddr(&self, id: RegionId, offset: u64) -> u64 {
        self.regions[id.0].base + offset
    }

    #[inline]
    pub fn read(&self, id: RegionId, offset: u64, len: usize) -> &[u8] {
        let r = &self.regions[id.0];
        &r.data[offset as usize..offset as usize + len]
    }

    #[inline]
    pub fn write(&mut self, id: RegionId, offset: u64, bytes: &[u8]) {
        let r = &mut self.regions[id.0];
        r.data[offset as usize..offset as usize + bytes.len()].copy_from_slice(bytes);
    }

    #[inline]
    pub fn read_u8(&self, id: RegionId, offset: u64) -> u8 {
        self.regions[id.0].data[offset as usize]
    }

    #[inline]
    pub fn read_u32(&self, id: RegionId, offset: u64) -> u32 {
        u32::from_le_bytes(self.read(id, offset, 4).try_into().unwrap())
    }

    #[inline]
    pub fn read_u64(&self, id: RegionId, offset: u64) -> u64 {
        u64::from_le_bytes(self.read(id, offset, 8).try_into().unwrap())
    }

    #[inline]
    pub fn read_f64(&self, id: RegionId, offset: u64) -> f64 {
        f64::from_le_bytes(self.read(id, offset, 8).try_into().unwrap())
    }

    #[inline]
    pub fn write_u32(&mut self, id: RegionId, offset: u64, v: u32) {
        self.write(id, offset, &v.to_le_bytes());
    }

    #[inline]
    pub fn write_u64(&mut self, id: RegionId, offset: u64, v: u64) {
        self.write(id, offset, &v.to_le_bytes());
    }

    #[inline]
    pub fn write_f64(&mut self, id: RegionId, offset: u64, v: f64) {
        self.write(id, offset, &v.to_le_bytes());
    }

    /// Borrow the whole region read-only (for verification and DMA sourcing).
    pub fn bytes(&self, id: RegionId) -> &[u8] {
        &self.regions[id.0].data
    }

    /// Borrow the whole region mutably (generators fill regions in place).
    pub fn bytes_mut(&mut self, id: RegionId) -> &mut [u8] {
        &mut self.regions[id.0].data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_zeroed_rw_roundtrip() {
        let mut m = HostMemory::new();
        let r = m.alloc(100);
        assert_eq!(m.len(r), 100);
        assert!(!m.is_pinned(r));
        m.write_u64(r, 0, 7);
        m.write_f64(r, 8, 1.5);
        m.write_u32(r, 16, 9);
        assert_eq!(m.read_u64(r, 0), 7);
        assert_eq!(m.read_f64(r, 8), 1.5);
        assert_eq!(m.read_u32(r, 16), 9);
        assert_eq!(m.read_u8(r, 20), 0);
    }

    #[test]
    fn pinned_accounting() {
        let mut m = HostMemory::new();
        assert_eq!(m.pinned_bytes(), 0);
        let p = m.alloc_pinned(4096);
        let _ = m.alloc(4096);
        assert!(m.is_pinned(p));
        assert_eq!(m.pinned_bytes(), 4096);
    }

    #[test]
    fn vaddrs_page_aligned_and_disjoint() {
        let mut m = HostMemory::new();
        let a = m.alloc(10);
        let b = m.alloc(10);
        assert_eq!(m.vaddr(a, 0) % PAGE, 0);
        assert!(m.vaddr(b, 0) >= m.vaddr(a, 0) + PAGE);
        assert_ne!(m.vaddr(a, 0), 0);
    }

    #[test]
    fn alloc_from_copies() {
        let mut m = HostMemory::new();
        let r = m.alloc_from(b"hello");
        assert_eq!(m.bytes(r), b"hello");
        m.bytes_mut(r)[0] = b'j';
        assert_eq!(m.read(r, 0, 5), b"jello");
    }
}

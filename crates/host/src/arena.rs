//! Region-style bump allocator for pinned assembly buffers.
//!
//! The real BigKernel runtime gathers each chunk into *pinned* (page-locked)
//! host buffers so the DMA engine can read them directly; pinning is
//! expensive, so the buffers must be allocated once and reused for the
//! lifetime of the pipeline. [`PinnedArena`] models that discipline: one
//! slab, bump-allocated within a chunk, wholesale-reset between chunks.
//!
//! Each reset advances a *generation* counter, and every [`ArenaRef`] handed
//! out is stamped with the generation it was allocated under. Dereferencing
//! a ref after a reset panics — a stale read of a recycled buffer is a
//! correctness bug in the pipeline, not something to paper over.
//!
//! The slab grows only while the cursor outruns it, i.e. during the first
//! chunk or two; after warm-up every allocation is a cursor bump plus a
//! `memset` of the window, so steady-state assembly performs zero heap
//! allocations (pinned by the counting-allocator test in `bk-gpu`).

/// Alignment of every arena allocation, matching a cache line so gathers
/// into distinct buffers never share one.
const ARENA_ALIGN: usize = 64;

/// A generation-tagged window into a [`PinnedArena`].
///
/// Plain `Copy` data — it holds no borrow, so it can live inside the
/// pipeline's per-block state across stage boundaries. The arena re-checks
/// the generation on every dereference.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ArenaRef {
    offset: usize,
    len: usize,
    generation: u64,
}

impl ArenaRef {
    /// Length in bytes of the referenced window.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the window is zero-length.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The arena generation this ref was allocated under.
    pub fn generation(&self) -> u64 {
        self.generation
    }
}

/// Bump allocator over one long-lived slab; see the module docs.
pub struct PinnedArena {
    slab: Vec<u8>,
    cursor: usize,
    generation: u64,
    high_water: usize,
}

impl PinnedArena {
    /// Fresh, empty arena (generation 0, no slab yet).
    pub fn new() -> Self {
        PinnedArena {
            slab: Vec::new(),
            cursor: 0,
            generation: 0,
            high_water: 0,
        }
    }

    /// Fresh arena with `bytes` of slab pre-reserved, for callers that know
    /// their chunk footprint up front.
    pub fn with_capacity(bytes: usize) -> Self {
        let mut a = PinnedArena::new();
        a.slab.resize(bytes, 0);
        a
    }

    /// Allocate a zeroed, cache-line-aligned window of `len` bytes from the
    /// current generation. Grows the slab only if the cursor outruns it;
    /// once the arena has seen its peak chunk footprint this never
    /// allocates again.
    pub fn alloc_zeroed(&mut self, len: usize) -> ArenaRef {
        let offset = self.cursor;
        let end = offset + len;
        if end > self.slab.len() {
            self.slab.resize(end, 0);
        }
        self.slab[offset..end].fill(0);
        // Keep the next allocation line-aligned.
        self.cursor = end + (ARENA_ALIGN - end % ARENA_ALIGN) % ARENA_ALIGN;
        self.high_water = self.high_water.max(end);
        ArenaRef {
            offset,
            len,
            generation: self.generation,
        }
    }

    /// Borrow the bytes behind `r`.
    ///
    /// # Panics
    /// If `r` was allocated under an earlier generation (the window has
    /// been recycled by [`PinnedArena::reset`]). Zero-length refs (e.g. the
    /// `Default` ref) are always valid and borrow the empty slice.
    pub fn bytes(&self, r: &ArenaRef) -> &[u8] {
        if r.len == 0 {
            return &[];
        }
        self.check_generation(r);
        &self.slab[r.offset..r.offset + r.len]
    }

    /// Mutably borrow the bytes behind `r`; same panics as
    /// [`PinnedArena::bytes`].
    pub fn bytes_mut(&mut self, r: &ArenaRef) -> &mut [u8] {
        if r.len == 0 {
            return &mut [];
        }
        self.check_generation(r);
        &mut self.slab[r.offset..r.offset + r.len]
    }

    #[inline]
    fn check_generation(&self, r: &ArenaRef) {
        assert_eq!(
            r.generation, self.generation,
            "stale ArenaRef: allocated under generation {} but the arena \
             has been reset to generation {}",
            r.generation, self.generation
        );
    }

    /// Recycle the whole arena: the cursor returns to zero and the
    /// generation advances, invalidating every outstanding [`ArenaRef`].
    /// The slab itself is retained, so the next chunk reuses its pages.
    pub fn reset(&mut self) {
        self.cursor = 0;
        self.generation += 1;
    }

    /// The current generation number.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Peak bytes ever live at once — the pipeline's steady-state pinned
    /// footprint.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Current slab size in bytes.
    pub fn capacity(&self) -> usize {
        self.slab.len()
    }
}

impl Default for PinnedArena {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_alloc_places_distinct_aligned_windows() {
        let mut a = PinnedArena::new();
        let x = a.alloc_zeroed(10);
        let y = a.alloc_zeroed(100);
        a.bytes_mut(&x).fill(0xaa);
        a.bytes_mut(&y).fill(0xbb);
        assert!(a.bytes(&x).iter().all(|&b| b == 0xaa));
        assert!(a.bytes(&y).iter().all(|&b| b == 0xbb));
        assert_eq!(a.high_water(), 64 + 100); // x padded to one line
    }

    #[test]
    fn reset_recycles_without_stale_reads() {
        let mut a = PinnedArena::new();
        let old = a.alloc_zeroed(256);
        a.bytes_mut(&old).fill(0xff);
        a.reset();
        // Same window, next generation: must come back zeroed even though
        // the slab still physically holds the old 0xff bytes.
        let fresh = a.alloc_zeroed(256);
        assert_eq!(fresh.generation(), old.generation() + 1);
        assert!(a.bytes(&fresh).iter().all(|&b| b == 0));
    }

    #[test]
    #[should_panic(expected = "stale ArenaRef")]
    fn stale_ref_panics_after_reset() {
        let mut a = PinnedArena::new();
        let old = a.alloc_zeroed(8);
        a.reset();
        let _ = a.bytes(&old);
    }

    #[test]
    fn steady_state_does_not_grow_the_slab() {
        let mut a = PinnedArena::new();
        a.alloc_zeroed(1000);
        a.alloc_zeroed(500);
        let cap = a.capacity();
        for _ in 0..10 {
            a.reset();
            a.alloc_zeroed(1000);
            a.alloc_zeroed(500);
            assert_eq!(a.capacity(), cap);
        }
    }

    #[test]
    fn zero_length_refs_are_always_valid() {
        let mut a = PinnedArena::new();
        let z = a.alloc_zeroed(0);
        a.reset();
        assert!(a.bytes(&z).is_empty()); // no generation panic for empties
        assert!(a.bytes(&ArenaRef::default()).is_empty());
    }
}

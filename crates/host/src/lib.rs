//! # bk-host — host-side simulator
//!
//! Substrate for the CPU half of the BigKernel system (DESIGN.md §2–3):
//!
//! * [`cpu`] — CPU cost model (cores/SMT, IPC, memory bandwidth roofline)
//!   with the paper's Xeon E5 quad-core preset; used both for the CPU
//!   baseline implementations and for costing BigKernel's data-assembly
//!   stage.
//! * [`cache`] — a set-associative LRU cache simulator. The assembly stage
//!   feeds its real gather address stream through this to measure the hit
//!   rate, which is what the paper's §IV.B locality optimization improves.
//! * [`hostmem`] — functional host memory regions and the pinned-buffer
//!   allocator (DMA may only touch pinned pages; pinned bytes are tracked
//!   because the paper calls out their cost).
//! * [`arena`] — region-style bump allocator with generation-tagged reset,
//!   modelling the long-lived pinned assembly buffers: allocate once, bump
//!   per chunk, wholesale-reset between chunks, zero steady-state heap
//!   traffic.
//! * [`pcie`] — the PCIe Gen3 x16 link and DMA-engine cost model, including
//!   the in-order flag-copy completion signal BigKernel relies on (§IV.C).

pub mod arena;
pub mod cache;
pub mod cpu;
pub mod hostmem;
pub mod pcie;

pub use arena::{ArenaRef, PinnedArena};
pub use cache::CacheSim;
pub use cpu::{CpuCost, CpuSpec};
pub use hostmem::{HostMemory, RegionId};
pub use pcie::{DmaDirection, PcieLink};

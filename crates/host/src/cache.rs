//! Set-associative LRU cache simulator.
//!
//! Used to measure the CPU-side data-assembly stage's locality: BigKernel's
//! gather walks the mapped source array in either GPU-access order (poor
//! locality when records interleave across threads) or per-GPU-thread order
//! (paper §IV.B, good locality because each GPU thread reads consecutive
//! data). The measured hit rate feeds the CPU cost model.
//!
//! The model is a single-level "last level cache" (the paper quotes 10 MB
//! combined L2/L3); inner levels are folded into the hit cost.
//!
//! The simulator sits on the assembly hot path (one probe per gathered
//! line), so the lookup is branch-light: line/set/tag come from shifts and
//! masks, and each set's LRU order lives in a flat `ways`-wide row moved
//! with `copy_within` rather than a per-set `Vec`.

/// Outcome of one access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Access {
    Hit,
    Miss,
}

/// Set-associative cache with LRU replacement.
///
/// ```
/// use bk_host::CacheSim;
///
/// let mut llc = CacheSim::xeon_llc();
/// // A sequential scan misses once per 64-byte line.
/// for addr in 0..4096u64 {
///     llc.access(addr);
/// }
/// assert_eq!(llc.misses(), 4096 / 64);
/// ```
pub struct CacheSim {
    line_bytes: u64,
    /// `log2(line_bytes)`: byte address → line number by shift.
    line_shift: u32,
    num_sets: u64,
    /// `num_sets - 1`: line number → set index by mask.
    set_mask: u64,
    /// `log2(num_sets)`: line number → tag by shift.
    set_shift: u32,
    ways: usize,
    /// Flat `num_sets x ways` tag rows, each most-recent first. Entries
    /// store `tag + 1` so `0` means "empty way" (tags are bounded well
    /// below `u64::MAX` because they are `addr >> line_shift / num_sets`).
    tags: Vec<u64>,
    hits: u64,
    misses: u64,
}

impl CacheSim {
    /// Create a cache of `capacity_bytes` with `line_bytes` lines and
    /// `ways`-way associativity. Capacity must be a multiple of
    /// `line_bytes * ways` and the resulting set count a power of two.
    pub fn new(capacity_bytes: u64, line_bytes: u64, ways: usize) -> Self {
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(ways > 0, "need at least one way");
        let num_sets = capacity_bytes / (line_bytes * ways as u64);
        assert!(
            num_sets > 0 && num_sets.is_power_of_two(),
            "set count must be a power of two"
        );
        CacheSim {
            line_bytes,
            line_shift: line_bytes.trailing_zeros(),
            num_sets,
            set_mask: num_sets - 1,
            set_shift: num_sets.trailing_zeros(),
            ways,
            tags: vec![0; (num_sets as usize) * ways],
            hits: 0,
            misses: 0,
        }
    }

    /// The paper's host: 10 MB combined L2/L3. (8 MiB power-of-two sets,
    /// 64 B lines, 16-way.)
    pub fn xeon_llc() -> Self {
        CacheSim::new(8 * (1 << 20), 64, 16)
    }

    pub fn line_bytes(&self) -> u64 {
        self.line_bytes
    }

    /// Total capacity in bytes (`sets * ways * line_bytes`) — the working
    /// set that fits fully resident, used to size cache-blocked gather
    /// tiles.
    pub fn capacity_bytes(&self) -> u64 {
        self.num_sets * self.ways as u64 * self.line_bytes
    }

    /// Probe one line number (not a byte address).
    #[inline]
    fn access_line(&mut self, line: u64) -> Access {
        let set_idx = (line & self.set_mask) as usize;
        let tag = (line >> self.set_shift) + 1;
        let row = &mut self.tags[set_idx * self.ways..(set_idx + 1) * self.ways];
        if row[0] == tag {
            // Already MRU — the streaming common case (consecutive gathers
            // landing in the same line) needs no reordering.
            self.hits += 1;
            return Access::Hit;
        }
        if let Some(pos) = row.iter().position(|&t| t == tag) {
            // Move to MRU position.
            row.copy_within(0..pos, 1);
            row[0] = tag;
            self.hits += 1;
            Access::Hit
        } else {
            // Shift everything down one way (the LRU falls off) and
            // install at MRU.
            row.copy_within(0..self.ways - 1, 1);
            row[0] = tag;
            self.misses += 1;
            Access::Miss
        }
    }

    /// Access one byte address; widths that stay within a line count as one
    /// access (callers split multi-line accesses — see [`CacheSim::access_range`]).
    pub fn access(&mut self, addr: u64) -> Access {
        self.access_line(addr >> self.line_shift)
    }

    /// Access `[addr, addr+len)`, one access per touched line — partial
    /// leading and trailing lines each count as a full probe, and a
    /// zero-length range touches nothing. Returns `(hits, misses)` for the
    /// range.
    pub fn access_range(&mut self, addr: u64, len: u64) -> (u64, u64) {
        if len == 0 {
            return (0, 0);
        }
        let first = addr >> self.line_shift;
        let last = (addr + len - 1) >> self.line_shift;
        let mut h = 0;
        let mut m = 0;
        for line in first..=last {
            match self.access_line(line) {
                Access::Hit => h += 1,
                Access::Miss => m += 1,
            }
        }
        (h, m)
    }

    pub fn hits(&self) -> u64 {
        self.hits
    }

    pub fn misses(&self) -> u64 {
        self.misses
    }

    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    pub fn reset_stats(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CacheSim {
        // 4 sets x 2 ways x 64B lines = 512B capacity
        CacheSim::new(512, 64, 2)
    }

    #[test]
    fn first_touch_misses_second_hits() {
        let mut c = tiny();
        assert_eq!(c.access(0), Access::Miss);
        assert_eq!(c.access(0), Access::Hit);
        assert_eq!(c.access(63), Access::Hit); // same line
        assert_eq!(c.access(64), Access::Miss); // next line
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn lru_evicts_oldest_within_set() {
        let mut c = tiny();
        // Three lines mapping to set 0: line numbers 0, 4, 8 (4 sets).
        let (a, b, d) = (0u64, 4 * 64, 8 * 64);
        c.access(a);
        c.access(b);
        c.access(d); // evicts a (2-way)
        assert_eq!(c.access(b), Access::Hit);
        assert_eq!(c.access(a), Access::Miss);
    }

    #[test]
    fn lru_touch_refreshes() {
        let mut c = tiny();
        let (a, b, d) = (0u64, 4 * 64, 8 * 64);
        c.access(a);
        c.access(b);
        c.access(a); // refresh a → b becomes LRU
        c.access(d); // evicts b
        assert_eq!(c.access(a), Access::Hit);
        assert_eq!(c.access(b), Access::Miss);
    }

    #[test]
    fn sequential_scan_hit_rate_matches_line_size() {
        let mut c = CacheSim::xeon_llc();
        for addr in 0..(1u64 << 16) {
            c.access(addr);
        }
        // 1 miss per 64B line → hit rate 63/64.
        let expected = 63.0 / 64.0;
        assert!((c.hit_rate() - expected).abs() < 1e-3, "{}", c.hit_rate());
    }

    #[test]
    fn scattered_scan_mostly_misses() {
        let mut c = CacheSim::xeon_llc();
        // Stride far beyond capacity repeatedly.
        let mut addr = 0u64;
        for _ in 0..100_000 {
            c.access(addr);
            addr = addr.wrapping_add(1 << 20) & ((1 << 36) - 1);
        }
        assert!(c.hit_rate() < 0.05, "{}", c.hit_rate());
    }

    #[test]
    fn access_range_counts_lines() {
        let mut c = tiny();
        let (h, m) = c.access_range(0, 129); // lines 0,1,2
        assert_eq!((h, m), (0, 3));
        let (h, m) = c.access_range(0, 129);
        assert_eq!((h, m), (3, 0));
        assert_eq!(c.access_range(0, 0), (0, 0));
    }

    #[test]
    fn access_range_partial_edge_lines() {
        let mut c = tiny();
        // [60, 70): straddles the 0/1 line boundary — both partial lines
        // count as one probe each.
        assert_eq!(c.access_range(60, 10), (0, 2));
        // [65, 66): entirely inside line 1, already resident.
        assert_eq!(c.access_range(65, 1), (1, 0));
        // Trailing byte exactly on a boundary stays in the leading line.
        assert_eq!(c.access_range(128, 64), (0, 1));
        assert_eq!(c.access_range(128, 65), (1, 1));
    }

    #[test]
    fn reset_stats_after_access_range_keeps_contents() {
        let mut c = tiny();
        // Warm lines 0..=2 through the range API, then reset the stats.
        assert_eq!(c.access_range(0, 129), (0, 3));
        c.reset_stats();
        assert_eq!((c.hits(), c.misses()), (0, 0));
        // The tags must survive the reset: the same range now fully hits,
        // and the counters restart from zero.
        assert_eq!(c.access_range(0, 129), (3, 0));
        assert_eq!((c.hits(), c.misses()), (3, 0));
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let mut c = tiny();
        c.access(0);
        c.reset_stats();
        assert_eq!((c.hits(), c.misses()), (0, 0));
        assert_eq!(c.access(0), Access::Hit); // still cached
    }

    #[test]
    fn capacity_matches_geometry() {
        assert_eq!(tiny().capacity_bytes(), 512);
        assert_eq!(CacheSim::xeon_llc().capacity_bytes(), 8 << 20);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_sets_rejected() {
        let _ = CacheSim::new(3 * 64 * 2, 64, 2);
    }
}

//! PCIe link and DMA engine cost model.
//!
//! The paper's machine connects the GTX 680 over PCIe Gen3 x16: 15.75 GB/s
//! theoretical, "difficult to exploit in practice" (§I). We model the link as
//! full-duplex bandwidth + per-transfer latency, and the GeForce-class single
//! copy engine as one pipeline resource shared by host-to-device and
//! device-to-host DMA. Two details the paper leans on:
//!
//! * the DMA engine requires **pinned** host memory (checked by callers via
//!   [`crate::hostmem::HostMemory::is_pinned`]);
//! * transfers complete **in order**, which is what lets BigKernel signal
//!   kernel threads by queueing a flag copy right after the data copy
//!   (§IV.C) — modelled as one extra small transfer.

use bk_simcore::{Bandwidth, SimTime};

/// Transfer direction over the link.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DmaDirection {
    HostToDevice,
    DeviceToHost,
}

/// The PCIe link + copy-engine cost model.
#[derive(Clone, Debug)]
pub struct PcieLink {
    /// Achievable DMA bandwidth host→device.
    pub bw_h2d: Bandwidth,
    /// Achievable DMA bandwidth device→host.
    pub bw_d2h: Bandwidth,
    /// Achievable bandwidth of GPU-thread stores directly into pinned host
    /// memory (zero-copy writes, used by the address-generation stage).
    /// Considerably lower than DMA bandwidth on real hardware.
    pub bw_zero_copy: Bandwidth,
    /// Per-DMA-transfer setup latency (driver + engine kickoff).
    pub latency: SimTime,
    /// Cost of the flag-copy completion signal (a minimal transfer).
    pub flag_latency: SimTime,
}

impl PcieLink {
    /// The paper's PCIe Gen3 x16 link. 15.75 GB/s theoretical; ~12 GB/s is a
    /// typical achievable pinned-memory DMA rate; zero-copy writes reach
    /// roughly half of that.
    pub fn gen3_x16() -> Self {
        PcieLink {
            bw_h2d: Bandwidth::gb_per_sec(12.0),
            bw_d2h: Bandwidth::gb_per_sec(12.0),
            bw_zero_copy: Bandwidth::gb_per_sec(6.0),
            latency: SimTime::from_micros(8.0),
            flag_latency: SimTime::from_micros(2.0),
        }
    }

    /// PCIe Gen2 x16 (8 GB/s theoretical, ~6 GB/s achievable) — the
    /// previous-generation link many of the paper's contemporaries used.
    pub fn gen2_x16() -> Self {
        PcieLink {
            bw_h2d: Bandwidth::gb_per_sec(6.0),
            bw_d2h: Bandwidth::gb_per_sec(6.0),
            bw_zero_copy: Bandwidth::gb_per_sec(3.0),
            latency: SimTime::from_micros(10.0),
            flag_latency: SimTime::from_micros(2.5),
        }
    }

    /// PCIe Gen1 x16 (~3 GB/s achievable): the starved end of the spectrum.
    pub fn gen1_x16() -> Self {
        PcieLink {
            bw_h2d: Bandwidth::gb_per_sec(3.0),
            bw_d2h: Bandwidth::gb_per_sec(3.0),
            bw_zero_copy: Bandwidth::gb_per_sec(1.5),
            latency: SimTime::from_micros(12.0),
            flag_latency: SimTime::from_micros(3.0),
        }
    }

    /// An NVLink-class interconnect (~40 GB/s effective): the hypothetical
    /// future where the paper's PCIe bottleneck is mostly gone.
    pub fn nvlink_class() -> Self {
        PcieLink {
            bw_h2d: Bandwidth::gb_per_sec(40.0),
            bw_d2h: Bandwidth::gb_per_sec(40.0),
            bw_zero_copy: Bandwidth::gb_per_sec(20.0),
            latency: SimTime::from_micros(2.0),
            flag_latency: SimTime::from_micros(0.5),
        }
    }

    /// A copy with every bandwidth scaled by `factor` (sensitivity sweeps).
    pub fn scaled_bandwidth(&self, factor: f64) -> Self {
        PcieLink {
            bw_h2d: self.bw_h2d.scale(factor),
            bw_d2h: self.bw_d2h.scale(factor),
            bw_zero_copy: self.bw_zero_copy.scale(factor),
            latency: self.latency,
            flag_latency: self.flag_latency,
        }
    }

    /// DMA transfer time for `bytes` in `dir` (latency + bandwidth), without
    /// the completion flag.
    pub fn dma_time(&self, dir: DmaDirection, bytes: u64) -> SimTime {
        let bw = match dir {
            DmaDirection::HostToDevice => self.bw_h2d,
            DmaDirection::DeviceToHost => self.bw_d2h,
        };
        if bytes == 0 {
            return SimTime::ZERO;
        }
        self.latency + bw.transfer_time(bytes)
    }

    /// DMA transfer followed by the in-order flag copy that signals the
    /// waiting kernel threads (paper §IV.C).
    pub fn dma_time_with_flag(&self, dir: DmaDirection, bytes: u64) -> SimTime {
        self.dma_time(dir, bytes) + self.flag_latency
    }

    /// Time for GPU threads to store `bytes` directly into pinned host
    /// memory (the address-buffer writes of pipeline stage 1).
    pub fn zero_copy_write_time(&self, bytes: u64) -> SimTime {
        self.bw_zero_copy.transfer_time(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn large_transfer_is_bandwidth_dominated() {
        let l = PcieLink::gen3_x16();
        let t = l.dma_time(DmaDirection::HostToDevice, 12_000_000_000);
        assert!((t.secs() - 1.0).abs() < 0.01, "{t}");
    }

    #[test]
    fn small_transfer_is_latency_dominated() {
        let l = PcieLink::gen3_x16();
        let t = l.dma_time(DmaDirection::DeviceToHost, 64);
        assert!(t >= l.latency);
        assert!(t.secs() < l.latency.secs() * 1.01);
    }

    #[test]
    fn zero_bytes_is_free() {
        let l = PcieLink::gen3_x16();
        assert_eq!(l.dma_time(DmaDirection::HostToDevice, 0), SimTime::ZERO);
    }

    #[test]
    fn flag_adds_fixed_cost() {
        let l = PcieLink::gen3_x16();
        let without = l.dma_time(DmaDirection::HostToDevice, 1 << 20);
        let with = l.dma_time_with_flag(DmaDirection::HostToDevice, 1 << 20);
        assert_eq!(with, without + l.flag_latency);
    }

    #[test]
    fn generations_are_ordered() {
        let g1 = PcieLink::gen1_x16();
        let g2 = PcieLink::gen2_x16();
        let g3 = PcieLink::gen3_x16();
        let nv = PcieLink::nvlink_class();
        let t = |l: &PcieLink| l.dma_time(DmaDirection::HostToDevice, 1 << 30);
        assert!(t(&g1) > t(&g2));
        assert!(t(&g2) > t(&g3));
        assert!(t(&g3) > t(&nv));
    }

    #[test]
    fn scaled_bandwidth_halves_rate() {
        let l = PcieLink::gen3_x16();
        let half = l.scaled_bandwidth(0.5);
        let bytes = 1u64 << 30;
        let t_full = l
            .dma_time(DmaDirection::HostToDevice, bytes)
            .saturating_sub(l.latency);
        let t_half = half
            .dma_time(DmaDirection::HostToDevice, bytes)
            .saturating_sub(l.latency);
        assert!((t_half.secs() / t_full.secs() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn zero_copy_slower_than_dma() {
        let l = PcieLink::gen3_x16();
        let bytes = 100 << 20;
        assert!(
            l.zero_copy_write_time(bytes)
                > l.dma_time(DmaDirection::DeviceToHost, bytes)
                    .saturating_sub(l.latency)
        );
    }
}

//! CPU cost model.
//!
//! Times CPU-side work with the same roofline philosophy as the GPU model:
//! a piece of work is characterized by instruction count, DRAM traffic and
//! cache-hit traffic; its duration is the max of the issue bound and the
//! memory-bandwidth bound, scaled by how many cores/threads execute it.
//!
//! The preset matches the paper's host: a 3.8 GHz Intel Xeon quad core E5
//! with 8 hardware threads, 10 MB LLC, quad-channel DDR3-1800.

use bk_simcore::{Bandwidth, Frequency, RooflineTerms, SimTime};

/// Static description of the simulated host CPU.
#[derive(Clone, Debug)]
pub struct CpuSpec {
    pub name: &'static str,
    pub cores: u32,
    /// Hardware threads (SMT contexts) available.
    pub hw_threads: u32,
    pub clock: Frequency,
    /// Sustained instructions per cycle per core for scalar streaming code.
    pub ipc: f64,
    /// Fraction of a core's throughput gained by running its second SMT
    /// thread (0.0 = SMT useless, 1.0 = perfect scaling).
    pub smt_yield: f64,
    /// Achievable DRAM bandwidth (all cores combined).
    pub mem_bandwidth: Bandwidth,
    pub cacheline_bytes: u64,
    /// Cost of an LLC hit, in core cycles.
    pub llc_hit_cycles: f64,
    /// Cost of an LLC miss (DRAM latency), nanoseconds.
    pub dram_latency_ns: f64,
}

impl CpuSpec {
    /// The paper's host machine.
    pub fn xeon_e5_quad() -> Self {
        CpuSpec {
            name: "Intel Xeon E5 quad-core, 3.8 GHz, 8 HT",
            cores: 4,
            hw_threads: 8,
            clock: Frequency::ghz(3.8),
            ipc: 2.0,
            smt_yield: 0.25,
            // Quad-channel DDR3-1800 ≈ 57.6 GB/s theoretical; ~65% achievable.
            mem_bandwidth: Bandwidth::gb_per_sec(57.6 * 0.65),
            cacheline_bytes: 64,
            llc_hit_cycles: 40.0,
            dram_latency_ns: 80.0,
        }
    }

    /// Effective core-equivalents when running `threads` software threads.
    pub fn effective_cores(&self, threads: u32) -> f64 {
        assert!(threads > 0, "need at least one thread");
        let threads = threads.min(self.hw_threads);
        let physical = threads.min(self.cores) as f64;
        let smt_extra = threads.saturating_sub(self.cores) as f64;
        physical + smt_extra * self.smt_yield
    }

    /// Aggregate instruction issue rate for `threads` software threads.
    pub fn issue_rate(&self, threads: u32) -> f64 {
        self.effective_cores(threads) * self.ipc * self.clock.as_hz()
    }
}

/// Accumulated cost of a piece of CPU work.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CpuCost {
    /// Dynamic instructions executed.
    pub instructions: u64,
    /// Bytes transferred to/from DRAM (cache misses x line, plus streaming
    /// stores).
    pub dram_bytes: u64,
    /// Number of accesses that hit in cache (charged `llc_hit_cycles`).
    pub cache_hits: u64,
    /// Number of accesses that missed (adds latency pressure; mostly the
    /// bandwidth term dominates, but a pointer-chasing gather with no
    /// locality becomes latency-bound).
    pub cache_misses: u64,
    /// Atomic read-modify-writes performed.
    pub atomic_ops: u64,
    /// Largest number of atomics aimed at one address: under multi-threaded
    /// execution these serialize through cache-line ping-pong.
    pub hot_atomic_chain: u64,
}

impl CpuCost {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn merge(&mut self, o: &CpuCost) {
        self.instructions += o.instructions;
        self.dram_bytes += o.dram_bytes;
        self.cache_hits += o.cache_hits;
        self.cache_misses += o.cache_misses;
        self.atomic_ops += o.atomic_ops;
        self.hot_atomic_chain += o.hot_atomic_chain;
    }

    /// Convenience: cost of a plain sequential copy/scan of `bytes`
    /// (`rw_factor` = 2 for copy: read + write; 1 for scan).
    pub fn streaming(bytes: u64, rw_factor: u64, instrs_per_8b: u64) -> CpuCost {
        CpuCost {
            instructions: bytes.div_ceil(8) * instrs_per_8b,
            dram_bytes: bytes * rw_factor,
            ..CpuCost::default()
        }
    }
}

/// Roofline terms for `cost` executed by `threads` software threads.
pub fn cpu_stage_terms(spec: &CpuSpec, cost: &CpuCost, threads: u32) -> RooflineTerms {
    let mut t = RooflineTerms::new();
    let issue = spec.issue_rate(threads)
        // cache hits cost extra cycles on the issuing core
        ;
    let hit_cycles = cost.cache_hits as f64 * spec.llc_hit_cycles;
    t.bound(
        "cpu-issue",
        SimTime::from_secs((cost.instructions as f64 + hit_cycles / spec.ipc) / issue),
    );
    t.bound(
        "cpu-dram-bw",
        spec.mem_bandwidth.transfer_time(cost.dram_bytes),
    );
    // Latency bound: misses overlap across threads and across ~10 in-flight
    // requests per core (MLP), but a pure dependent-gather can't hide all.
    let mlp = 10.0 * spec.effective_cores(threads);
    t.bound(
        "cpu-dram-latency",
        SimTime::from_nanos(cost.cache_misses as f64 * spec.dram_latency_ns / mlp),
    );
    if cost.atomic_ops > 0 {
        // Uncontended RMWs cost ~20 cycles on the owning core.
        t.bound(
            "cpu-atomic-throughput",
            spec.clock
                .cycles(cost.atomic_ops as f64 * 20.0 / spec.effective_cores(threads)),
        );
        if threads > 1 {
            // Contended RMWs to one address serialize via cache-line
            // ping-pong (~80 ns per hop) — the same hot-counter effect the
            // GPU model charges, minus the GPU's massive thread count.
            t.bound(
                "cpu-atomic-contention",
                SimTime::from_nanos(cost.hot_atomic_chain as f64 * 80.0),
            );
        }
    }
    t
}

/// Duration of `cost` on `threads` threads.
pub fn cpu_stage_time(spec: &CpuSpec, cost: &CpuCost, threads: u32) -> SimTime {
    cpu_stage_terms(spec, cost, threads).duration()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> CpuSpec {
        CpuSpec::xeon_e5_quad()
    }

    #[test]
    fn effective_cores_saturate() {
        let s = spec();
        assert_eq!(s.effective_cores(1), 1.0);
        assert_eq!(s.effective_cores(4), 4.0);
        assert!(s.effective_cores(8) > 4.0 && s.effective_cores(8) < 8.0);
        // More software threads than HW threads: no further gain.
        assert_eq!(s.effective_cores(64), s.effective_cores(8));
    }

    #[test]
    fn multithreading_speeds_up_compute_bound() {
        let s = spec();
        let c = CpuCost {
            instructions: 1 << 32,
            ..CpuCost::default()
        };
        let t1 = cpu_stage_time(&s, &c, 1);
        let t4 = cpu_stage_time(&s, &c, 4);
        assert!((t1.secs() / t4.secs() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn memory_bound_does_not_scale_with_threads() {
        let s = spec();
        let c = CpuCost {
            dram_bytes: 10 * (1 << 30),
            ..CpuCost::default()
        };
        let t1 = cpu_stage_time(&s, &c, 1);
        let t8 = cpu_stage_time(&s, &c, 8);
        assert_eq!(t1, t8);
    }

    #[test]
    fn streaming_cost_shape() {
        let scan = CpuCost::streaming(1024, 1, 2);
        assert_eq!(scan.dram_bytes, 1024);
        assert_eq!(scan.instructions, 256);
        let copy = CpuCost::streaming(1024, 2, 2);
        assert_eq!(copy.dram_bytes, 2048);
    }

    #[test]
    fn cache_hits_charge_issue_side() {
        let s = spec();
        let base = CpuCost {
            instructions: 1000,
            ..CpuCost::default()
        };
        let hot = CpuCost {
            instructions: 1000,
            cache_hits: 1_000_000,
            ..CpuCost::default()
        };
        assert!(cpu_stage_time(&s, &hot, 1) > cpu_stage_time(&s, &base, 1) * 100.0);
    }

    #[test]
    fn gather_latency_bound_visible() {
        let s = spec();
        // 10M dependent misses, almost no bandwidth (1 byte each... modelled
        // via cache_misses only).
        let c = CpuCost {
            cache_misses: 10_000_000,
            ..CpuCost::default()
        };
        let t = cpu_stage_time(&s, &c, 1);
        // 10M * 80ns / 10 = 80ms
        assert!((t.secs() - 0.08).abs() < 0.01, "{t}");
    }

    #[test]
    fn merge_accumulates() {
        let mut a = CpuCost {
            instructions: 1,
            dram_bytes: 2,
            cache_hits: 3,
            cache_misses: 4,
            atomic_ops: 5,
            hot_atomic_chain: 6,
        };
        a.merge(&a.clone());
        assert_eq!(
            a,
            CpuCost {
                instructions: 2,
                dram_bytes: 4,
                cache_hits: 6,
                cache_misses: 8,
                atomic_ops: 10,
                hot_atomic_chain: 12,
            }
        );
    }

    #[test]
    fn atomic_contention_only_hurts_multithreaded() {
        let s = spec();
        let c = CpuCost {
            atomic_ops: 100_000,
            hot_atomic_chain: 100_000,
            ..CpuCost::default()
        };
        let t1 = cpu_stage_time(&s, &c, 1);
        let t8 = cpu_stage_time(&s, &c, 8);
        // Single-threaded: ~20 cycles each. Multi-threaded: ping-pong bound
        // dominates and is WORSE than single-threaded throughput.
        assert!(t8 > t1, "contended MT {t8} should exceed serial {t1}");
        assert!((t8.nanos() - 100_000.0 * 80.0).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        spec().effective_cores(0);
    }
}

//! Roofline-style stage cost composition.
//!
//! Every stage duration in the model is the maximum of a small number of
//! bound terms (compute-bound, memory-bound, link-bound, ...) plus fixed
//! latency overheads that cannot be hidden. [`RooflineTerms`] accumulates the
//! terms with labels so that experiment output can explain *which* bound won
//! — that is how the harness reports "computation-dominant" vs
//! "communication-dominant" applications (paper Fig. 4(b)).

use crate::time::SimTime;

/// A named bound contributing to a stage's duration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BoundTerm {
    pub label: &'static str,
    pub time: SimTime,
}

/// Accumulates bound terms and fixed overheads for one stage execution.
#[derive(Clone, Debug, Default)]
pub struct RooflineTerms {
    bounds: Vec<BoundTerm>,
    fixed: SimTime,
}

impl RooflineTerms {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a throughput bound: the stage cannot finish faster than this.
    pub fn bound(&mut self, label: &'static str, time: SimTime) -> &mut Self {
        self.bounds.push(BoundTerm { label, time });
        self
    }

    /// Add un-hideable fixed latency (added on top of the max bound).
    pub fn fixed(&mut self, time: SimTime) -> &mut Self {
        self.fixed += time;
        self
    }

    /// The resulting duration: `max(bounds) + fixed`.
    pub fn duration(&self) -> SimTime {
        let max = self
            .bounds
            .iter()
            .map(|b| b.time)
            .fold(SimTime::ZERO, SimTime::max);
        max + self.fixed
    }

    /// The bound that determined the duration, if any bound was recorded.
    pub fn dominant(&self) -> Option<BoundTerm> {
        self.bounds.iter().copied().max_by_key(|b| b.time)
    }

    pub fn bounds(&self) -> &[BoundTerm] {
        &self.bounds
    }

    pub fn fixed_total(&self) -> SimTime {
        self.fixed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_roofline_is_zero() {
        let r = RooflineTerms::new();
        assert_eq!(r.duration(), SimTime::ZERO);
        assert!(r.dominant().is_none());
    }

    #[test]
    fn max_of_bounds_plus_fixed() {
        let mut r = RooflineTerms::new();
        r.bound("compute", SimTime::from_secs(2.0))
            .bound("memory", SimTime::from_secs(3.0))
            .fixed(SimTime::from_secs(0.5));
        assert_eq!(r.duration().secs(), 3.5);
        assert_eq!(r.dominant().unwrap().label, "memory");
    }

    #[test]
    fn fixed_overheads_accumulate() {
        let mut r = RooflineTerms::new();
        r.fixed(SimTime::from_secs(0.1))
            .fixed(SimTime::from_secs(0.2));
        assert!((r.duration().secs() - 0.3).abs() < 1e-12);
        assert!((r.fixed_total().secs() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn dominant_prefers_later_on_tie_is_still_a_max() {
        let mut r = RooflineTerms::new();
        r.bound("a", SimTime::from_secs(1.0))
            .bound("b", SimTime::from_secs(1.0));
        // max_by_key returns the last max — either label is acceptable; the
        // duration must be exactly the tied value.
        assert_eq!(r.duration().secs(), 1.0);
        assert!(r.dominant().is_some());
    }
}

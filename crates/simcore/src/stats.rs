//! Named event/byte counters.
//!
//! The simulators record what happened (bytes over PCIe, memory transactions,
//! cache hits/misses, atomics issued, ...) into a [`Counters`] map. The
//! experiment harness reads these to print Table I (% of mapped data read /
//! modified) and to explain figure shapes.

use std::collections::BTreeMap;
use std::fmt;

/// A set of named monotonically-increasing `u64` counters.
///
/// Uses a `BTreeMap` so iteration (and therefore printed output) is always in
/// deterministic name order.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Counters {
    values: BTreeMap<&'static str, u64>,
}

impl Counters {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta` to the named counter (creating it at zero first).
    ///
    /// Overflow is a modelling bug (counters track bytes/events of bounded
    /// simulations): debug builds assert, release builds saturate at
    /// `u64::MAX` instead of wrapping silently.
    #[inline]
    pub fn add(&mut self, name: &'static str, delta: u64) {
        let slot = self.values.entry(name).or_insert(0);
        match slot.checked_add(delta) {
            Some(v) => *slot = v,
            None => {
                debug_assert!(false, "counter `{name}` overflowed u64 adding {delta}");
                *slot = u64::MAX;
            }
        }
    }

    /// Increment the named counter by one.
    #[inline]
    pub fn incr(&mut self, name: &'static str) {
        self.add(name, 1);
    }

    /// Current value (zero if never touched).
    #[inline]
    pub fn get(&self, name: &str) -> u64 {
        self.values.get(name).copied().unwrap_or(0)
    }

    /// Merge another counter set into this one (summing shared names).
    pub fn merge(&mut self, other: &Counters) {
        for (&k, &v) in &other.values {
            self.add(k, v);
        }
    }

    /// Ratio of two counters, `0.0` when the denominator is zero.
    pub fn ratio(&self, num: &str, den: &str) -> f64 {
        let d = self.get(den);
        if d == 0 {
            0.0
        } else {
            self.get(num) as f64 / d as f64
        }
    }

    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.values.iter().map(|(&k, &v)| (k, v))
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

impl fmt::Display for Counters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, v) in self.iter() {
            writeln!(f, "{k:40} {v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_incr_get() {
        let mut c = Counters::new();
        assert_eq!(c.get("x"), 0);
        c.add("x", 5);
        c.incr("x");
        assert_eq!(c.get("x"), 6);
        assert_eq!(c.get("absent"), 0);
    }

    #[test]
    fn merge_sums_by_name() {
        let mut a = Counters::new();
        a.add("bytes", 10);
        a.add("only_a", 1);
        let mut b = Counters::new();
        b.add("bytes", 32);
        b.add("only_b", 2);
        a.merge(&b);
        assert_eq!(a.get("bytes"), 42);
        assert_eq!(a.get("only_a"), 1);
        assert_eq!(a.get("only_b"), 2);
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "overflowed"))]
    fn add_overflow_asserts_in_debug_and_saturates_in_release() {
        let mut c = Counters::new();
        c.add("x", u64::MAX - 1);
        c.add("x", 5);
        // Only reached in release builds, where the add saturates.
        assert_eq!(c.get("x"), u64::MAX);
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "overflowed"))]
    fn merge_saturates_shared_counters() {
        let mut a = Counters::new();
        a.add("bytes", u64::MAX - 1);
        let mut b = Counters::new();
        b.add("bytes", 10);
        b.add("other", 1);
        a.merge(&b);
        assert_eq!(a.get("bytes"), u64::MAX);
        assert_eq!(a.get("other"), 1);
    }

    #[test]
    fn ratio_handles_zero_denominator() {
        let mut c = Counters::new();
        c.add("hits", 3);
        assert_eq!(c.ratio("hits", "accesses"), 0.0);
        c.add("accesses", 4);
        assert!((c.ratio("hits", "accesses") - 0.75).abs() < 1e-12);
    }

    #[test]
    fn deterministic_iteration_order() {
        let mut c = Counters::new();
        c.add("zeta", 1);
        c.add("alpha", 2);
        c.add("mid", 3);
        let names: Vec<_> = c.iter().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["alpha", "mid", "zeta"]);
    }

    #[test]
    fn display_lists_all() {
        let mut c = Counters::new();
        c.add("a", 1);
        c.add("b", 2);
        let s = format!("{c}");
        assert!(s.contains('a') && s.contains('b'));
    }
}

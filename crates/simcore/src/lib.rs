//! # bk-simcore — simulation core for the BigKernel reproduction
//!
//! Shared infrastructure used by the GPU simulator (`bk-gpu`), the host
//! simulator (`bk-host`) and the BigKernel runtime (`bk-runtime`):
//!
//! * [`time`] — the simulated-time type ([`SimTime`]) and rate helpers
//!   ([`Bandwidth`], [`Frequency`]).
//! * [`roofline`] — throughput-model primitives: a stage's duration is the
//!   max over its compute-bound, memory-bound and fixed-latency terms.
//! * [`pipeline`] — a generic in-order pipeline scheduler with shared
//!   resources and buffer-reuse dependency edges; this is what turns
//!   per-chunk stage costs into overlapped (or serialized) schedules for
//!   BigKernel, double buffering and single buffering.
//! * [`stats`] — cheap named counters for bytes moved, transactions issued,
//!   cache hits, etc.
//! * [`rng`] — deterministic RNG (SplitMix64) and a Zipf sampler used by the
//!   synthetic data generators.

pub mod pipeline;
pub mod rng;
pub mod roofline;
pub mod stats;
pub mod time;

pub use pipeline::{
    PipelineSpec, ReuseEdge, Schedule, ScheduleView, SlotMeta, StageDef, StallKind,
};
pub use rng::{SplitMix64, Zipf};
pub use roofline::RooflineTerms;
pub use stats::Counters;
pub use time::{Bandwidth, Frequency, SimTime};

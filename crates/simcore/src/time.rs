//! Simulated time, bandwidth and frequency types.
//!
//! All simulated durations are carried as `f64` seconds inside a newtype.
//! `f64` arithmetic is deterministic for a fixed sequence of operations, and
//! the experiment harness only ever compares times produced by the same
//! model, so floating point is safe here and much more convenient than fixed
//! point when dividing bytes by bandwidths.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A span of simulated time (seconds). Always finite and non-negative.
#[derive(Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct SimTime(f64);

impl SimTime {
    pub const ZERO: SimTime = SimTime(0.0);

    /// Construct from seconds. Panics on NaN or negative input: a negative
    /// duration always indicates a modelling bug, never a valid state.
    #[inline]
    pub fn from_secs(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "SimTime must be finite and non-negative, got {secs}"
        );
        SimTime(secs)
    }

    #[inline]
    pub fn from_micros(us: f64) -> Self {
        Self::from_secs(us * 1e-6)
    }

    #[inline]
    pub fn from_nanos(ns: f64) -> Self {
        Self::from_secs(ns * 1e-9)
    }

    #[inline]
    pub fn secs(self) -> f64 {
        self.0
    }

    #[inline]
    pub fn micros(self) -> f64 {
        self.0 * 1e6
    }

    #[inline]
    pub fn nanos(self) -> f64 {
        self.0 * 1e9
    }

    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// Saturating subtraction: returns zero when `other > self`.
    #[inline]
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime((self.0 - other.0).max(0.0))
    }

    /// Ratio of two times; panics when `denom` is zero.
    #[inline]
    pub fn ratio(self, denom: SimTime) -> f64 {
        assert!(denom.0 > 0.0, "division by zero SimTime");
        self.0 / denom.0
    }

    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }
}

impl Eq for SimTime {}

// SimTime is guaranteed non-NaN by construction, so a total order exists.
#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.partial_cmp(&other.0).expect("SimTime is never NaN")
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    /// Panics if the result would be negative (modelling bug); use
    /// [`SimTime::saturating_sub`] when slack may legitimately be negative.
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime::from_secs(self.0 - rhs.0)
    }
}

impl Mul<f64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn mul(self, rhs: f64) -> SimTime {
        SimTime::from_secs(self.0 * rhs)
    }
}

impl Div<f64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn div(self, rhs: f64) -> SimTime {
        SimTime::from_secs(self.0 / rhs)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.0;
        if s >= 1.0 {
            write!(f, "{s:.3}s")
        } else if s >= 1e-3 {
            write!(f, "{:.3}ms", s * 1e3)
        } else if s >= 1e-6 {
            write!(f, "{:.3}us", s * 1e6)
        } else {
            write!(f, "{:.1}ns", s * 1e9)
        }
    }
}

/// Data rate in bytes per second.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Bandwidth(f64);

impl Bandwidth {
    #[inline]
    pub fn bytes_per_sec(bps: f64) -> Self {
        assert!(bps.is_finite() && bps > 0.0, "bandwidth must be positive");
        Bandwidth(bps)
    }

    #[inline]
    pub fn gib_per_sec(gib: f64) -> Self {
        Self::bytes_per_sec(gib * (1u64 << 30) as f64)
    }

    #[inline]
    pub fn gb_per_sec(gb: f64) -> Self {
        Self::bytes_per_sec(gb * 1e9)
    }

    #[inline]
    pub fn as_bytes_per_sec(self) -> f64 {
        self.0
    }

    /// Time to move `bytes` at this rate (no latency term).
    #[inline]
    pub fn transfer_time(self, bytes: u64) -> SimTime {
        SimTime::from_secs(bytes as f64 / self.0)
    }

    /// Scale the bandwidth, e.g. to model efficiency factors or sharing.
    #[inline]
    pub fn scale(self, factor: f64) -> Bandwidth {
        Bandwidth::bytes_per_sec(self.0 * factor)
    }
}

/// Clock frequency in Hz.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Frequency(f64);

impl Frequency {
    #[inline]
    pub fn hz(hz: f64) -> Self {
        assert!(hz.is_finite() && hz > 0.0, "frequency must be positive");
        Frequency(hz)
    }

    #[inline]
    pub fn mhz(mhz: f64) -> Self {
        Self::hz(mhz * 1e6)
    }

    #[inline]
    pub fn ghz(ghz: f64) -> Self {
        Self::hz(ghz * 1e9)
    }

    #[inline]
    pub fn as_hz(self) -> f64 {
        self.0
    }

    /// Duration of `cycles` clock cycles.
    #[inline]
    pub fn cycles(self, cycles: f64) -> SimTime {
        assert!(cycles >= 0.0, "negative cycle count");
        SimTime::from_secs(cycles / self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simtime_construction_and_accessors() {
        let t = SimTime::from_micros(2.5);
        assert!((t.secs() - 2.5e-6).abs() < 1e-18);
        assert!((t.nanos() - 2500.0).abs() < 1e-9);
        assert!((t.micros() - 2.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn simtime_rejects_negative() {
        let _ = SimTime::from_secs(-1.0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn simtime_rejects_nan() {
        let _ = SimTime::from_secs(f64::NAN);
    }

    #[test]
    fn simtime_arithmetic() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(0.25);
        assert_eq!((a + b).secs(), 1.25);
        assert_eq!((a - b).secs(), 0.75);
        assert_eq!((a * 2.0).secs(), 2.0);
        assert_eq!((a / 4.0).secs(), 0.25);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        assert_eq!(a.ratio(b), 4.0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn simtime_sub_panics_on_underflow() {
        let _ = SimTime::from_secs(1.0) - SimTime::from_secs(2.0);
    }

    #[test]
    fn simtime_sum_and_ordering() {
        let total: SimTime = (1..=4).map(|i| SimTime::from_secs(i as f64)).sum();
        assert_eq!(total.secs(), 10.0);
        let mut v = [
            SimTime::from_secs(3.0),
            SimTime::ZERO,
            SimTime::from_secs(1.0),
        ];
        v.sort();
        assert_eq!(v[0], SimTime::ZERO);
        assert_eq!(v[2].secs(), 3.0);
    }

    #[test]
    fn simtime_display_units() {
        assert_eq!(format!("{}", SimTime::from_secs(1.5)), "1.500s");
        assert_eq!(format!("{}", SimTime::from_secs(1.5e-3)), "1.500ms");
        assert_eq!(format!("{}", SimTime::from_secs(1.5e-6)), "1.500us");
        assert_eq!(format!("{}", SimTime::from_secs(1.5e-9)), "1.5ns");
    }

    #[test]
    fn bandwidth_transfer_time() {
        let bw = Bandwidth::gb_per_sec(10.0);
        let t = bw.transfer_time(10_000_000_000);
        assert!((t.secs() - 1.0).abs() < 1e-12);
        let half = bw.scale(0.5);
        assert!((half.transfer_time(10_000_000_000).secs() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn bandwidth_gib_vs_gb() {
        assert!(
            Bandwidth::gib_per_sec(1.0).as_bytes_per_sec()
                > Bandwidth::gb_per_sec(1.0).as_bytes_per_sec()
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn bandwidth_rejects_zero() {
        let _ = Bandwidth::bytes_per_sec(0.0);
    }

    #[test]
    fn frequency_cycles() {
        let f = Frequency::ghz(1.0);
        assert!((f.cycles(1e9).secs() - 1.0).abs() < 1e-12);
        assert_eq!(Frequency::mhz(1000.0).as_hz(), Frequency::ghz(1.0).as_hz());
    }

    #[test]
    #[should_panic(expected = "negative cycle count")]
    fn frequency_rejects_negative_cycles() {
        let _ = Frequency::ghz(1.0).cycles(-1.0);
    }
}

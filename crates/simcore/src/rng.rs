//! Deterministic random number generation for the synthetic data generators.
//!
//! The paper's datasets (tweets, credit-card transactions, Netflix ratings,
//! DNA reads) are proprietary; our generators must be reproducible across
//! runs and platforms so that every implementation variant processes
//! byte-identical inputs. SplitMix64 is tiny, fast, and has well-understood
//! statistical quality for this purpose; the Zipf sampler drives realistic
//! word/merchant frequency skew.

/// SplitMix64 PRNG (public-domain algorithm by Sebastiano Vigna).
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`. Panics when `bound == 0`.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Lemire's multiply-shift rejection-free approximation is fine here;
        // bias is < 2^-32 for the bounds we use (all << 2^32).
        ((self.next_u64() >> 32).wrapping_mul(bound)) >> 32
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in the inclusive integer range `[lo, hi]`.
    #[inline]
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        lo + self.next_below(hi - lo + 1)
    }

    /// Fill a byte slice with pseudo-random bytes.
    pub fn fill_bytes(&mut self, out: &mut [u8]) {
        let mut chunks = out.chunks_exact_mut(8);
        for c in &mut chunks {
            c.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Zipf-distributed sampler over ranks `0..n` with exponent `s`.
///
/// Uses a precomputed CDF and binary search: O(n) memory, O(log n) per
/// sample, exact for the table sizes we need (vocabulary sizes in the tens of
/// thousands).
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf over empty support");
        assert!(s >= 0.0 && s.is_finite(), "invalid Zipf exponent");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Sample a rank in `0..n` (rank 0 is the most frequent).
    #[inline]
    pub fn sample(&self, rng: &mut SplitMix64) -> usize {
        let u = rng.next_f64();
        // partition_point: first index whose cdf >= u
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    pub fn support(&self) -> usize {
        self.cdf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn next_below_in_range() {
        let mut r = SplitMix64::new(7);
        for _ in 0..10_000 {
            assert!(r.next_below(13) < 13);
        }
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = SplitMix64::new(9);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_inclusive_hits_endpoints() {
        let mut r = SplitMix64::new(3);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..10_000 {
            match r.range_inclusive(5, 7) {
                5 => saw_lo = true,
                7 => saw_hi = true,
                6 => {}
                other => panic!("out of range: {other}"),
            }
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut r = SplitMix64::new(11);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        // Extremely unlikely that all 13 bytes stay zero.
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn zipf_rank_zero_most_frequent() {
        let z = Zipf::new(1000, 1.0);
        let mut r = SplitMix64::new(5);
        let mut counts = vec![0u32; 1000];
        for _ in 0..100_000 {
            counts[z.sample(&mut r)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[500]);
    }

    #[test]
    fn zipf_uniform_when_s_zero() {
        let z = Zipf::new(4, 0.0);
        let mut r = SplitMix64::new(17);
        let mut counts = vec![0u32; 4];
        for _ in 0..40_000 {
            counts[z.sample(&mut r)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn zipf_samples_in_support() {
        let z = Zipf::new(3, 1.2);
        let mut r = SplitMix64::new(23);
        for _ in 0..1000 {
            assert!(z.sample(&mut r) < 3);
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        SplitMix64::new(0).next_below(0);
    }

    #[test]
    #[should_panic(expected = "empty support")]
    fn zipf_empty_support_panics() {
        let _ = Zipf::new(0, 1.0);
    }
}

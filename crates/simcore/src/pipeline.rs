//! Generic in-order pipeline scheduler.
//!
//! BigKernel's execution is a software pipeline over *chunks* of the streamed
//! data: address generation (GPU), data assembly (CPU), data transfer (DMA),
//! computation (GPU), plus two optional write-back stages. The baselines are
//! shallower pipelines over the same chunks (single buffering is a pipeline
//! with no overlap at all). This module computes, given per-chunk per-stage
//! durations, when each stage instance starts and finishes, subject to:
//!
//! 1. **Dataflow**: stage `s` of chunk `i` starts after stage `s-1` of chunk
//!    `i` finishes.
//! 2. **Resource exclusivity**: stages mapped to the same resource (e.g. the
//!    one DMA engine, or the CPU assembly thread) serialize; chunks are
//!    issued in order per resource.
//! 3. **Buffer reuse**: a [`ReuseEdge`] `(producer, consumer, depth)` says
//!    stage `producer` of chunk `i` may not *start* before stage `consumer`
//!    of chunk `i - depth` has finished — this encodes the paper's rule that
//!    address generation of iteration `n` synchronizes with the computation
//!    threads of iteration `n - 3` (§IV.C), i.e. triple buffering.
//!
//! The schedule is computed by forward list scheduling in (chunk, stage)
//! order, which is exact for in-order pipelines of this shape.

use crate::time::SimTime;
use std::collections::HashMap;

/// Identifies a hardware resource that serializes the stages mapped to it.
pub type ResourceId = &'static str;

/// Static description of one pipeline stage.
#[derive(Clone, Debug)]
pub struct StageDef {
    /// Human-readable stage name (appears in breakdowns and figures).
    pub name: &'static str,
    /// Resource this stage occupies for its whole duration.
    pub resource: ResourceId,
}

/// Buffer-reuse dependency: `producer` of chunk `i` waits for `consumer` of
/// chunk `i - depth`.
#[derive(Clone, Copy, Debug)]
pub struct ReuseEdge {
    pub producer: usize,
    pub consumer: usize,
    pub depth: usize,
}

/// Static pipeline description.
#[derive(Clone, Debug)]
pub struct PipelineSpec {
    pub stages: Vec<StageDef>,
    pub reuse: Vec<ReuseEdge>,
}

impl PipelineSpec {
    pub fn new(stages: Vec<StageDef>) -> Self {
        PipelineSpec {
            stages,
            reuse: Vec::new(),
        }
    }

    /// Add a buffer-reuse edge. Panics if stage indices are out of range or
    /// the depth is zero (a zero-depth edge would deadlock the chunk on
    /// itself).
    pub fn with_reuse(mut self, producer: usize, consumer: usize, depth: usize) -> Self {
        assert!(producer < self.stages.len(), "producer index out of range");
        assert!(consumer < self.stages.len(), "consumer index out of range");
        assert!(depth > 0, "reuse depth must be >= 1");
        self.reuse.push(ReuseEdge {
            producer,
            consumer,
            depth,
        });
        self
    }

    pub fn num_stages(&self) -> usize {
        self.stages.len()
    }
}

/// One scheduled stage instance.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Slot {
    pub start: SimTime,
    pub finish: SimTime,
}

impl Slot {
    pub fn duration(&self) -> SimTime {
        self.finish.saturating_sub(self.start)
    }
}

/// The scheduling constraint that delayed a slot past its dataflow-ready
/// time (the finish of the previous stage of the same chunk).
///
/// A slot's start is `max(dataflow, resource, reuse)`; when the winner is
/// not the dataflow edge, the slot *stalled* — the pipeline itself (not the
/// chunk's own critical path) held it back. That gap is what the paper's
/// §IV.C synchronization machinery (flags over PCIe, `bar.red` barriers)
/// spends its time waiting on, so attributing it is the core of the
/// observability layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StallKind {
    /// Waiting for the stage's resource (DMA engine, CPU assembly thread,
    /// GPU queue...) to drain earlier chunks — in-order issue contention.
    Resource(ResourceId),
    /// Waiting on a buffer-reuse edge: the named consumer stage of chunk
    /// `i - depth` had not released the buffer (the `addr-gen(n)` waits for
    /// `compute(n-3)` rule, implemented by flag signalling in the paper).
    Reuse {
        /// Consumer stage index of the winning [`ReuseEdge`].
        consumer: usize,
    },
}

/// Stall attribution for one slot: why it started late and by how much.
/// `kind` is `None` exactly when the slot started the moment its dataflow
/// predecessor finished (no inter-stage gap).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SlotMeta {
    pub kind: Option<StallKind>,
    /// Gap between the dataflow-ready time and the actual start.
    pub stall: SimTime,
}

/// The computed schedule.
#[derive(Clone, Debug)]
pub struct Schedule {
    stage_names: Vec<&'static str>,
    resources: Vec<ResourceId>,
    /// `slots[chunk][stage]`
    slots: Vec<Vec<Slot>>,
    /// `meta[chunk][stage]`, parallel to `slots`.
    meta: Vec<Vec<SlotMeta>>,
    makespan: SimTime,
}

impl Schedule {
    /// Total time from the first stage start (t=0) to the last finish.
    pub fn makespan(&self) -> SimTime {
        self.makespan
    }

    pub fn num_chunks(&self) -> usize {
        self.slots.len()
    }

    pub fn num_stages(&self) -> usize {
        self.stage_names.len()
    }

    pub fn slot(&self, chunk: usize, stage: usize) -> Slot {
        self.slots[chunk][stage]
    }

    pub fn stage_name(&self, stage: usize) -> &'static str {
        self.stage_names[stage]
    }

    /// Resource the stage was mapped to (one trace track per resource).
    pub fn stage_resource(&self, stage: usize) -> ResourceId {
        self.resources[stage]
    }

    /// Stall attribution for one slot (see [`SlotMeta`]).
    pub fn slot_meta(&self, chunk: usize, stage: usize) -> SlotMeta {
        self.meta[chunk][stage]
    }

    /// Total busy time of a stage across all chunks.
    pub fn stage_busy(&self, stage: usize) -> SimTime {
        self.slots.iter().map(|c| c[stage].duration()).sum()
    }

    /// Mean duration of one instance of the stage.
    pub fn stage_mean(&self, stage: usize) -> SimTime {
        if self.slots.is_empty() {
            return SimTime::ZERO;
        }
        self.stage_busy(stage) / self.slots.len() as f64
    }

    /// Per-stage busy time relative to the busiest stage, in `[0, 1]`.
    /// This reproduces the shape of the paper's Fig. 6 ("relative completion
    /// time of each BigKernel stage").
    pub fn relative_stage_times(&self) -> Vec<(&'static str, f64)> {
        let busy: Vec<SimTime> = (0..self.num_stages()).map(|s| self.stage_busy(s)).collect();
        let max = busy.iter().copied().fold(SimTime::ZERO, SimTime::max);
        self.stage_names
            .iter()
            .zip(&busy)
            .map(|(&n, &b)| {
                let rel = if max.is_zero() { 0.0 } else { b.ratio(max) };
                (n, rel)
            })
            .collect()
    }

    /// Fraction of the makespan during which the given stage was executing.
    pub fn stage_utilization(&self, stage: usize) -> f64 {
        if self.makespan.is_zero() {
            return 0.0;
        }
        self.stage_busy(stage).ratio(self.makespan)
    }
}

/// Read-only view of a computed schedule: the accessor surface shared by
/// [`Schedule`] and any other scheduler producing the same slot/meta shape
/// (e.g. the stage-graph executor in `bk-runtime`). Observability and
/// stage-stat accumulation are written against this trait, so every
/// scheduler feeds the same spans, stall counters and reports.
pub trait ScheduleView {
    fn num_chunks(&self) -> usize;
    fn num_stages(&self) -> usize;
    fn slot(&self, chunk: usize, stage: usize) -> Slot;
    fn stage_name(&self, stage: usize) -> &'static str;
    /// Resource the stage was mapped to (one trace track per resource).
    fn stage_resource(&self, stage: usize) -> ResourceId;
    fn slot_meta(&self, chunk: usize, stage: usize) -> SlotMeta;
    /// Total time from the first stage start (t=0) to the last finish.
    fn makespan(&self) -> SimTime;

    /// Total busy time of a stage across all chunks.
    fn stage_busy(&self, stage: usize) -> SimTime {
        (0..self.num_chunks())
            .map(|c| self.slot(c, stage).duration())
            .sum()
    }
}

impl ScheduleView for Schedule {
    fn num_chunks(&self) -> usize {
        Schedule::num_chunks(self)
    }
    fn num_stages(&self) -> usize {
        Schedule::num_stages(self)
    }
    fn slot(&self, chunk: usize, stage: usize) -> Slot {
        Schedule::slot(self, chunk, stage)
    }
    fn stage_name(&self, stage: usize) -> &'static str {
        Schedule::stage_name(self, stage)
    }
    fn stage_resource(&self, stage: usize) -> ResourceId {
        Schedule::stage_resource(self, stage)
    }
    fn slot_meta(&self, chunk: usize, stage: usize) -> SlotMeta {
        Schedule::slot_meta(self, chunk, stage)
    }
    fn makespan(&self) -> SimTime {
        Schedule::makespan(self)
    }
    fn stage_busy(&self, stage: usize) -> SimTime {
        Schedule::stage_busy(self, stage)
    }
}

/// Compute the schedule for `durations[chunk][stage]`.
///
/// ```
/// use bk_simcore::{pipeline, SimTime, StageDef};
///
/// // Two stages on separate resources: transfers overlap computation.
/// let spec = pipeline::PipelineSpec::new(vec![
///     StageDef { name: "xfer", resource: "dma" },
///     StageDef { name: "comp", resource: "gpu" },
/// ]);
/// let per_chunk = vec![SimTime::from_micros(10.0), SimTime::from_micros(10.0)];
/// let s = pipeline::schedule(&spec, &vec![per_chunk; 4]);
/// // Fill (10us) + 4 overlapped chunks (40us):
/// assert!((s.makespan().micros() - 50.0).abs() < 1e-9);
/// ```
///
/// Panics if any chunk row has a different number of stages than the spec.
pub fn schedule(spec: &PipelineSpec, durations: &[Vec<SimTime>]) -> Schedule {
    let ns = spec.num_stages();
    for (i, row) in durations.iter().enumerate() {
        assert_eq!(
            row.len(),
            ns,
            "chunk {i} has wrong number of stage durations"
        );
    }

    let mut resource_free: HashMap<ResourceId, SimTime> = HashMap::new();
    let mut slots: Vec<Vec<Slot>> = Vec::with_capacity(durations.len());
    let mut meta: Vec<Vec<SlotMeta>> = Vec::with_capacity(durations.len());

    for (chunk, row) in durations.iter().enumerate() {
        let mut chunk_slots: Vec<Slot> = Vec::with_capacity(ns);
        let mut chunk_meta: Vec<SlotMeta> = Vec::with_capacity(ns);
        for (stage, &dur) in row.iter().enumerate() {
            let mut start = SimTime::ZERO;
            // 1. dataflow within the chunk
            let dataflow = if stage > 0 {
                chunk_slots[stage - 1].finish
            } else {
                SimTime::ZERO
            };
            start = start.max(dataflow);
            // 2. resource availability (in-order issue). Zero-duration
            // stages are no-ops: they neither wait for nor occupy their
            // resource (an absent write-back must not delay the DMA engine).
            let res = spec.stages[stage].resource;
            let mut res_ready = SimTime::ZERO;
            if !dur.is_zero() {
                if let Some(&free) = resource_free.get(res) {
                    res_ready = free;
                    start = start.max(free);
                }
            }
            // 3. buffer-reuse edges
            let mut reuse_ready = SimTime::ZERO;
            let mut reuse_consumer = 0usize;
            for e in &spec.reuse {
                if e.producer == stage && chunk >= e.depth {
                    let prev: &Vec<Slot> = &slots[chunk - e.depth];
                    let ready = prev[e.consumer].finish;
                    if ready >= reuse_ready {
                        reuse_ready = ready;
                        reuse_consumer = e.consumer;
                    }
                    start = start.max(ready);
                }
            }
            // Attribute the inter-stage gap (start − dataflow) to whichever
            // constraint won. On a tie the reuse edge takes precedence over
            // plain resource contention: the reuse wait is the one the
            // runtime pays synchronization costs for, so it is the more
            // actionable label.
            let stalled = start.saturating_sub(dataflow);
            let kind = if stalled.is_zero() {
                None
            } else if reuse_ready >= res_ready {
                Some(StallKind::Reuse {
                    consumer: reuse_consumer,
                })
            } else {
                Some(StallKind::Resource(res))
            };
            let finish = start + dur;
            if !dur.is_zero() {
                resource_free.insert(res, finish);
            }
            chunk_slots.push(Slot { start, finish });
            chunk_meta.push(SlotMeta {
                kind,
                stall: stalled,
            });
        }
        slots.push(chunk_slots);
        meta.push(chunk_meta);
    }

    let makespan = slots
        .iter()
        .flat_map(|c| c.iter().map(|s| s.finish))
        .fold(SimTime::ZERO, SimTime::max);

    Schedule {
        stage_names: spec.stages.iter().map(|s| s.name).collect(),
        resources: spec.stages.iter().map(|s| s.resource).collect(),
        slots,
        meta,
        makespan,
    }
}

/// Convenience: a fully serialized "pipeline" — every stage of every chunk on
/// one shared resource in order (this models the single-buffer baseline).
pub fn serialize_all(names: &[&'static str], durations: &[Vec<SimTime>]) -> Schedule {
    let spec = PipelineSpec::new(
        names
            .iter()
            .map(|&n| StageDef {
                name: n,
                resource: "serial",
            })
            .collect(),
    );
    schedule(&spec, durations)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn two_stage_spec() -> PipelineSpec {
        PipelineSpec::new(vec![
            StageDef {
                name: "xfer",
                resource: "dma",
            },
            StageDef {
                name: "comp",
                resource: "gpu",
            },
        ])
    }

    #[test]
    fn single_chunk_is_sum_of_stages() {
        let s = schedule(&two_stage_spec(), &[vec![t(1.0), t(2.0)]]);
        assert_eq!(s.makespan().secs(), 3.0);
        assert_eq!(s.slot(0, 1).start.secs(), 1.0);
    }

    #[test]
    fn perfect_overlap_two_stages() {
        // 4 chunks, xfer=1, comp=1 → makespan = 1 (fill) + 4*1 = 5
        let d = vec![vec![t(1.0), t(1.0)]; 4];
        let s = schedule(&two_stage_spec(), &d);
        assert!((s.makespan().secs() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn bottleneck_stage_dominates() {
        // comp=2 dominates: makespan = xfer_0 + 4*comp = 1 + 8 = 9
        let d = vec![vec![t(1.0), t(2.0)]; 4];
        let s = schedule(&two_stage_spec(), &d);
        assert!((s.makespan().secs() - 9.0).abs() < 1e-12);
        assert_eq!(s.stage_busy(1).secs(), 8.0);
    }

    #[test]
    fn serialized_schedule_is_sum() {
        let d = vec![vec![t(1.0), t(2.0)]; 4];
        let s = serialize_all(&["xfer", "comp"], &d);
        assert!((s.makespan().secs() - 12.0).abs() < 1e-12);
    }

    #[test]
    fn reuse_edge_limits_lookahead() {
        // Stage 0 is instantaneous, stage 1 takes 1s. With depth-1 reuse
        // (single buffering of the intermediate), stage 0 of chunk i waits
        // for stage 1 of chunk i-1, so chunk starts are 1s apart.
        let spec = two_stage_spec().with_reuse(0, 1, 1);
        let d = vec![vec![t(0.0), t(1.0)]; 3];
        let s = schedule(&spec, &d);
        assert!((s.slot(2, 0).start.secs() - 2.0).abs() < 1e-12);
        assert!((s.makespan().secs() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn deeper_reuse_allows_more_inflight() {
        let d = vec![vec![t(0.1), t(1.0)]; 6];
        let shallow = schedule(&two_stage_spec().clone().with_reuse(0, 1, 1), &d);
        let deep = schedule(&two_stage_spec().with_reuse(0, 1, 3), &d);
        assert!(deep.makespan() <= shallow.makespan());
    }

    #[test]
    fn resource_sharing_serializes_stages() {
        // Both stages on the same resource → no overlap even across chunks.
        let spec = PipelineSpec::new(vec![
            StageDef {
                name: "a",
                resource: "r",
            },
            StageDef {
                name: "b",
                resource: "r",
            },
        ]);
        let d = vec![vec![t(1.0), t(1.0)]; 3];
        let s = schedule(&spec, &d);
        assert!((s.makespan().secs() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn four_stage_bigkernel_shape() {
        // addr-gen / assemble / xfer / compute on distinct resources with the
        // paper's depth-3 reuse: steady state throughput = max stage time.
        let spec = PipelineSpec::new(vec![
            StageDef {
                name: "addrgen",
                resource: "gpu_ag",
            },
            StageDef {
                name: "assemble",
                resource: "cpu",
            },
            StageDef {
                name: "xfer",
                resource: "dma",
            },
            StageDef {
                name: "compute",
                resource: "gpu_c",
            },
        ])
        .with_reuse(0, 3, 3);
        let n = 50;
        let d = vec![vec![t(0.2), t(0.5), t(0.4), t(1.0)]; n];
        let s = schedule(&spec, &d);
        // Steady state: one chunk per 1.0s (compute-bound); fill = 0.2+0.5+0.4.
        let expect = 0.2 + 0.5 + 0.4 + n as f64 * 1.0;
        assert!(
            (s.makespan().secs() - expect).abs() < 1e-9,
            "{}",
            s.makespan()
        );
        let rel = s.relative_stage_times();
        assert_eq!(rel[3].1, 1.0);
        assert!((rel[0].1 - 0.2).abs() < 1e-12);
    }

    #[test]
    fn relative_times_of_empty_schedule() {
        let s = schedule(&two_stage_spec(), &[]);
        assert_eq!(s.makespan(), SimTime::ZERO);
        for (_, r) in s.relative_stage_times() {
            assert_eq!(r, 0.0);
        }
    }

    #[test]
    fn utilization_bounded_by_one() {
        let d = vec![vec![t(1.0), t(2.0)]; 4];
        let s = schedule(&two_stage_spec(), &d);
        for st in 0..2 {
            let u = s.stage_utilization(st);
            assert!((0.0..=1.0).contains(&u), "{u}");
        }
    }

    #[test]
    #[should_panic(expected = "reuse depth")]
    fn zero_depth_reuse_rejected() {
        let _ = two_stage_spec().with_reuse(0, 1, 0);
    }

    #[test]
    #[should_panic(expected = "wrong number of stage durations")]
    fn mismatched_durations_rejected() {
        let _ = schedule(&two_stage_spec(), &[vec![t(1.0)]]);
    }

    #[test]
    fn zero_duration_stage_does_not_occupy_resource() {
        // 3 stages; the middle "write-back" stage shares the dma resource
        // with stage 0 but has zero duration — it must not delay stage 0 of
        // later chunks.
        let spec = PipelineSpec::new(vec![
            StageDef {
                name: "xfer",
                resource: "dma",
            },
            StageDef {
                name: "comp",
                resource: "gpu",
            },
            StageDef {
                name: "wb",
                resource: "dma",
            },
        ]);
        let d = vec![vec![t(1.0), t(5.0), t(0.0)]; 3];
        let s = schedule(&spec, &d);
        // xfer fully overlaps compute: makespan = 1 + 3*5.
        assert!(
            (s.makespan().secs() - 16.0).abs() < 1e-9,
            "{}",
            s.makespan()
        );
    }

    #[test]
    fn stall_attribution_blames_the_resource_queue() {
        // Both stages on one resource: stage "b" of chunk 0 waits for "a" of
        // chunk 0 via dataflow (no stall), but "a" of chunk 1 waits for the
        // shared resource to drain "b" of chunk 0.
        let spec = PipelineSpec::new(vec![
            StageDef {
                name: "a",
                resource: "r",
            },
            StageDef {
                name: "b",
                resource: "r",
            },
        ]);
        let s = schedule(&spec, &vec![vec![t(1.0), t(1.0)]; 2]);
        assert_eq!(s.slot_meta(0, 0).kind, None);
        assert_eq!(
            s.slot_meta(0, 1).kind,
            None,
            "dataflow waits are not stalls"
        );
        let m = s.slot_meta(1, 0);
        assert_eq!(m.kind, Some(StallKind::Resource("r")));
        assert!((m.stall.secs() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn stall_attribution_blames_the_reuse_edge() {
        // Stage 0 is instantaneous and unconstrained except for the depth-1
        // reuse edge on stage 1: every chunk past the first stalls on reuse.
        let spec = two_stage_spec().with_reuse(0, 1, 1);
        let s = schedule(&spec, &vec![vec![t(0.1), t(1.0)]; 3]);
        assert_eq!(s.slot_meta(0, 0).kind, None);
        let m = s.slot_meta(1, 0);
        assert_eq!(m.kind, Some(StallKind::Reuse { consumer: 1 }));
        assert!(m.stall > SimTime::ZERO);
        assert_eq!(s.stage_resource(0), "dma");
        assert_eq!(s.stage_resource(1), "gpu");
    }

    #[test]
    fn stall_gap_equals_start_minus_dataflow_ready() {
        // Every positive inter-stage gap must carry a cause, and the gap
        // must equal start − previous-stage finish exactly.
        let spec = two_stage_spec().with_reuse(0, 1, 2);
        let s = schedule(&spec, &vec![vec![t(0.3), t(1.0)]; 8]);
        for c in 0..s.num_chunks() {
            for st in 0..s.num_stages() {
                let m = s.slot_meta(c, st);
                let df = if st > 0 {
                    s.slot(c, st - 1).finish
                } else {
                    SimTime::ZERO
                };
                let gap = s.slot(c, st).start.saturating_sub(df);
                assert_eq!(m.stall, gap);
                assert_eq!(m.kind.is_some(), !gap.is_zero(), "chunk {c} stage {st}");
            }
        }
    }

    #[test]
    fn stage_mean_matches_inputs() {
        let d = vec![vec![t(1.0), t(3.0)], vec![t(3.0), t(1.0)]];
        let s = schedule(&two_stage_spec(), &d);
        assert!((s.stage_mean(0).secs() - 2.0).abs() < 1e-12);
        assert!((s.stage_mean(1).secs() - 2.0).abs() < 1e-12);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::time::SimTime;
    use proptest::prelude::*;

    fn arb_durations(max_chunks: usize, stages: usize) -> impl Strategy<Value = Vec<Vec<SimTime>>> {
        proptest::collection::vec(
            proptest::collection::vec(0u32..1000, stages).prop_map(|row| {
                row.into_iter()
                    .map(|d| SimTime::from_micros(d as f64))
                    .collect()
            }),
            1..max_chunks,
        )
    }

    fn bigkernel_spec(depth: usize) -> PipelineSpec {
        PipelineSpec::new(vec![
            StageDef {
                name: "ag",
                resource: "gpu-ag",
            },
            StageDef {
                name: "asm",
                resource: "cpu",
            },
            StageDef {
                name: "xfer",
                resource: "dma",
            },
            StageDef {
                name: "comp",
                resource: "gpu",
            },
        ])
        .with_reuse(0, 3, depth)
    }

    proptest! {
        /// Makespan is bounded below by every stage's busy time and by any
        /// single chunk's critical path, and above by full serialization.
        #[test]
        fn makespan_bounds(d in arb_durations(40, 4), depth in 1usize..5) {
            let spec = bigkernel_spec(depth);
            let s = schedule(&spec, &d);
            for st in 0..4 {
                prop_assert!(s.makespan() + SimTime::from_nanos(1.0) >= s.stage_busy(st));
            }
            let serial: SimTime = d.iter().flatten().copied().sum();
            prop_assert!(s.makespan() <= serial + SimTime::from_nanos(1.0));
            for row in &d {
                let chain: SimTime = row.iter().copied().sum();
                prop_assert!(s.makespan() + SimTime::from_nanos(1.0) >= chain);
            }
        }

        /// Slots never run backwards and respect intra-chunk dataflow.
        #[test]
        fn slots_are_causal(d in arb_durations(30, 4), depth in 1usize..4) {
            let spec = bigkernel_spec(depth);
            let s = schedule(&spec, &d);
            for c in 0..s.num_chunks() {
                for st in 0..4 {
                    let slot = s.slot(c, st);
                    prop_assert!(slot.finish >= slot.start);
                    if st > 0 {
                        prop_assert!(slot.start >= s.slot(c, st - 1).finish);
                    }
                }
            }
        }

        /// Deeper buffering never increases the makespan.
        #[test]
        fn deeper_buffers_never_hurt(d in arb_durations(30, 4)) {
            let mut prev = None;
            for depth in 1..=4 {
                let s = schedule(&bigkernel_spec(depth), &d);
                if let Some(p) = prev {
                    prop_assert!(s.makespan() <= p, "depth {depth} regressed");
                }
                prev = Some(s.makespan() + SimTime::from_nanos(1.0));
            }
        }

        /// Stages sharing one resource never overlap in time.
        #[test]
        fn resource_exclusivity(d in arb_durations(25, 3)) {
            let spec = PipelineSpec::new(vec![
                StageDef { name: "a", resource: "shared" },
                StageDef { name: "b", resource: "other" },
                StageDef { name: "c", resource: "shared" },
            ]);
            let s = schedule(&spec, &d);
            // Collect non-empty busy intervals on "shared" and check pairwise
            // disjointness.
            let mut intervals: Vec<(SimTime, SimTime)> = Vec::new();
            for c in 0..s.num_chunks() {
                for st in [0usize, 2] {
                    let sl = s.slot(c, st);
                    if sl.finish > sl.start {
                        intervals.push((sl.start, sl.finish));
                    }
                }
            }
            intervals.sort();
            for w in intervals.windows(2) {
                prop_assert!(w[1].0 >= w[0].1, "overlap: {:?} then {:?}", w[0], w[1]);
            }
        }
    }
}

impl Schedule {
    /// Render an ASCII Gantt chart of the schedule: one row per stage, time
    /// across, a digit marking which chunk (mod 10) occupies each cell —
    /// the textual form of the paper's Fig. 2 pipeline diagram.
    pub fn gantt(&self, width: usize) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        if self.makespan.is_zero() || width == 0 {
            return out;
        }
        let cell = self.makespan.secs() / width as f64;
        let name_w = self.stage_names.iter().map(|n| n.len()).max().unwrap_or(0);
        for stage in 0..self.num_stages() {
            let mut row = vec![b'.'; width];
            for chunk in 0..self.num_chunks() {
                let slot = self.slot(chunk, stage);
                if slot.duration().is_zero() {
                    continue;
                }
                let a = (slot.start.secs() / cell).floor() as usize;
                let b = ((slot.finish.secs() / cell).ceil() as usize).min(width);
                let digit = b'0' + (chunk % 10) as u8;
                for c in row.iter_mut().take(b).skip(a.min(width)) {
                    *c = digit;
                }
            }
            let _ = writeln!(
                out,
                "{:>name_w$} |{}|",
                self.stage_names[stage],
                String::from_utf8(row).expect("ascii"),
            );
        }
        let _ = writeln!(
            out,
            "{:>name_w$}  0{:>w$}",
            "",
            format!("{}", self.makespan),
            w = width
        );
        out
    }
}

#[cfg(test)]
mod gantt_tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn gantt_shows_overlap() {
        let spec = PipelineSpec::new(vec![
            StageDef {
                name: "xfer",
                resource: "dma",
            },
            StageDef {
                name: "comp",
                resource: "gpu",
            },
        ]);
        let s = schedule(&spec, &vec![vec![t(1.0), t(1.0)]; 3]);
        let g = s.gantt(40);
        assert_eq!(g.lines().count(), 3); // two stages + axis
        assert!(g.contains("xfer |"));
        assert!(g.contains('0') && g.contains('1') && g.contains('2'));
        // Steady-state overlap: the comp row starts after the xfer row.
        let xfer_row = g.lines().next().unwrap();
        let comp_row = g.lines().nth(1).unwrap();
        let first_busy = |row: &str| row.find(|c: char| c.is_ascii_digit()).unwrap();
        assert!(first_busy(comp_row) > first_busy(xfer_row));
    }

    #[test]
    fn empty_schedule_renders_empty() {
        let spec = PipelineSpec::new(vec![StageDef {
            name: "a",
            resource: "r",
        }]);
        let s = schedule(&spec, &[]);
        assert!(s.gantt(20).is_empty());
    }
}

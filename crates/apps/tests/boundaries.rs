//! Property tests for the variable-length work-splitting conventions.
//!
//! Word Count and MasterCard Affinity split text by byte ranges and rely on
//! a skip/continue convention at the boundaries (a thread skips the
//! word/record in progress at its range start and finishes the one that
//! begins at its range end). Every word/record must be counted exactly once
//! for EVERY possible partitioning — this is where off-by-one bugs live, so
//! it gets adversarial property coverage.

use bk_apps::affinity::Affinity;
use bk_apps::wordcount::{generate_text, reference_counts, WordCount};
use bk_apps::{run_implementation, BenchApp, HarnessConfig, Implementation};
use bk_runtime::{LaunchConfig, Machine};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Word Count under arbitrary thread/block/chunk geometry equals the
    /// single-pass reference.
    #[test]
    fn wordcount_counts_every_word_once(
        bytes in 512u64..16_384,
        seed in any::<u64>(),
        blocks in 1u32..4,
        warps in 1u32..3,
        chunk_kib in 1u64..16,
    ) {
        let app = WordCount { vocab: 64, skew: 1.0 };
        let mut cfg = HarnessConfig::test_small();
        cfg.launch = LaunchConfig::new(blocks, warps * 32);
        cfg.bigkernel.chunk_input_bytes = chunk_kib * 1024;
        let mut machine = Machine::test_platform();
        let instance = app.instantiate(&mut machine, bytes, seed);
        run_implementation(&mut machine, &instance, Implementation::BigKernel, &cfg);
        if let Err(e) = (instance.verify)(&machine) {
            return Err(TestCaseError::fail(format!(
                "bytes={bytes} blocks={blocks} warps={warps} chunk={chunk_kib}KiB: {e}"
            )));
        }
    }

    /// Same property for the delimiter-separated Affinity records, under the
    /// GPU baselines too (window boundaries are a different split).
    #[test]
    fn affinity_processes_every_record_once(
        bytes in 2_048u64..16_384,
        seed in any::<u64>(),
        window_kib in 1u64..8,
    ) {
        let app = Affinity { merchants: 16, cards: 64 };
        let mut cfg = HarnessConfig::test_small();
        cfg.baseline.window_bytes = window_kib * 1024;
        for imp in [Implementation::GpuSingleBuffer, Implementation::BigKernel] {
            let mut machine = Machine::test_platform();
            let instance = app.instantiate(&mut machine, bytes, seed);
            run_implementation(&mut machine, &instance, imp, &cfg);
            if let Err(e) = (instance.verify)(&machine) {
                return Err(TestCaseError::fail(format!(
                    "{} bytes={bytes} window={window_kib}KiB: {e}",
                    imp.label()
                )));
            }
        }
    }

    /// The text generator + reference counter agree with a naive splitter.
    #[test]
    fn reference_counts_match_naive_split(bytes in 64u64..4096, seed in any::<u64>()) {
        let text = generate_text(bytes, 32, 1.0, seed);
        let counts = reference_counts(&text);
        let naive: usize = text
            .split(|&b| b == b' ' || b == b'\n')
            .filter(|w| !w.is_empty())
            .count();
        let total: u64 = counts.values().sum();
        prop_assert_eq!(total, naive as u64);
    }
}

/// Degenerate shapes that proptest rarely hits head-on. Texts whose words
/// fit the halo contract run on the normal BigKernel path; texts with words
/// longer than the halo break EVERY chunked GPU scheme (the halo bounds the
/// record length a chunk boundary can straddle), so those cases run the
/// unchunked CPU implementation — and the GPU path's actionable diagnostic
/// is asserted separately below.
#[test]
fn degenerate_texts() {
    let cfg = HarnessConfig::test_small();
    let cases: [(Vec<u8>, bool); 4] = [
        (vec![b' '; 3000], false),   // all delimiters: normal path
        (vec![b'x'; 3000], true),    // one giant word: fetch-all fallback
        (b"a ".repeat(1500), false), // maximal word count: normal path
        (
            {
                let mut v = vec![b'y'; 2999]; // giant word then a tiny one
                v.push(b' ');
                v.extend_from_slice(b"z");
                v
            },
            true,
        ),
    ];
    for (text_case, needs_fallback) in cases {
        let mut machine = Machine::test_platform();
        let region = machine.hmem.alloc_from(&text_case);
        let stream = bk_runtime::StreamArray::map(&machine, bk_runtime::StreamId(0), region);
        let expected = reference_counts(&text_case);
        let slots = 1024u64;
        let buf = machine
            .gmem
            .alloc(bk_apps::util::DevHashTable::bytes_for(slots));
        let table = bk_apps::util::DevHashTable { buf, slots };
        let kernel = bk_apps::wordcount::WordCountKernel {
            table,
            text_len: text_case.len() as u64,
        };
        if needs_fallback {
            bk_baselines::run_cpu_serial(&mut machine, &kernel, &[stream]);
        } else {
            bk_runtime::run_bigkernel(&mut machine, &kernel, &[stream], cfg.launch, &cfg.bigkernel);
        }
        let total: u64 = expected.values().sum();
        assert_eq!(
            table.total(&machine.gmem),
            total,
            "case len {}",
            text_case.len()
        );
        assert_eq!(table.occupied(&machine.gmem), expected.len() as u64);
    }
}

/// A giant word on the normal BigKernel path must fail with the actionable
/// halo diagnostic, not a cryptic index panic.
#[test]
fn giant_word_panics_with_halo_diagnostic() {
    let text = vec![b'x'; 3000];
    let result = std::panic::catch_unwind(|| {
        let cfg = HarnessConfig::test_small();
        let mut machine = Machine::test_platform();
        let region = machine.hmem.alloc_from(&text);
        let stream = bk_runtime::StreamArray::map(&machine, bk_runtime::StreamId(0), region);
        let buf = machine
            .gmem
            .alloc(bk_apps::util::DevHashTable::bytes_for(64));
        let table = bk_apps::util::DevHashTable { buf, slots: 64 };
        let kernel = bk_apps::wordcount::WordCountKernel {
            table,
            text_len: text.len() as u64,
        };
        bk_runtime::run_bigkernel(&mut machine, &kernel, &[stream], cfg.launch, &cfg.bigkernel);
    });
    let err = result.expect_err("must panic");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(
        msg.contains("halo_bytes"),
        "diagnostic should mention halo_bytes: {msg}"
    );
}

/// Generators must be byte-deterministic in their seeds across all apps —
/// every implementation variant depends on processing identical inputs.
#[test]
fn all_generators_are_deterministic() {
    use bk_apps::affinity::AffinityIndexed;
    use bk_apps::dna::DnaAssembly;
    use bk_apps::netflix::Netflix;
    use bk_apps::opinion::OpinionFinder;

    fn digest(bytes: &[u8]) -> u64 {
        bytes.iter().fold(0xcbf29ce484222325u64, |h, &b| {
            (h ^ b as u64).wrapping_mul(0x100000001b3)
        })
    }

    let apps: Vec<Box<dyn BenchApp + Sync>> = vec![
        Box::new(bk_apps::kmeans::KMeans { k: 4 }),
        Box::new(WordCount {
            vocab: 64,
            skew: 1.0,
        }),
        Box::new(Netflix),
        Box::new(OpinionFinder { vocab: 64 }),
        Box::new(DnaAssembly {
            distinct_fragments: 32,
        }),
        Box::new(Affinity {
            merchants: 16,
            cards: 64,
        }),
        Box::new(AffinityIndexed {
            merchants: 16,
            cards: 64,
        }),
    ];
    for app in &apps {
        let gen = |seed: u64| {
            let mut m = Machine::test_platform();
            let inst = app.instantiate(&mut m, 16 * 1024, seed);
            digest(m.hmem.bytes(inst.streams[0].region))
        };
        assert_eq!(gen(7), gen(7), "{} not deterministic", app.spec().name);
        assert_ne!(gen(7), gen(8), "{} ignores its seed", app.spec().name);
    }
}

/// Field-layout invariants: each fixed-record generator must place readable
/// fields where the kernels expect them and keep Table I's record sizes.
#[test]
fn fixed_record_layouts_are_as_documented() {
    use bk_apps::{dna, kmeans, netflix, opinion};

    // K-means: 64 B records, coordinates in [0, 1000), cid initialized to
    // the invalid sentinel.
    {
        let app = kmeans::KMeans { k: 4 };
        let mut m = Machine::test_platform();
        let inst = app.instantiate(&mut m, 64 * kmeans::RECORD, 3);
        let region = inst.streams[0].region;
        for r in 0..64u64 {
            for f in 0..4u64 {
                let v = m.hmem.read_f64(region, r * kmeans::RECORD + f * 8);
                assert!((0.0..1000.0).contains(&v), "coord {v}");
            }
            assert_eq!(m.hmem.read_u64(region, r * kmeans::RECORD + 32), u64::MAX);
        }
    }

    // Netflix: 80 B records, ratings in 1..=5.
    {
        let mut m = Machine::test_platform();
        let inst = netflix::Netflix.instantiate(&mut m, 64 * netflix::RECORD, 3);
        let region = inst.streams[0].region;
        for r in 0..64u64 {
            let ra = f32::from_bits(m.hmem.read_u32(region, r * netflix::RECORD + 8));
            let rb = f32::from_bits(m.hmem.read_u32(region, r * netflix::RECORD + 16));
            assert!((1.0..=5.0).contains(&ra) && (1.0..=5.0).contains(&rb));
        }
    }

    // Opinion Finder: 256 B records, text area is lowercase + spaces.
    {
        let app = opinion::OpinionFinder { vocab: 32 };
        let mut m = Machine::test_platform();
        let inst = app.instantiate(&mut m, 32 * opinion::RECORD, 3);
        let region = inst.streams[0].region;
        for r in 0..32u64 {
            for i in 0..opinion::TEXT_LEN {
                let c = m
                    .hmem
                    .read_u8(region, r * opinion::RECORD + opinion::TEXT_OFF + i);
                assert!(c == b' ' || c.is_ascii_lowercase(), "text byte {c}");
            }
        }
    }

    // DNA: 128 B records, sequence area is ACGT only.
    {
        let app = dna::DnaAssembly {
            distinct_fragments: 8,
        };
        let mut m = Machine::test_platform();
        let inst = app.instantiate(&mut m, 32 * dna::RECORD, 3);
        let region = inst.streams[0].region;
        for r in 0..32u64 {
            for i in dna::SEQ_OFF..dna::RECORD {
                let c = m.hmem.read_u8(region, r * dna::RECORD + i);
                assert!(matches!(c, b'A' | b'C' | b'G' | b'T'), "base {c}");
            }
        }
    }
}

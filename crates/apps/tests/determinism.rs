//! Parallel-vs-sequential determinism suite.
//!
//! The block-wave simulation may run on multiple host threads
//! (`parallel_blocks`), but device effects replay in block order against a
//! read snapshot, so a parallel run must be *bit-identical* to the
//! sequential schedule: same simulated times, same counters, same verified
//! outputs. These tests pin that property for every evaluation application
//! and for the buffered GPU baselines, plus a property test over random
//! launch geometries.

use bk_apps::affinity::{Affinity, AffinityIndexed};
use bk_apps::dna::DnaAssembly;
use bk_apps::filtercount::FilterCount;
use bk_apps::kmeans::KMeans;
use bk_apps::netflix::Netflix;
use bk_apps::opinion::OpinionFinder;
use bk_apps::wordcount::WordCount;
use bk_apps::{
    run_implementation, run_streamed, run_streamed_at_rate, BenchApp, HarnessConfig, Implementation,
};
use bk_runtime::stream::{HiccupSource, ReplaySource};
use bk_runtime::{
    AutotuneConfig, DeviceFailure, FaultPlan, FaultSite, FaultStage, LaunchConfig, Machine,
    RunResult, StreamConfig, WindowPolicy,
};
use bk_simcore::SimTime;
use proptest::prelude::*;

/// The paper's seven application configurations, in Table I order.
fn all_apps() -> Vec<Box<dyn BenchApp + Sync>> {
    vec![
        Box::new(KMeans::default()),
        Box::new(WordCount::default()),
        Box::new(Netflix),
        Box::new(OpinionFinder::default()),
        Box::new(DnaAssembly::default()),
        Box::new(Affinity::default()),
        Box::new(AffinityIndexed::default()),
    ]
}

/// One verified run of `app` under `imp` with the given geometry; panics if
/// the output diverges from the pure-Rust reference.
fn run_once(
    app: &dyn BenchApp,
    imp: Implementation,
    launch: LaunchConfig,
    chunk_bytes: u64,
    bytes: u64,
    parallel: bool,
) -> RunResult {
    run_on_gpus(app, imp, launch, chunk_bytes, bytes, parallel, 1)
}

/// [`run_once`] on a machine with `gpus` replicated devices.
#[allow(clippy::too_many_arguments)]
fn run_on_gpus(
    app: &dyn BenchApp,
    imp: Implementation,
    launch: LaunchConfig,
    chunk_bytes: u64,
    bytes: u64,
    parallel: bool,
    gpus: usize,
) -> RunResult {
    run_faulted(app, imp, launch, chunk_bytes, bytes, parallel, gpus, None)
}

/// [`run_on_gpus`] with an optional fault-injection plan.
#[allow(clippy::too_many_arguments)]
fn run_faulted(
    app: &dyn BenchApp,
    imp: Implementation,
    launch: LaunchConfig,
    chunk_bytes: u64,
    bytes: u64,
    parallel: bool,
    gpus: usize,
    faults: Option<FaultPlan>,
) -> RunResult {
    let mut cfg = HarnessConfig::test_small();
    cfg.launch = launch;
    cfg.bigkernel.chunk_input_bytes = chunk_bytes;
    cfg.bigkernel.parallel_blocks = parallel;
    cfg.bigkernel.faults = faults;
    cfg.baseline.window_bytes = chunk_bytes.max(16 * 1024);
    cfg.baseline.parallel_blocks = parallel;
    cfg.gpus = gpus;
    let mut machine = Machine::test_platform();
    machine.replicate_gpus(gpus);
    let instance = app.instantiate(&mut machine, bytes, 42);
    let result = run_implementation(&mut machine, &instance, imp, &cfg);
    if let Err(e) = (instance.verify)(&machine) {
        panic!(
            "{} failed verification under {} (parallel={parallel}): {e}",
            app.spec().name,
            imp.label()
        );
    }
    result
}

#[test]
fn bigkernel_parallel_is_bit_identical_for_every_app() {
    let launch = LaunchConfig::new(4, 32);
    for app in all_apps() {
        let par = run_once(
            app.as_ref(),
            Implementation::BigKernel,
            launch,
            16 * 1024,
            192 * 1024,
            true,
        );
        let seq = run_once(
            app.as_ref(),
            Implementation::BigKernel,
            launch,
            16 * 1024,
            192 * 1024,
            false,
        );
        assert_eq!(
            par,
            seq,
            "{} parallel vs sequential RunResult diverged",
            app.spec().name
        );
    }
}

#[test]
fn baselines_parallel_is_bit_identical_for_every_app() {
    let launch = LaunchConfig::new(4, 32);
    for app in all_apps() {
        for imp in [
            Implementation::GpuSingleBuffer,
            Implementation::GpuDoubleBuffer,
        ] {
            let par = run_once(app.as_ref(), imp, launch, 32 * 1024, 128 * 1024, true);
            let seq = run_once(app.as_ref(), imp, launch, 32 * 1024, 128 * 1024, false);
            assert_eq!(
                par,
                seq,
                "{} under {} parallel vs sequential diverged",
                app.spec().name,
                imp.label()
            );
        }
    }
}

/// Chunk sharding is a timing-level decision: with the machine replicated
/// to 2 or 4 devices, every application still verifies against the
/// pure-Rust reference, produces the same chunk count and transfer
/// volumes, and finishes no later than the single-device schedule.
#[test]
fn multi_gpu_runs_verify_and_match_single_gpu_for_every_app() {
    let launch = LaunchConfig::new(4, 32);
    for app in all_apps() {
        let one = run_on_gpus(
            app.as_ref(),
            Implementation::BigKernel,
            launch,
            16 * 1024,
            192 * 1024,
            true,
            1,
        );
        for gpus in [2usize, 4] {
            let many = run_on_gpus(
                app.as_ref(),
                Implementation::BigKernel,
                launch,
                16 * 1024,
                192 * 1024,
                true,
                gpus,
            );
            let name = app.spec().name;
            assert_eq!(
                one.chunks, many.chunks,
                "{name} chunk count changed at {gpus} GPUs"
            );
            for key in ["pcie.h2d_bytes", "pcie.d2h_bytes", "addr.encoded_bytes"] {
                assert_eq!(
                    one.metrics.get(key),
                    many.metrics.get(key),
                    "{name}: {key} changed at {gpus} GPUs"
                );
            }
            assert!(
                many.total <= one.total,
                "{name} got slower on {gpus} GPUs: {:?} vs {:?}",
                many.total,
                one.total
            );
            assert!(
                many.metrics.get("device.1.chunks") > 0,
                "{name}: device 1 received no chunks at {gpus} GPUs"
            );
        }
    }
}

/// Parallel-vs-sequential bit-identity must survive sharding: the two-phase
/// block simulation and the multi-device executor compose.
#[test]
fn bigkernel_parallel_bit_identical_at_two_gpus() {
    let launch = LaunchConfig::new(4, 32);
    for app in all_apps() {
        let par = run_on_gpus(
            app.as_ref(),
            Implementation::BigKernel,
            launch,
            16 * 1024,
            192 * 1024,
            true,
            2,
        );
        let seq = run_on_gpus(
            app.as_ref(),
            Implementation::BigKernel,
            launch,
            16 * 1024,
            192 * 1024,
            false,
            2,
        );
        assert_eq!(par, seq, "{} diverged at 2 GPUs", app.spec().name);
    }
}

/// A fault plan that exercises every recovery policy at once: random
/// transient faults at a rate that forces retries, a deterministic site
/// hammering one compute instance into the backoff path, and the death of
/// device 1 at wave 0 (so most chunks requeue onto device 0).
fn busy_plan() -> FaultPlan {
    FaultPlan {
        seed: 7,
        rate: 0.05,
        sites: vec![FaultSite {
            stage: FaultStage::Compute,
            chunk: 1,
            times: 2,
        }],
        device_failure: Some(DeviceFailure { device: 1, wave: 0 }),
        ..FaultPlan::default()
    }
}

/// The ISSUE's headline property: for every application, a seeded fault
/// plan that injects retries *and* kills a device mid-run still verifies
/// against the pure-Rust reference ([`run_faulted`] panics otherwise) and
/// leaves every functional metric bit-identical to the fault-free run.
/// Faults perturb durations and chunk placement only — never what executes.
#[test]
fn fault_injected_runs_produce_identical_outputs_for_every_app() {
    let launch = LaunchConfig::new(4, 32);
    for app in all_apps() {
        let name = app.spec().name;
        let clean = run_on_gpus(
            app.as_ref(),
            Implementation::BigKernel,
            launch,
            16 * 1024,
            192 * 1024,
            true,
            2,
        );
        let faulted = run_faulted(
            app.as_ref(),
            Implementation::BigKernel,
            launch,
            16 * 1024,
            192 * 1024,
            true,
            2,
            Some(busy_plan()),
        );
        assert_eq!(
            clean.chunks, faulted.chunks,
            "{name}: chunk count changed under faults"
        );
        for key in ["pcie.h2d_bytes", "pcie.d2h_bytes", "addr.encoded_bytes"] {
            assert_eq!(
                clean.metrics.get(key),
                faulted.metrics.get(key),
                "{name}: {key} changed under faults"
            );
        }
        // The plan really fired: the site guarantees injections and the
        // wave-0 device death guarantees requeued chunks.
        assert!(
            faulted.metrics.get("fault.injected") > 0,
            "{name}: no faults injected"
        );
        assert!(
            faulted.metrics.get("fault.retried") > 0,
            "{name}: no retries recorded"
        );
        assert!(
            faulted.metrics.get("fault.failed_over") > 0,
            "{name}: no chunks failed over"
        );
        assert!(
            faulted.total >= clean.total,
            "{name}: faults made the run faster ({:?} vs {:?})",
            faulted.total,
            clean.total
        );
    }
}

/// Same seed + same plan ⇒ same schedule, same output, same metrics — and
/// the host-parallel block simulation doesn't perturb any of it.
#[test]
fn same_fault_plan_is_bitwise_reproducible_for_every_app() {
    let launch = LaunchConfig::new(4, 32);
    for app in all_apps() {
        let runs: Vec<RunResult> = [true, true, false]
            .iter()
            .map(|&parallel| {
                run_faulted(
                    app.as_ref(),
                    Implementation::BigKernel,
                    launch,
                    16 * 1024,
                    192 * 1024,
                    parallel,
                    2,
                    Some(busy_plan()),
                )
            })
            .collect();
        assert_eq!(
            runs[0],
            runs[1],
            "{}: identical fault plans diverged",
            app.spec().name
        );
        assert_eq!(
            runs[0],
            runs[2],
            "{}: fault plan diverged parallel vs sequential",
            app.spec().name
        );
    }
}

/// Tracing must be observation-only: running with a live span-collection
/// guard yields a bit-identical [`RunResult`] (times, stages, metrics) to an
/// untraced run, for every app, under both the pipeline and the buffered
/// baseline. The dev-dependency compiles `bk-obs/trace` in, so this really
/// exercises the recording path — the guard collects spans while the
/// simulated result stays untouched.
#[test]
fn tracing_on_or_off_is_bit_identical_for_every_app() {
    let launch = LaunchConfig::new(4, 32);
    for app in all_apps() {
        for imp in [Implementation::BigKernel, Implementation::GpuDoubleBuffer] {
            let plain = run_once(app.as_ref(), imp, launch, 16 * 1024, 128 * 1024, true);
            let guard = bk_obs::trace::start();
            let traced = run_once(app.as_ref(), imp, launch, 16 * 1024, 128 * 1024, true);
            let spans = guard.finish();
            assert!(
                !spans.is_empty(),
                "{} under {} recorded no spans with tracing enabled",
                app.spec().name,
                imp.label()
            );
            assert_eq!(
                traced,
                plain,
                "{} under {} diverged with tracing enabled",
                app.spec().name,
                imp.label()
            );
        }
    }
}

/// [`run_faulted`] with the adaptive occupancy autotuner enabled at the
/// given starting reuse depth; panics if the tuned run fails verification.
#[allow(clippy::too_many_arguments)]
fn run_tuned(
    app: &dyn BenchApp,
    launch: LaunchConfig,
    chunk_bytes: u64,
    bytes: u64,
    parallel: bool,
    depth: usize,
    tune: AutotuneConfig,
    faults: Option<FaultPlan>,
) -> RunResult {
    let mut cfg = HarnessConfig::test_small();
    cfg.launch = launch;
    cfg.bigkernel.chunk_input_bytes = chunk_bytes;
    cfg.bigkernel.parallel_blocks = parallel;
    cfg.bigkernel.buffer_depth = depth;
    cfg.bigkernel.autotune = Some(tune);
    cfg.bigkernel.faults = faults;
    let mut machine = Machine::test_platform();
    let instance = app.instantiate(&mut machine, bytes, 42);
    let result = run_implementation(&mut machine, &instance, Implementation::BigKernel, &cfg);
    if let Err(e) = (instance.verify)(&machine) {
        panic!(
            "{} failed verification with autotune (parallel={parallel}): {e}",
            app.spec().name
        );
    }
    result
}

/// The autotuner's determinism contract, half one: tuning re-plans the
/// schedule, never the computation. For every application an autotuned run
/// verifies against the pure-Rust reference (bit-identical outputs — the
/// verify closure compares machine state) and its functional stream byte
/// counters match the untuned run exactly.
#[test]
fn autotuned_outputs_identical_to_untuned_for_every_app() {
    let launch = LaunchConfig::new(4, 32);
    // Freeze the chunk knob (min == max == the configured chunk size): a
    // wave-boundary re-chunk moves chunk *boundaries*, which legitimately
    // shifts per-chunk edge-read accounting while leaving the outputs
    // untouched (verification still passes either way — `run_tuned` panics
    // otherwise). Pinning it lets this test demand exact counter equality
    // for the depth/buffer re-plans, which never touch execution at all.
    let tune = AutotuneConfig {
        min_chunk_bytes: 16 * 1024,
        max_chunk_bytes: 16 * 1024,
        ..AutotuneConfig::default()
    };
    for app in all_apps() {
        let name = app.spec().name;
        let plain = run_once(
            app.as_ref(),
            Implementation::BigKernel,
            launch,
            16 * 1024,
            192 * 1024,
            true,
        );
        let tuned = run_tuned(
            app.as_ref(),
            launch,
            16 * 1024,
            192 * 1024,
            true,
            3,
            tune.clone(),
            None,
        );
        for key in ["stream.bytes_read", "stream.bytes_written"] {
            assert_eq!(
                plain.metrics.get(key),
                tuned.metrics.get(key),
                "{name}: {key} changed with autotune enabled"
            );
        }
        assert!(
            tuned.metrics.get("autotune.windows") > 0,
            "{name}: tuner never observed a window"
        );
    }
}

/// Determinism contract, half two: re-plan decisions are pure functions of
/// the recorded schedule, so the same seed reproduces the same re-plan
/// sequence regardless of host threading. The full [`RunResult`] — including
/// `autotune.retune` and the `hist.autotune.depth` decision trace — is
/// bit-identical between parallel and sequential block simulation.
#[test]
fn autotune_replan_sequence_identical_across_thread_counts() {
    let launch = LaunchConfig::new(4, 32);
    // Start shallow with a hair-trigger threshold so the controller really
    // acts (stall fractions at test scale are small but nonzero).
    let tune = AutotuneConfig {
        interval: 2,
        stall_threshold: 0.01,
        ..AutotuneConfig::default()
    };
    let mut total_retunes = 0u64;
    for app in all_apps() {
        let par = run_tuned(
            app.as_ref(),
            launch,
            16 * 1024,
            192 * 1024,
            true,
            1,
            tune.clone(),
            None,
        );
        let seq = run_tuned(
            app.as_ref(),
            launch,
            16 * 1024,
            192 * 1024,
            false,
            1,
            tune.clone(),
            None,
        );
        assert_eq!(
            par,
            seq,
            "{}: autotuned run diverged parallel vs sequential",
            app.spec().name
        );
        total_retunes += par.metrics.get("autotune.retune");
    }
    assert!(
        total_retunes > 0,
        "no app ever re-planned; the sequence being pinned is empty"
    );
}

/// Fault interplay: when the recovery ladder degrades the stage graph
/// mid-run, the controller adopts the degraded depths and keeps tuning from
/// there ("retuned, not reset") — the run verifies, records both the
/// degradation and the adoption re-plan, and stays bit-reproducible.
#[test]
fn degraded_graph_is_retuned_not_reset() {
    let launch = LaunchConfig::new(4, 32);
    // times > max_retries (3) forces a degradation at chunk 1.
    let plan = FaultPlan {
        seed: 7,
        rate: 0.0,
        sites: vec![FaultSite {
            stage: FaultStage::Compute,
            chunk: 1,
            times: 5,
        }],
        device_failure: None,
        ..FaultPlan::default()
    };
    let app = KMeans::default();
    let run = |parallel| {
        run_tuned(
            &app,
            launch,
            16 * 1024,
            192 * 1024,
            parallel,
            3,
            AutotuneConfig::default(),
            Some(plan.clone()),
        )
    };
    let r = run(true);
    assert!(
        r.metrics.get("fault.degraded") > 0,
        "the fault site never degraded the graph"
    );
    assert!(
        r.metrics.get("autotune.retune") >= 1,
        "tuner did not adopt the degraded graph as a re-plan"
    );
    assert_eq!(
        r,
        run(false),
        "degraded+tuned run diverged across threading"
    );
}

/// The raw-speed assembly knobs (DESIGN.md §13) never change what a run
/// computes: every (simd, order) combination must verify against the
/// pure-Rust reference, and the SIMD dispatch specifically must be
/// invisible to the simulated timeline (identical total and per-stage
/// times; only the `assembly.simd_runs`/`scalar_runs` diagnostics may
/// differ). Gather *ordering* legitimately changes the simulated LLC
/// sequence — that is its purpose — so only outputs are pinned across
/// orders.
#[test]
fn assembly_knobs_preserve_outputs_and_simd_preserves_timing() {
    use bk_runtime::AssemblyOrder;
    let launch = LaunchConfig::new(4, 32);
    for app in all_apps() {
        let run_with = |simd: bool, order: AssemblyOrder| {
            let mut cfg = HarnessConfig::test_small();
            cfg.launch = launch;
            cfg.bigkernel.chunk_input_bytes = 16 * 1024;
            cfg.bigkernel.simd_gather = simd;
            cfg.bigkernel.assembly_order = order;
            let mut machine = Machine::test_platform();
            let instance = app.instantiate(&mut machine, 192 * 1024, 42);
            let result =
                run_implementation(&mut machine, &instance, Implementation::BigKernel, &cfg);
            if let Err(e) = (instance.verify)(&machine) {
                panic!(
                    "{} failed verification (simd={simd}, order={order:?}): {e}",
                    app.spec().name
                );
            }
            result
        };
        for order in [
            AssemblyOrder::Auto,
            AssemblyOrder::Natural,
            AssemblyOrder::CacheBlocked,
        ] {
            let on = run_with(true, order);
            let off = run_with(false, order);
            assert_eq!(
                on.total,
                off.total,
                "{} simulated total changed with SIMD under {order:?}",
                app.spec().name
            );
            assert_eq!(
                on.stages,
                off.stages,
                "{} per-stage times changed with SIMD under {order:?}",
                app.spec().name
            );
        }
    }
}

/// Mega-kernel fusion (DESIGN.md §15) is a transfer-schedule decision, not
/// a functional one: with `--fuse`, every application's BigKernel run must
/// still verify bit-identical against the pure-Rust reference — fused where
/// the dependence analysis proves the pass pair safe, conservatively
/// refused (and therefore running the ordinary per-pass loop) otherwise.
/// Also pins which side of that line each app falls on, and that a refusal
/// really is a fallback: same simulated schedule as the unfused run.
#[test]
fn fused_runs_verify_identically_for_every_app() {
    let mut apps = all_apps();
    apps.push(Box::new(FilterCount));
    for app in apps {
        let name = app.spec().name;
        let run = |fuse: bool| {
            let mut cfg = HarnessConfig::test_small();
            cfg.fuse = fuse;
            let mut machine = Machine::test_platform();
            let instance = app.instantiate(&mut machine, 96 * 1024, 42);
            let result =
                run_implementation(&mut machine, &instance, Implementation::BigKernel, &cfg);
            if let Err(e) = (instance.verify)(&machine) {
                panic!("{name} failed verification (fuse={fuse}): {e}");
            }
            result
        };
        let off = run(false);
        let on = run(true);
        let fused = on.metrics.get("fusion.fused");
        let refused = on.metrics.get("fusion.refused");
        assert_eq!(
            fused + refused,
            1,
            "{name}: fusion must be taken or refused"
        );
        let expect_fused = matches!(name, "K-means" | "MasterCard Affinity" | "FilterCount");
        assert_eq!(
            fused == 1,
            expect_fused,
            "{name}: fused={fused} refused={refused}"
        );
        if refused == 1 {
            // The fallback is the unfused loop itself: identical schedule
            // and transfers, the refusal marker being the only trace.
            assert_eq!(on.total, off.total, "{name}: refused run changed timing");
            assert_eq!(on.chunks, off.chunks);
            for key in ["pcie.h2d_bytes", "pcie.d2h_bytes"] {
                assert_eq!(on.metrics.get(key), off.metrics.get(key), "{name}: {key}");
            }
        } else {
            let moved =
                |r: &RunResult| r.metrics.get("pcie.h2d_bytes") + r.metrics.get("pcie.d2h_bytes");
            assert!(
                moved(&on) < moved(&off),
                "{name}: fusion did not cut PCIe traffic ({} vs {})",
                moved(&on),
                moved(&off)
            );
        }
    }
}

/// The streaming contract (DESIGN.md §16): cutting a stream into
/// record-aligned windows and running each through the batch pipeline as it
/// arrives is a *scheduling* decision — for every application and every
/// window policy, the streamed run must verify against the pure-Rust
/// reference (`run_streamed` panics otherwise) and leave every mapped host
/// region bit-identical to the one-shot batch run.
#[test]
fn streamed_matches_batch_bit_identical_for_every_app() {
    let bytes = 96 * 1024;
    // Fast enough that arrival never limits the pipeline; the windows land
    // back-to-back exactly like batch partitions.
    let rate = 1e9;
    for app in all_apps() {
        let name = app.spec().name;
        let cfg = HarnessConfig::test_small();
        let mut batch = Machine::test_platform();
        let instance = app.instantiate(&mut batch, bytes, 42);
        run_implementation(&mut batch, &instance, Implementation::BigKernel, &cfg);
        if let Err(e) = (instance.verify)(&batch) {
            panic!("{name} failed batch verification: {e}");
        }

        for policy in [
            WindowPolicy::ByBytes(16 * 1024),
            WindowPolicy::ByRecords(256),
            WindowPolicy::ByInterval(SimTime::from_secs(bytes as f64 / rate / 8.0)),
        ] {
            let scfg = StreamConfig {
                policy,
                ..StreamConfig::default()
            };
            let (result, streamed) =
                run_streamed_at_rate(app.as_ref(), bytes, 42, &cfg, &scfg, rate);
            assert!(
                !result.windows.is_empty(),
                "{name} under {policy:?} produced no windows"
            );
            if matches!(policy, WindowPolicy::ByBytes(_)) {
                assert!(
                    result.windows.len() > 1,
                    "{name}: 16 KiB byte windows over 96 KiB must cut the stream"
                );
            }
            // Instantiation is deterministic on identical fresh machines, so
            // the batch instance's region ids address the streamed machine's
            // mapped arrays too.
            for s in &instance.streams {
                assert_eq!(
                    batch.hmem.bytes(s.region),
                    streamed.hmem.bytes(s.region),
                    "{name} under {policy:?}: mapped stream {:?} diverged from batch",
                    s.id
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// The bounded-queue no-deadlock property under faulty ingestion:
    /// whatever the queue bound, window shape, source rate and hiccup plan,
    /// the streamed run *drains* — every planned window is admitted and
    /// completed in finite simulated time, the windows tile the stream, the
    /// recorded queue depth never exceeds the bound, and backpressure is
    /// exactly the admission delay the recurrence charges
    /// (`admitted - ready`). Verification still passes (`run_streamed`
    /// panics otherwise), so hiccups delay the schedule without touching
    /// what executes.
    #[test]
    fn bounded_queue_drains_under_faulty_sources(
        bound in 1usize..=4,
        hiccups in 0usize..=8,
        pause_ms in 0u64..=80,
        window_kib in 4u64..=32,
        policy_kind in 0u8..3,
        rate_exp in 5i32..=9,
        seed in 0u64..1024,
    ) {
        let bytes = 64 * 1024;
        let rate = 10f64.powi(rate_exp);
        let policy = match policy_kind {
            0 => WindowPolicy::ByBytes(window_kib * 1024),
            1 => WindowPolicy::ByRecords(window_kib * 16),
            // An interval that would cut the (hiccup-free) stream into a
            // handful of windows; hiccups stretch quiet gaps the planner
            // must jump over rather than spin in.
            _ => WindowPolicy::ByInterval(SimTime::from_secs(
                bytes as f64 / rate / window_kib as f64,
            )),
        };
        let scfg = StreamConfig {
            policy,
            queue_bound: bound,
            ..StreamConfig::default()
        };
        let pause = SimTime::from_secs(pause_ms as f64 / 1e3);
        let app = WordCount::default();
        let (result, _machine) = run_streamed(&app, bytes, 42, &cfg_small(), &scfg, &|len| {
            Box::new(HiccupSource::new(ReplaySource::new(len, rate), hiccups, pause, seed))
        });

        prop_assert!(!result.windows.is_empty());
        let mut pos = 0u64;
        for w in &result.windows {
            prop_assert_eq!(w.window.start, pos, "windows must tile the stream");
            prop_assert!(w.window.end > w.window.start);
            pos = w.window.end;
            prop_assert!(w.admitted >= w.ready, "admission cannot precede arrival");
            prop_assert!(w.completed >= w.admitted, "completion cannot precede admission");
            prop_assert_eq!(
                w.backpressure,
                w.admitted.saturating_sub(w.ready),
                "backpressure must equal the admission delay"
            );
            prop_assert!(w.depth <= bound, "queue depth {} exceeded bound {}", w.depth, bound);
            prop_assert!(
                result.total >= w.completed,
                "a window completed after the reported total"
            );
        }
        prop_assert_eq!(pos, bytes, "windows must cover the whole stream");
    }
}

/// [`HarnessConfig::test_small`] (free fn so the proptest macro body stays
/// terse).
fn cfg_small() -> HarnessConfig {
    HarnessConfig::test_small()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Bit-identity holds for arbitrary launch geometries, not just the
    /// defaults: blocks (waves when > active limit), warp counts and chunk
    /// sizes all vary.
    #[test]
    fn bigkernel_parallel_bit_identical_over_random_geometry(
        blocks in 1u32..=24,
        warps in 1u32..=4,
        chunk_kib in 4u64..=64,
        bytes_kib in 32u64..=128,
        seed in 0u64..1024,
    ) {
        let launch = LaunchConfig::new(blocks, warps * 32);
        let chunk = chunk_kib * 1024;
        let bytes = bytes_kib * 1024;
        let app = KMeans::default();
        let run = |parallel: bool| {
            let mut cfg = HarnessConfig::test_small();
            cfg.launch = launch;
            cfg.bigkernel.chunk_input_bytes = chunk;
            cfg.bigkernel.parallel_blocks = parallel;
            let mut machine = Machine::test_platform();
            let instance = app.instantiate(&mut machine, bytes, seed);
            let result =
                run_implementation(&mut machine, &instance, Implementation::BigKernel, &cfg);
            prop_assert!((instance.verify)(&machine).is_ok(), "verification failed");
            Ok(result)
        };
        let par = run(true)?;
        let seq = run(false)?;
        prop_assert_eq!(par, seq);
    }
}

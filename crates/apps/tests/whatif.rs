//! What-if replay soundness, end to end: for every evaluation application
//! the predictions produced by re-running the pure scheduler over a
//! captured schedule must match *actual* perturbed re-runs of the full
//! pipeline.
//!
//! Two layers of guarantee:
//!
//! * **Identity** — replaying the captured schedule unperturbed reproduces
//!   the observed simulated total to ulp-level error, and the critical-path
//!   analyzer's per-app blame tiles that makespan exactly in integer
//!   nanoseconds.
//! * **Structural scenarios** — a deeper data-reuse edge, a deeper
//!   write-back edge, and one more device each have an exact config
//!   spelling, so the prediction is checked against a real re-run within
//!   1% (the acceptance bar; the observed error is ~1e-9 — durations are
//!   device-independent and the scheduler is pure).

use bk_apps::affinity::{Affinity, AffinityIndexed};
use bk_apps::dna::DnaAssembly;
use bk_apps::kmeans::KMeans;
use bk_apps::netflix::Netflix;
use bk_apps::opinion::OpinionFinder;
use bk_apps::wordcount::WordCount;
use bk_apps::{run_implementation, BenchApp, HarnessConfig, Implementation};
use bk_obs::critpath::WaveDag;
use bk_runtime::{whatif, LaunchConfig, Machine, Perturbation, RunResult, ShardPolicy};

/// The paper's seven application configurations, in Table I order.
fn all_apps() -> Vec<Box<dyn BenchApp + Sync>> {
    vec![
        Box::new(KMeans::default()),
        Box::new(WordCount::default()),
        Box::new(Netflix),
        Box::new(OpinionFinder::default()),
        Box::new(DnaAssembly::default()),
        Box::new(Affinity::default()),
        Box::new(AffinityIndexed::default()),
    ]
}

/// The test geometry's BigKernel reuse edges (§IV.C): stage 0 → 3 at the
/// data depth, stage 3 → 5 at the write-back depth.
const DATA_DEPTH: usize = 3;

/// One verified BigKernel run with schedule capture live.
fn run_captured(
    app: &dyn BenchApp,
    gpus: usize,
    depth: usize,
    wb_depth: Option<usize>,
) -> (RunResult, Vec<WaveDag>) {
    let mut cfg = HarnessConfig::test_small();
    cfg.launch = LaunchConfig::new(4, 32);
    cfg.bigkernel.chunk_input_bytes = 16 * 1024;
    cfg.bigkernel.buffer_depth = depth;
    cfg.bigkernel.wb_buffer_depth = wb_depth;
    cfg.gpus = gpus;
    let mut machine = Machine::test_platform();
    machine.replicate_gpus(gpus);
    let instance = app.instantiate(&mut machine, 192 * 1024, 42);
    let guard = bk_obs::critpath::capture();
    let result = run_implementation(&mut machine, &instance, Implementation::BigKernel, &cfg);
    if let Err(e) = (instance.verify)(&machine) {
        panic!("{} failed verification: {e}", app.spec().name);
    }
    (result, guard.finish())
}

fn rel_err(a: f64, b: f64) -> f64 {
    (a - b).abs() / b.abs().max(1e-12)
}

#[test]
fn identity_replay_and_blame_tiling_hold_for_every_app() {
    for app in all_apps() {
        let name = app.spec().name;
        let (r, waves) = run_captured(app.as_ref(), 1, DATA_DEPTH, None);
        assert!(!waves.is_empty(), "{name}: no waves captured");

        let report = bk_obs::analyze(&waves);
        assert!(
            report.tiles_exactly(),
            "{name}: blame sums to {} ns, makespan is {} ns",
            report.blame_sum_ns(),
            report.makespan_ns
        );
        assert_eq!(
            report.makespan, r.total,
            "{name}: analyzer makespan diverged from the simulated total"
        );

        let identity = whatif::predict(&waves, 1, ShardPolicy::RoundRobin, &Perturbation::Identity)
            .expect("identity replay");
        assert!(
            rel_err(identity.secs(), r.total.secs()) < 1e-9,
            "{name}: identity replay {} vs observed {}",
            identity,
            r.total
        );
    }
}

#[test]
fn structural_predictions_match_actual_reruns_for_every_app() {
    for app in all_apps() {
        let name = app.spec().name;
        let (base, waves) = run_captured(app.as_ref(), 1, DATA_DEPTH, None);

        // Each structural perturbation paired with its config spelling.
        // Deepening one edge pins the other at the baseline depth (the
        // write-back depth follows the data depth when unset).
        let cases: Vec<(&str, Perturbation, (usize, usize, Option<usize>))> = vec![
            (
                "deeper data reuse",
                Perturbation::SetReuseDepth {
                    producer: 0,
                    consumer: 3,
                    depth: DATA_DEPTH * 2,
                },
                (1, DATA_DEPTH * 2, Some(DATA_DEPTH)),
            ),
            (
                "deeper write-back reuse",
                Perturbation::SetReuseDepth {
                    producer: 3,
                    consumer: 5,
                    depth: DATA_DEPTH * 2,
                },
                (1, DATA_DEPTH, Some(DATA_DEPTH * 2)),
            ),
            (
                "one more device",
                Perturbation::AddDevice,
                (2, DATA_DEPTH, None),
            ),
        ];

        for (label, perturbation, (gpus, depth, wb)) in cases {
            let predicted = whatif::predict(&waves, 1, ShardPolicy::RoundRobin, &perturbation)
                .unwrap_or_else(|| panic!("{name}: {label} failed to replay"));
            let (actual, _) = run_captured(app.as_ref(), gpus, depth, wb);
            let err = rel_err(predicted.secs(), actual.total.secs());
            assert!(
                err < 0.01,
                "{name}: {label} predicted {} but the actual re-run took {} (rel err {err:.2e})",
                predicted,
                actual.total
            );
            // Not bit-exact for multi-pass apps: the replay folds all
            // passes' waves in one sum while the harness sums per pass,
            // so allow ulp-level association error.
            assert!(
                predicted.secs() <= base.total.secs() * (1.0 + 1e-12),
                "{name}: {label} predicted a slowdown ({} vs base {})",
                predicted,
                base.total
            );
        }
    }
}

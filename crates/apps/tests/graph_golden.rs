//! Golden-schedule suite: on one GPU, the stage-graph executor must place
//! every stage instance exactly where the pre-refactor forward-list
//! scheduler did.
//!
//! Method: run BigKernel for every application with span tracing on, then
//! rebuild the schedule independently with the legacy
//! [`bk_simcore::pipeline`] scheduler — which the refactor left untouched —
//! configured exactly as the pre-refactor `run_bigkernel` configured it
//! (stage/resource table, §IV.C reuse edges, second-copy-engine rule). The
//! legacy configuration is *hard-coded here* on purpose: it is the golden
//! record, and must not drift along with `runtime::graph`.
//!
//! Each recorded span's start time and resource track must equal the
//! oracle's placement bit-for-bit, and the per-wave makespans must sum to
//! the run total.

use bk_apps::affinity::{Affinity, AffinityIndexed};
use bk_apps::dna::DnaAssembly;
use bk_apps::kmeans::KMeans;
use bk_apps::netflix::Netflix;
use bk_apps::opinion::OpinionFinder;
use bk_apps::wordcount::WordCount;
use bk_apps::{BenchApp, HarnessConfig};
use bk_runtime::{run_bigkernel, LaunchConfig, Machine};
use bk_simcore::pipeline::{schedule, PipelineSpec};
use bk_simcore::{SimTime, StageDef};
use std::collections::HashMap;

/// The pre-refactor pipeline, verbatim (stage order, resource names, reuse
/// depth semantics). `wb_dma` was `"dma-d2h"` on parts with a second copy
/// engine and the shared `"dma"` engine otherwise.
const GOLDEN_STAGES: [&str; 6] = [
    "addr-gen", "assemble", "transfer", "compute", "wb-xfer", "wb-apply",
];

fn golden_spec(copy_engines: u32, depth: usize) -> PipelineSpec {
    let wb_dma = if copy_engines >= 2 { "dma-d2h" } else { "dma" };
    PipelineSpec::new(vec![
        StageDef {
            name: GOLDEN_STAGES[0],
            resource: "gpu-ag",
        },
        StageDef {
            name: GOLDEN_STAGES[1],
            resource: "cpu-asm",
        },
        StageDef {
            name: GOLDEN_STAGES[2],
            resource: "dma",
        },
        StageDef {
            name: GOLDEN_STAGES[3],
            resource: "gpu-comp",
        },
        StageDef {
            name: GOLDEN_STAGES[4],
            resource: wb_dma,
        },
        StageDef {
            name: GOLDEN_STAGES[5],
            resource: "cpu-wb",
        },
    ])
    .with_reuse(0, 3, depth)
    .with_reuse(3, 5, depth)
}

fn stage_index(name: &str) -> usize {
    GOLDEN_STAGES
        .iter()
        .position(|&s| s == name)
        .unwrap_or_else(|| {
            panic!("span on unknown stage {name:?}");
        })
}

/// Run one kernel pass traced and check every span against the oracle.
fn check_pass(app_name: &str, machine: &mut Machine, instance: &bk_apps::Instance, pass: usize) {
    let cfg = HarnessConfig::test_small();
    let mut bk = cfg.bigkernel.clone();
    bk.chunk_input_bytes = 16 * 1024;
    let launch = LaunchConfig::new(4, 32);

    let guard = bk_obs::trace::start();
    let result = run_bigkernel(
        machine,
        instance.kernels[pass].as_ref(),
        &instance.streams,
        launch,
        &bk,
    );
    let spans = guard.finish();
    assert!(
        !spans.is_empty(),
        "{app_name} pass {pass}: no spans recorded"
    );

    // Rebuild (chunk, stage) -> (start, duration, track) from the trace.
    // Zero-duration stages record no span; they reconstruct as ZERO rows.
    let chunks = result.chunks;
    let mut durations = vec![vec![SimTime::ZERO; GOLDEN_STAGES.len()]; chunks];
    let mut placed: HashMap<(usize, usize), (SimTime, &'static str)> = HashMap::new();
    for s in &spans {
        let stage = stage_index(s.stage);
        assert!(
            s.chunk < chunks,
            "{app_name}: span chunk {} out of range",
            s.chunk
        );
        let old = placed.insert((s.chunk, stage), (s.start, s.track));
        assert!(
            old.is_none(),
            "{app_name}: duplicate span for chunk {} {}",
            s.chunk,
            s.stage
        );
        durations[s.chunk][stage] = s.dur;
    }

    // Re-schedule wave by wave with the legacy oracle and compare.
    let per_wave = result.metrics.get("run.chunks_per_block") as usize;
    let waves = result.metrics.get("run.waves") as usize;
    assert_eq!(
        chunks,
        per_wave * waves,
        "{app_name}: waves must tile the chunk count"
    );
    let spec = golden_spec(machine.gpu().copy_engines, bk.buffer_depth);

    let mut time_base = SimTime::ZERO;
    let mut compared = 0usize;
    for wave in 0..waves {
        let rows = &durations[wave * per_wave..(wave + 1) * per_wave];
        let oracle = schedule(&spec, rows);
        for local in 0..per_wave {
            for stage in 0..GOLDEN_STAGES.len() {
                if rows[local][stage].is_zero() {
                    continue;
                }
                let slot = oracle.slot(local, stage);
                let chunk = wave * per_wave + local;
                let (start, track) = placed[&(chunk, stage)];
                assert_eq!(
                    start,
                    time_base + slot.start,
                    "{app_name} pass {pass}: chunk {chunk} {} placed differently",
                    GOLDEN_STAGES[stage],
                );
                assert_eq!(
                    track, spec.stages[stage].resource,
                    "{app_name} pass {pass}: chunk {chunk} {} on the wrong resource",
                    GOLDEN_STAGES[stage],
                );
                compared += 1;
            }
        }
        time_base += oracle.makespan();
    }
    assert_eq!(
        compared,
        placed.len(),
        "{app_name}: every span must be checked"
    );
    assert_eq!(
        time_base, result.total,
        "{app_name} pass {pass}: summed wave makespans must equal the run total"
    );
}

fn golden_check(app: &dyn BenchApp) {
    let mut machine = Machine::test_platform();
    let instance = app.instantiate(&mut machine, 192 * 1024, 42);
    for pass in 0..instance.kernels.len() {
        check_pass(app.spec().name, &mut machine, &instance, pass);
    }
    if let Err(e) = (instance.verify)(&machine) {
        panic!("{} failed verification: {e}", app.spec().name);
    }
}

#[test]
fn graph_schedule_matches_legacy_scheduler_for_every_app() {
    let apps: Vec<Box<dyn BenchApp + Sync>> = vec![
        Box::new(KMeans::default()),
        Box::new(WordCount::default()),
        Box::new(Netflix),
        Box::new(OpinionFinder::default()),
        Box::new(DnaAssembly::default()),
        Box::new(Affinity::default()),
        Box::new(AffinityIndexed::default()),
    ];
    for app in apps {
        golden_check(app.as_ref());
    }
}

/// The second-copy-engine rule must survive the refactor too: on a
/// tesla-like device the write-back transfer runs on its own engine, and
/// the graph schedule still matches the oracle configured the legacy way.
#[test]
fn graph_schedule_matches_legacy_scheduler_with_two_copy_engines() {
    let mut machine = Machine::test_platform();
    machine.devices[0].copy_engines = 2;
    let app = WordCount::default();
    let instance = app.instantiate(&mut machine, 192 * 1024, 42);
    check_pass("Word Count (2 engines)", &mut machine, &instance, 0);
}

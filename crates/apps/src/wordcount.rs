//! Word Count (paper §V): count occurrences of each word in a large mapped
//! document.
//!
//! Variable-length records (whitespace-delimited words), 100% of the mapped
//! data read, nothing modified — Table I. The counts live in a centralized
//! device hash table updated with atomics; the contention on hot (Zipf-
//! frequent) words is what makes Word Count computation-dominant in the
//! paper's Fig. 4(b)/Fig. 6.
//!
//! Work splitting uses the classic text-split convention: a thread with
//! range `[s, e)` first skips the word in progress at `s` (it belongs to the
//! previous thread), then counts every word *starting* at a position
//! `≤ e`, scanning past `e` to finish the last one. All reads are a single
//! forward pass, so the address-generation slice is simply "every byte from
//! `s` to `e + halo`" — a period-1 stride pattern, which is why pattern
//! recognition matters so much here (Table II: 66%).

use crate::harness::{AppSpec, BenchApp, Instance};
use crate::util::{fnv1a, fnv1a_step, DevHashTable, FNV_OFFSET};
use bk_runtime::ctx::AddrGenCtx;
use bk_runtime::{KernelCtx, Machine, StreamArray, StreamId, ValueExt};
use bk_simcore::{SplitMix64, Zipf};
use std::collections::HashMap;
use std::ops::Range;

/// Maximum generated word length (bounds the scan-past-end distance).
pub const MAX_WORD: usize = 12;
/// Halo: worst case = skip a partial word + delimiters + one full word.
pub const HALO: u64 = 64;

#[inline]
fn is_delim(b: u8) -> bool {
    b == b' ' || b == b'\n'
}

/// Non-zero hash key for a word hash.
#[inline]
fn word_key(h: u64) -> u64 {
    h | 1
}

/// The Word Count kernel.
pub struct WordCountKernel {
    pub table: DevHashTable,
    pub text_len: u64,
}

impl bk_runtime::StreamKernel for WordCountKernel {
    fn name(&self) -> &'static str {
        "wordcount"
    }

    /// Hash-table inserts consume only CAS results, which the write log
    /// validates at replay; count bumps ignore the add returns.
    fn device_effects(&self) -> bk_runtime::DeviceEffects {
        bk_runtime::DeviceEffects::Replayable
    }

    fn record_size(&self) -> Option<u64> {
        None // variable-length
    }

    fn halo_bytes(&self) -> u64 {
        HALO
    }

    fn addresses(&self, ctx: &mut AddrGenCtx<'_>, range: Range<u64>) {
        if range.is_empty() {
            return;
        }
        let end = (range.end + HALO).min(self.text_len);
        let mut p = range.start;
        while p < end {
            ctx.emit_read(StreamId(0), p, 1);
            p += 1;
        }
    }

    fn process(&self, ctx: &mut dyn KernelCtx, range: Range<u64>) {
        if range.is_empty() {
            return;
        }
        let len = self.text_len;
        let mut p = range.start;

        // Skip the word in progress at `s` — it started in (or before) the
        // previous thread's range.
        if p > 0 {
            while p < len {
                let c = ctx.stream_read_u8(StreamId(0), p);
                ctx.alu(1);
                p += 1;
                if is_delim(c) {
                    break;
                }
            }
        }

        'outer: loop {
            // Find the next word start; words starting past `e` belong to
            // the next thread.
            let mut c;
            loop {
                if p >= len || p > range.end {
                    break 'outer;
                }
                c = ctx.stream_read_u8(StreamId(0), p);
                ctx.alu(1);
                if !is_delim(c) {
                    break;
                }
                p += 1;
            }
            // Hash the word (single forward pass; the terminating delimiter
            // is consumed here so no byte is ever read twice — the FIFO
            // verification depends on that).
            let mut h = FNV_OFFSET;
            loop {
                h = fnv1a_step(h, c);
                ctx.alu(2);
                p += 1;
                if p >= len {
                    break;
                }
                c = ctx.stream_read_u8(StreamId(0), p);
                if is_delim(c) {
                    p += 1;
                    break;
                }
            }
            self.table.add(ctx, word_key(h), 1);
        }
    }
}

/// The Word Count benchmark application.
pub struct WordCount {
    /// Vocabulary size.
    pub vocab: usize,
    /// Zipf skew of word frequencies.
    pub skew: f64,
}

impl Default for WordCount {
    fn default() -> Self {
        WordCount {
            vocab: 8192,
            skew: 1.0,
        }
    }
}

/// Generate Zipf-distributed text of exactly `bytes` bytes. Returns the
/// text; reference counting runs over the same buffer.
pub fn generate_text(bytes: u64, vocab: usize, skew: f64, seed: u64) -> Vec<u8> {
    generate_text_sized(bytes, vocab, skew, seed, 2, MAX_WORD)
}

/// [`generate_text`] with explicit word-length bounds (`min_word..=max_word`
/// letters, `max_word <= MAX_WORD` so the kernel's halo still covers the
/// longest word). The streaming drift scenarios splice texts with different
/// length regimes to shift the words-per-byte (and so atomics-per-byte)
/// density mid-stream.
pub fn generate_text_sized(
    bytes: u64,
    vocab: usize,
    skew: f64,
    seed: u64,
    min_word: usize,
    max_word: usize,
) -> Vec<u8> {
    assert!(
        0 < min_word && min_word <= max_word && max_word <= MAX_WORD,
        "word-length bounds must satisfy 0 < min <= max <= MAX_WORD"
    );
    let mut rng = SplitMix64::new(seed);
    // Vocabulary: short lowercase words.
    let words: Vec<Vec<u8>> = (0..vocab)
        .map(|_| {
            let len = rng.range_inclusive(min_word as u64, max_word as u64) as usize;
            (0..len).map(|_| b'a' + rng.next_below(26) as u8).collect()
        })
        .collect();
    let zipf = Zipf::new(vocab, skew);
    let mut text = Vec::with_capacity(bytes as usize);
    while (text.len() as u64) < bytes {
        let w = &words[zipf.sample(&mut rng)];
        if text.len() + w.len() + 1 > bytes as usize {
            break;
        }
        text.extend_from_slice(w);
        text.push(if rng.next_below(20) == 0 { b'\n' } else { b' ' });
    }
    text.resize(bytes as usize, b' ');
    text
}

/// Reference single-pass word count (same keying as the kernel).
pub fn reference_counts(text: &[u8]) -> HashMap<u64, u64> {
    let mut counts = HashMap::new();
    for word in text.split(|&b| is_delim(b)).filter(|w| !w.is_empty()) {
        *counts.entry(word_key(fnv1a(word))).or_insert(0) += 1;
    }
    counts
}

impl BenchApp for WordCount {
    fn spec(&self) -> AppSpec {
        AppSpec {
            name: "Word Count",
            paper_data_size: "4.5GB",
            record_type: "Variable-length",
            paper_read_pct: 100,
            paper_modified_pct: 0,
            pattern_applicable: true,
        }
    }

    fn instantiate(&self, machine: &mut Machine, bytes: u64, seed: u64) -> Instance {
        let text = generate_text(bytes, self.vocab, self.skew, seed);
        let expected = reference_counts(&text);
        let region = machine.hmem.alloc_from(&text);
        let stream = StreamArray::map(machine, StreamId(0), region);

        // Table sized for the vocabulary with headroom.
        let slots = (self.vocab as u64 * 4).next_power_of_two();
        let buf = machine.gmem.alloc(DevHashTable::bytes_for(slots));
        let table = DevHashTable { buf, slots };

        let verify = move |m: &Machine| -> Result<(), String> {
            let total: u64 = expected.values().sum();
            let got_total = table.total(&m.gmem);
            if got_total != total {
                return Err(format!("total words {got_total} != expected {total}"));
            }
            for (&key, &count) in &expected {
                let got = table.get(&m.gmem, key);
                if got != count {
                    return Err(format!("word key {key:#x}: count {got} != {count}"));
                }
            }
            if table.occupied(&m.gmem) != expected.len() as u64 {
                return Err("spurious words counted".into());
            }
            Ok(())
        };

        Instance {
            kernels: vec![Box::new(WordCountKernel {
                table,
                text_len: bytes,
            })],
            streams: vec![stream],
            scratch_streams: vec![],
            fused: None,
            verify: Box::new(verify),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{run_all, HarnessConfig, Implementation};
    use bk_baselines::BigKernelVariant;

    #[test]
    fn reference_counts_simple() {
        let counts = reference_counts(b"the cat and the hat");
        assert_eq!(counts[&word_key(fnv1a(b"the"))], 2);
        assert_eq!(counts[&word_key(fnv1a(b"cat"))], 1);
        assert_eq!(counts.len(), 4);
    }

    #[test]
    fn generated_text_is_exact_size_and_deterministic() {
        let a = generate_text(1000, 64, 1.0, 5);
        let b = generate_text(1000, 64, 1.0, 5);
        assert_eq!(a.len(), 1000);
        assert_eq!(a, b);
        assert_ne!(a, generate_text(1000, 64, 1.0, 6));
        assert!(a.iter().all(|&c| c.is_ascii_lowercase() || is_delim(c)));
    }

    #[test]
    fn all_implementations_agree() {
        let app = WordCount {
            vocab: 256,
            skew: 1.0,
        };
        let cfg = HarnessConfig::test_small();
        run_all(&app, 48 * 1024, 42, &cfg, &Implementation::FIG4A);
    }

    #[test]
    fn variants_agree() {
        let app = WordCount {
            vocab: 256,
            skew: 1.0,
        };
        let cfg = HarnessConfig::test_small();
        run_all(
            &app,
            24 * 1024,
            11,
            &cfg,
            &[
                Implementation::Variant(BigKernelVariant::OverlapOnly),
                Implementation::Variant(BigKernelVariant::VolumeReduction),
            ],
        );
    }

    #[test]
    fn whole_text_is_read() {
        let app = WordCount {
            vocab: 256,
            skew: 1.0,
        };
        let cfg = HarnessConfig::test_small();
        let results = run_all(&app, 32 * 1024, 1, &cfg, &[Implementation::BigKernel]);
        let read = results[0].1.metrics.get("stream.bytes_read");
        // >= 100% of the data (plus halo overlap re-reads).
        assert!(read >= 32 * 1024, "read {read}");
        assert_eq!(results[0].1.metrics.get("stream.bytes_written"), 0);
    }

    #[test]
    fn byte_scan_is_pattern_compressed() {
        let app = WordCount {
            vocab: 256,
            skew: 1.0,
        };
        let cfg = HarnessConfig::test_small();
        let results = run_all(&app, 32 * 1024, 2, &cfg, &[Implementation::BigKernel]);
        let c = &results[0].1.metrics;
        assert!(c.get("addr.patterns_found") > 0);
        assert_eq!(
            c.get("addr.patterns_missed"),
            0,
            "byte scans must always compress"
        );
    }
}

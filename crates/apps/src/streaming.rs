//! Streaming benchmark support: run any [`BenchApp`] through the continuous
//! ingestion runner, plus *drifting* variants of Word Count, FilterCount and
//! K-means whose input distribution or record schema changes mid-stream.
//!
//! The drifting apps exist to exercise the streaming runner's §IV.A
//! re-detection path (DESIGN.md §16): each one flips a property at the
//! stream's midpoint so the per-window access-pattern fingerprint moves and
//! `stream.redetect` fires. Three distinct drift axes are covered:
//!
//! * [`DriftingWordCount`] — **data drift**: the text switches from short
//!   words to long words, shifting the words-per-byte (and so hash-table
//!   atomics-per-byte) density. The access pattern itself (a period-1 byte
//!   scan) is unchanged.
//! * [`DriftingFilterCount`] — **schema drift**: records after the flip are
//!   filtered on the whole 16-byte record instead of the 8-byte value field
//!   (doubling gather density), and the keep-predicate widens, shifting the
//!   count-atomic density.
//! * [`DriftingKMeans`] — **schema drift on the write side**: records after
//!   the flip carry a per-record weight that is read (extra gather field)
//!   and accumulated into device-side weighted populations (atomics appear
//!   where there were none).
//!
//! All three verify exactly — the drifting halves are part of the expected
//! output, computed record-by-record at generation time — so the streamed ≡
//! batch determinism contract holds for them like for every other app.

use crate::harness::{AppSpec, BenchApp, HarnessConfig, Instance};
use crate::kmeans::closest_cluster;
use crate::util::DevHashTable;
use crate::wordcount::{generate_text_sized, reference_counts, WordCountKernel, MAX_WORD};
use bk_runtime::ctx::AddrGenCtx;
use bk_runtime::stream::{run_bigkernel_streamed, ReplaySource, Source};
use bk_runtime::{
    DevBufId, DeviceEffects, KernelCtx, Machine, StreamArray, StreamConfig, StreamId, StreamKernel,
    StreamResult, ValueExt,
};
use bk_simcore::SplitMix64;
use std::ops::Range;

/// Run `app` through the streaming runner over a source built by
/// `make_source` (called with the mapped primary stream's byte length), then
/// check the app's exact-output verification. Panics — like
/// [`run_all`](crate::harness::run_all) — if verification fails.
///
/// The machine setup mirrors the batch harness (GPU replication, link
/// override, fixed-cost scaling), so streamed results are comparable with
/// batch results from the same [`HarnessConfig`]. Multi-pass apps run
/// unfused; pass ordering is the streaming runner's concern.
pub fn run_streamed(
    app: &dyn BenchApp,
    bytes: u64,
    seed: u64,
    cfg: &HarnessConfig,
    scfg: &StreamConfig,
    make_source: &dyn Fn(u64) -> Box<dyn Source>,
) -> (StreamResult, Machine) {
    let mut machine = (cfg.machine)();
    machine.replicate_gpus(cfg.gpus);
    if let Some(link) = &cfg.link {
        machine.link = link.clone();
    }
    machine.scale_fixed_costs(cfg.fixed_cost_scale);
    let instance = app.instantiate(&mut machine, bytes, seed);
    let kernels: Vec<&dyn StreamKernel> = instance
        .kernels
        .iter()
        .map(|k| k.as_ref() as &dyn StreamKernel)
        .collect();
    let source = make_source(instance.streams[0].len());
    let result = run_bigkernel_streamed(
        &mut machine,
        &kernels,
        &instance.streams,
        cfg.launch,
        &cfg.bigkernel,
        scfg,
        source.as_ref(),
    );
    if let Err(e) = (instance.verify)(&machine) {
        panic!(
            "{} failed verification under streaming: {e}",
            app.spec().name
        );
    }
    (result, machine)
}

/// [`run_streamed`] over a constant-rate [`ReplaySource`] delivering
/// `bytes_per_sec` — the common case for benchmarks and determinism tests.
pub fn run_streamed_at_rate(
    app: &dyn BenchApp,
    bytes: u64,
    seed: u64,
    cfg: &HarnessConfig,
    scfg: &StreamConfig,
    bytes_per_sec: f64,
) -> (StreamResult, Machine) {
    run_streamed(app, bytes, seed, cfg, scfg, &|len| {
        Box::new(ReplaySource::new(len, bytes_per_sec))
    })
}

/// Word Count whose text flips from short words (2–4 letters) to long words
/// (9–12 letters) at the stream midpoint: the words-per-byte density — and
/// with it the hash-table atomic density the fingerprint tracks — drops by
/// roughly 3x.
pub struct DriftingWordCount {
    /// Vocabulary size *per phase* (the phases use disjoint vocabularies).
    pub vocab: usize,
    /// Zipf skew of word frequencies in both phases.
    pub skew: f64,
}

impl Default for DriftingWordCount {
    fn default() -> Self {
        DriftingWordCount {
            vocab: 2048,
            skew: 1.0,
        }
    }
}

impl BenchApp for DriftingWordCount {
    fn spec(&self) -> AppSpec {
        AppSpec {
            name: "Word Count (drifting)",
            paper_data_size: "synthetic",
            record_type: "Variable-length",
            paper_read_pct: 100,
            paper_modified_pct: 0,
            pattern_applicable: true,
        }
    }

    fn instantiate(&self, machine: &mut Machine, bytes: u64, seed: u64) -> Instance {
        let half = bytes / 2;
        let mut text = generate_text_sized(half, self.vocab, self.skew, seed, 2, 4);
        text.extend(generate_text_sized(
            bytes - half,
            self.vocab,
            self.skew,
            seed ^ 0x9e37_79b9_7f4a_7c15,
            9,
            MAX_WORD,
        ));
        let expected = reference_counts(&text);
        let region = machine.hmem.alloc_from(&text);
        let stream = StreamArray::map(machine, StreamId(0), region);

        // Two disjoint phase vocabularies share the table.
        let slots = (self.vocab as u64 * 8).next_power_of_two();
        let buf = machine.gmem.alloc(DevHashTable::bytes_for(slots));
        let table = DevHashTable { buf, slots };

        let verify = move |m: &Machine| -> Result<(), String> {
            let total: u64 = expected.values().sum();
            let got_total = table.total(&m.gmem);
            if got_total != total {
                return Err(format!("total words {got_total} != expected {total}"));
            }
            for (&key, &count) in &expected {
                let got = table.get(&m.gmem, key);
                if got != count {
                    return Err(format!("word key {key:#x}: count {got} != {count}"));
                }
            }
            if table.occupied(&m.gmem) != expected.len() as u64 {
                return Err("spurious words counted".into());
            }
            Ok(())
        };

        Instance {
            kernels: vec![Box::new(WordCountKernel {
                table,
                text_len: bytes,
            })],
            streams: vec![stream],
            scratch_streams: vec![],
            fused: None,
            verify: Box::new(verify),
        }
    }
}

/// Bytes per drifting-FilterCount record (same layout as
/// [`crate::filtercount::RECORD`]: 8-byte value + 8-byte payload).
pub const FC_RECORD: u64 = 16;
/// Phase-1 keep threshold on `value & 0xFF` (~39% selectivity).
pub const FC_NARROW: u64 = 100;
/// Phase-2 keep threshold on `(value ^ payload) & 0xFF` (~78% selectivity).
pub const FC_WIDE: u64 = 200;

/// The drifting filter+count kernel: one pass, one device counter. Records
/// before `flip_at` are filtered on the value field alone; from `flip_at`
/// on, the payload joins both the gather and the predicate — the "feed
/// version bump" schema-drift scenario.
pub struct DriftingFilterKernel {
    /// Absolute byte offset of the first phase-2 record.
    pub flip_at: u64,
    /// Device buffer holding the single kept-record counter.
    pub count_buf: DevBufId,
}

impl DriftingFilterKernel {
    fn keep(&self, off: u64, value: u64, payload: u64) -> bool {
        if off < self.flip_at {
            value & 0xFF < FC_NARROW
        } else {
            (value ^ payload) & 0xFF < FC_WIDE
        }
    }
}

impl StreamKernel for DriftingFilterKernel {
    fn name(&self) -> &'static str {
        "filtercount-drift"
    }

    /// Count bumps are commutative atomic adds with discarded returns.
    fn device_effects(&self) -> DeviceEffects {
        DeviceEffects::Replayable
    }

    fn record_size(&self) -> Option<u64> {
        Some(FC_RECORD)
    }

    fn addresses(&self, ctx: &mut AddrGenCtx<'_>, range: Range<u64>) {
        let mut off = range.start;
        while off < range.end {
            ctx.emit_read(StreamId(0), off, 8);
            if off >= self.flip_at {
                ctx.emit_read(StreamId(0), off + 8, 8);
            }
            ctx.alu(1);
            off += FC_RECORD;
        }
    }

    fn process(&self, ctx: &mut dyn KernelCtx, range: Range<u64>) {
        let mut off = range.start;
        while off < range.end {
            let v = ctx.stream_read(StreamId(0), off, 8);
            let p = if off >= self.flip_at {
                ctx.stream_read(StreamId(0), off + 8, 8)
            } else {
                0
            };
            ctx.alu(2);
            if self.keep(off, v, p) {
                ctx.dev_atomic_add_u64(self.count_buf, 0, 1);
            }
            off += FC_RECORD;
        }
    }
}

/// FilterCount whose record schema flips at the stream midpoint (see
/// [`DriftingFilterKernel`]).
#[derive(Default)]
pub struct DriftingFilterCount;

impl BenchApp for DriftingFilterCount {
    fn spec(&self) -> AppSpec {
        AppSpec {
            name: "FilterCount (drifting)",
            paper_data_size: "synthetic",
            record_type: "Fixed-length",
            // Phase 1 reads 8 of 16 bytes; phase 2 reads all 16.
            paper_read_pct: 75,
            paper_modified_pct: 0,
            pattern_applicable: true,
        }
    }

    fn instantiate(&self, machine: &mut Machine, bytes: u64, seed: u64) -> Instance {
        let n = (bytes / FC_RECORD).max(1);
        let flip_at = n / 2 * FC_RECORD;
        let mut rng = SplitMix64::new(seed);

        let count_buf = machine.gmem.alloc(8);
        let kernel = DriftingFilterKernel { flip_at, count_buf };

        let region = machine.hmem.alloc(n * FC_RECORD);
        let mut expected = 0u64;
        {
            let data = machine.hmem.bytes_mut(region);
            for r in 0..n {
                let base = (r * FC_RECORD) as usize;
                let v = rng.next_u64();
                let p = rng.next_u64();
                data[base..base + 8].copy_from_slice(&v.to_le_bytes());
                data[base + 8..base + 16].copy_from_slice(&p.to_le_bytes());
                if kernel.keep(r * FC_RECORD, v, p) {
                    expected += 1;
                }
            }
        }
        let stream = StreamArray::map(machine, StreamId(0), region);

        let verify = move |m: &Machine| -> Result<(), String> {
            let got = m.gmem.read_u64(count_buf, 0);
            if got != expected {
                return Err(format!("kept-record count {got} != {expected}"));
            }
            Ok(())
        };

        Instance {
            kernels: vec![Box::new(kernel)],
            streams: vec![stream],
            scratch_streams: vec![],
            fused: None,
            verify: Box::new(verify),
        }
    }
}

/// Bytes per drifting-K-means record (same layout as
/// [`crate::kmeans::RECORD`]).
pub const KM_RECORD: u64 = 64;
/// Offset of the written cluster-id field.
const KM_CID_OFF: u64 = 32;
/// Offset of the phase-2 per-record weight field.
const KM_WEIGHT_OFF: u64 = 40;
/// Coordinate dimensions (matches the batch K-means app).
const KM_DIMS: usize = 4;

/// The drifting K-means assignment kernel: every record gets its nearest
/// cluster id written back; records from `flip_at` on additionally carry a
/// weight that is gathered and atomically accumulated into per-cluster
/// weighted populations on the device.
pub struct DriftingKMeansKernel {
    /// Device-resident centroid array (`k` rows of 4 doubles).
    pub clusters_buf: DevBufId,
    /// Number of clusters.
    pub k: u32,
    /// Absolute byte offset of the first weighted (phase-2) record.
    pub flip_at: u64,
    /// `k` u64 weighted-population counters.
    pub counts_buf: DevBufId,
}

impl StreamKernel for DriftingKMeansKernel {
    fn name(&self) -> &'static str {
        "kmeans-drift"
    }

    /// Centroids are read-only; population adds commute.
    fn device_effects(&self) -> DeviceEffects {
        DeviceEffects::Replayable
    }

    fn record_size(&self) -> Option<u64> {
        Some(KM_RECORD)
    }

    fn addresses(&self, ctx: &mut AddrGenCtx<'_>, range: Range<u64>) {
        let mut off = range.start;
        while off < range.end {
            for f in 0..KM_DIMS as u64 {
                ctx.emit_read(StreamId(0), off + f * 8, 8);
            }
            if off >= self.flip_at {
                ctx.emit_read(StreamId(0), off + KM_WEIGHT_OFF, 8);
            }
            ctx.emit_write(StreamId(0), off + KM_CID_OFF, 8);
            ctx.alu(2);
            off += KM_RECORD;
        }
    }

    fn process(&self, ctx: &mut dyn KernelCtx, range: Range<u64>) {
        if range.is_empty() {
            return;
        }
        // Stage the centroid array once per chunk invocation, like the
        // batch K-means kernel.
        let clusters: Vec<[f64; KM_DIMS]> = (0..self.k as u64)
            .map(|c| {
                let mut centre = [0.0; KM_DIMS];
                for (i, v) in centre.iter_mut().enumerate() {
                    *v = ctx.dev_read_f64(self.clusters_buf, c * 32 + i as u64 * 8);
                }
                centre
            })
            .collect();
        let mut off = range.start;
        while off < range.end {
            let mut p = [0.0; KM_DIMS];
            for (i, v) in p.iter_mut().enumerate() {
                *v = ctx.stream_read_f64(StreamId(0), off + i as u64 * 8);
            }
            ctx.alu(2 * KM_DIMS as u64 * self.k as u64);
            ctx.shared_at_strided(0, 32, self.k, 8);
            let cid = closest_cluster(&p, &clusters);
            ctx.stream_write_u64(StreamId(0), off + KM_CID_OFF, cid);
            if off >= self.flip_at {
                let w = ctx.stream_read(StreamId(0), off + KM_WEIGHT_OFF, 8);
                ctx.alu(1);
                ctx.dev_atomic_add_u64(self.counts_buf, cid * 8, w);
            }
            off += KM_RECORD;
        }
    }
}

/// K-means whose records grow a weight field at the stream midpoint (see
/// [`DriftingKMeansKernel`]).
pub struct DriftingKMeans {
    /// Number of clusters.
    pub k: u32,
}

impl Default for DriftingKMeans {
    fn default() -> Self {
        DriftingKMeans { k: 8 }
    }
}

impl BenchApp for DriftingKMeans {
    fn spec(&self) -> AppSpec {
        AppSpec {
            name: "K-means (drifting)",
            paper_data_size: "synthetic",
            record_type: "Fixed-length",
            // Phase 1 reads 32 of 64 bytes; phase 2 reads 40.
            paper_read_pct: 56,
            paper_modified_pct: 12,
            pattern_applicable: true,
        }
    }

    fn instantiate(&self, machine: &mut Machine, bytes: u64, seed: u64) -> Instance {
        let n = (bytes / KM_RECORD).max(1);
        let flip_at = n / 2 * KM_RECORD;
        let mut rng = SplitMix64::new(seed);

        let clusters: Vec<[f64; KM_DIMS]> = (0..self.k)
            .map(|_| {
                let mut c = [0.0; KM_DIMS];
                for v in c.iter_mut() {
                    *v = rng.next_f64() * 1000.0;
                }
                c
            })
            .collect();
        let clusters_buf = machine.gmem.alloc(self.k as u64 * 32);
        for (i, c) in clusters.iter().enumerate() {
            for (d, &v) in c.iter().enumerate() {
                machine
                    .gmem
                    .write_f64(clusters_buf, i as u64 * 32 + d as u64 * 8, v);
            }
        }

        let region = machine.hmem.alloc(n * KM_RECORD);
        {
            let data = machine.hmem.bytes_mut(region);
            for r in 0..n {
                let base = (r * KM_RECORD) as usize;
                for d in 0..KM_DIMS {
                    let v = rng.next_f64() * 1000.0;
                    data[base + d * 8..base + d * 8 + 8].copy_from_slice(&v.to_le_bytes());
                }
                data[base + KM_CID_OFF as usize..base + KM_CID_OFF as usize + 8]
                    .copy_from_slice(&u64::MAX.to_le_bytes());
                let w = rng.next_below(8) + 1;
                data[base + KM_WEIGHT_OFF as usize..base + KM_WEIGHT_OFF as usize + 8]
                    .copy_from_slice(&w.to_le_bytes());
                rng.fill_bytes(&mut data[base + 48..base + 64]);
            }
        }
        let stream = StreamArray::map(machine, StreamId(0), region);
        let counts_buf = machine.gmem.alloc(self.k as u64 * 8);

        let verify_clusters = clusters;
        let k = self.k;
        let verify = move |m: &Machine| -> Result<(), String> {
            let mut want_counts = vec![0u64; k as usize];
            for r in 0..n {
                let base = r * KM_RECORD;
                let mut p = [0.0; KM_DIMS];
                for (i, v) in p.iter_mut().enumerate() {
                    *v = m.hmem.read_f64(region, base + i as u64 * 8);
                }
                let want = closest_cluster(&p, &verify_clusters);
                let got = m.hmem.read_u64(region, base + KM_CID_OFF);
                if got != want {
                    return Err(format!("record {r}: cid {got} != expected {want}"));
                }
                if base >= flip_at {
                    want_counts[want as usize] += m.hmem.read_u64(region, base + KM_WEIGHT_OFF);
                }
            }
            for (c, &want) in want_counts.iter().enumerate() {
                let got = m.gmem.read_u64(counts_buf, c as u64 * 8);
                if got != want {
                    return Err(format!("cluster {c}: weighted population {got} != {want}"));
                }
            }
            Ok(())
        };

        Instance {
            kernels: vec![Box::new(DriftingKMeansKernel {
                clusters_buf,
                k: self.k,
                flip_at,
                counts_buf,
            })],
            streams: vec![stream],
            scratch_streams: vec![],
            fused: None,
            verify: Box::new(verify),
        }
    }
}

/// The drifting applications, boxed for sweeps (bench `streaming` binary).
pub fn drifting_apps() -> Vec<Box<dyn BenchApp + Sync>> {
    vec![
        Box::new(DriftingWordCount::default()),
        Box::new(DriftingFilterCount),
        Box::new(DriftingKMeans::default()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use bk_runtime::WindowPolicy;

    // FilterCount's schema flip doubles gather and atomic density — a
    // relative change of exactly 0.5 against the larger magnitude — so the
    // tests run with the threshold just below that.
    fn scfg(window_bytes: u64) -> StreamConfig {
        StreamConfig {
            policy: WindowPolicy::ByBytes(window_bytes),
            queue_bound: 2,
            redetect_threshold: 0.4,
            ..StreamConfig::default()
        }
    }

    #[test]
    fn drifting_filtercount_verifies_and_redetects() {
        let cfg = HarnessConfig::test_small();
        let (r, _m) = run_streamed_at_rate(
            &DriftingFilterCount,
            64 * 1024,
            42,
            &cfg,
            &scfg(8 * 1024),
            1e9,
        );
        assert_eq!(r.windows.len(), 8);
        assert!(r.redetects >= 1, "schema flip must trigger re-detection");
        assert_eq!(r.metrics.get("stream.redetect"), r.redetects);
        assert_eq!(
            r.windows.iter().filter(|w| w.drifted).count() as u64,
            r.redetects
        );
    }

    #[test]
    fn drifting_wordcount_verifies_under_streaming() {
        let app = DriftingWordCount {
            vocab: 256,
            skew: 1.0,
        };
        let cfg = HarnessConfig::test_small();
        let (r, _m) = run_streamed_at_rate(&app, 48 * 1024, 42, &cfg, &scfg(16 * 1024), 1e6);
        assert_eq!(r.windows.len(), 3);
        assert!(r.sustained_bytes_per_sec > 0.0);
    }

    #[test]
    fn drifting_kmeans_verifies_and_redetects() {
        let app = DriftingKMeans { k: 4 };
        let cfg = HarnessConfig::test_small();
        let (r, _m) = run_streamed_at_rate(&app, 64 * 1024, 7, &cfg, &scfg(16 * 1024), 1e9);
        assert!(
            r.redetects >= 1,
            "weight-field appearance must trigger re-detection"
        );
    }

    #[test]
    fn custom_sources_flow_through_the_helper() {
        use bk_runtime::{HiccupSource, ReplaySource};
        use bk_simcore::SimTime;
        let cfg = HarnessConfig::test_small();
        let (r, _m) = run_streamed(
            &DriftingFilterCount,
            32 * 1024,
            3,
            &cfg,
            &scfg(8 * 1024),
            &|len| {
                Box::new(HiccupSource::new(
                    ReplaySource::new(len, 1e8),
                    3,
                    SimTime::from_micros(50.0),
                    9,
                ))
            },
        );
        // Hiccups delay but never drop: every window still completes.
        assert_eq!(r.windows.len(), 4);
        assert!(r.windows.iter().all(|w| !w.completed.is_zero()));
    }
}

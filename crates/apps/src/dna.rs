//! DNA Assembly (paper §V): merge DNA fragments to reconstruct a sequence.
//!
//! Mapped data: fixed 128-byte fragment records. Following the paper's
//! description, the kernel hashes a fixed *portion* of each fragment (the
//! k-mer window) and counts identical fragments in a device hash table, the
//! first phase of Meraculous-style assembly used to deduplicate and drop
//! noisy reads. The kernel reads the 4-byte id plus a 42-byte window
//! (46 B = 36% of the record, matching Table I); records are large enough
//! that consecutive threads' reads can never coalesce in the original
//! layout — the paper's example of an application that is *inherently*
//! uncoalesced without BigKernel's layout optimization.

use crate::harness::{AppSpec, BenchApp, Instance};
use crate::util::{fnv1a_step, DevHashTable, FNV_OFFSET};
use bk_runtime::ctx::AddrGenCtx;
use bk_runtime::{KernelCtx, Machine, StreamArray, StreamId, ValueExt};
use bk_simcore::{SplitMix64, Zipf};
use std::collections::HashMap;
use std::ops::Range;

/// Bytes per fragment record.
pub const RECORD: u64 = 128;
/// Offset of the fragment sequence within the record.
pub const SEQ_OFF: u64 = 16;
/// K-mer window length hashed for deduplication.
pub const KMER: u64 = 42;

const BASES: [u8; 4] = *b"ACGT";

#[inline]
fn key(h: u64) -> u64 {
    h | 1
}

/// Hash the k-mer window of a fragment (shared kernel/reference logic).
pub fn kmer_key(window: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in window {
        h = fnv1a_step(h, b);
    }
    key(h)
}

/// The fragment-deduplication kernel.
pub struct DnaKernel {
    pub table: DevHashTable,
}

impl bk_runtime::StreamKernel for DnaKernel {
    fn name(&self) -> &'static str {
        "dna-assembly"
    }

    /// Only hash-table CAS/adds touch device memory; CAS results are
    /// validated at replay, so concurrent block simulation is safe.
    fn device_effects(&self) -> bk_runtime::DeviceEffects {
        bk_runtime::DeviceEffects::Replayable
    }

    fn record_size(&self) -> Option<u64> {
        Some(RECORD)
    }

    fn addresses(&self, ctx: &mut AddrGenCtx<'_>, range: Range<u64>) {
        let mut off = range.start;
        while off < range.end {
            ctx.emit_read(StreamId(0), off, 4); // fragment id
            for i in 0..KMER {
                ctx.emit_read(StreamId(0), off + SEQ_OFF + i, 1);
            }
            ctx.alu(2);
            off += RECORD;
        }
    }

    fn process(&self, ctx: &mut dyn KernelCtx, range: Range<u64>) {
        let mut off = range.start;
        while off < range.end {
            let _id = ctx.stream_read_u32(StreamId(0), off);
            let mut h = FNV_OFFSET;
            for i in 0..KMER {
                let b = ctx.stream_read_u8(StreamId(0), off + SEQ_OFF + i);
                h = fnv1a_step(h, b);
                ctx.alu(2);
            }
            self.table.add(ctx, key(h), 1);
            off += RECORD;
        }
    }
}

/// The DNA Assembly benchmark application.
pub struct DnaAssembly {
    /// Number of distinct true sequences fragments are drawn from.
    pub distinct_fragments: usize,
}

impl Default for DnaAssembly {
    fn default() -> Self {
        DnaAssembly {
            distinct_fragments: 4096,
        }
    }
}

impl BenchApp for DnaAssembly {
    fn spec(&self) -> AppSpec {
        AppSpec {
            name: "DNA Assembly",
            paper_data_size: "4.5GB",
            record_type: "Fixed-length",
            paper_read_pct: 36,
            paper_modified_pct: 0,
            pattern_applicable: true,
        }
    }

    fn instantiate(&self, machine: &mut Machine, bytes: u64, seed: u64) -> Instance {
        let n = (bytes / RECORD).max(1);
        let mut rng = SplitMix64::new(seed);

        // Distinct source fragments; reads sample them with skew so some
        // fragments repeat many times (the duplicates assembly removes).
        let sources: Vec<Vec<u8>> = (0..self.distinct_fragments)
            .map(|_| {
                (0..RECORD - SEQ_OFF)
                    .map(|_| BASES[rng.next_below(4) as usize])
                    .collect()
            })
            .collect();
        let zipf = Zipf::new(self.distinct_fragments, 0.8);

        let region = machine.hmem.alloc(n * RECORD);
        let mut expected: HashMap<u64, u64> = HashMap::new();
        {
            let data = machine.hmem.bytes_mut(region);
            for r in 0..n {
                let base = (r * RECORD) as usize;
                let id = r as u32;
                data[base..base + 4].copy_from_slice(&id.to_le_bytes());
                rng.fill_bytes(&mut data[base + 4..base + SEQ_OFF as usize]);
                let src = &sources[zipf.sample(&mut rng)];
                data[base + SEQ_OFF as usize..base + RECORD as usize].copy_from_slice(src);
                *expected.entry(kmer_key(&src[..KMER as usize])).or_insert(0) += 1;
            }
        }
        let stream = StreamArray::map(machine, StreamId(0), region);

        let slots = (self.distinct_fragments as u64 * 4).next_power_of_two();
        let buf = machine.gmem.alloc(DevHashTable::bytes_for(slots));
        let table = DevHashTable { buf, slots };

        let verify = move |m: &Machine| -> Result<(), String> {
            let total: u64 = expected.values().sum();
            if table.total(&m.gmem) != total {
                return Err(format!(
                    "total fragments {} != expected {total}",
                    table.total(&m.gmem)
                ));
            }
            for (&k, &c) in &expected {
                let got = table.get(&m.gmem, k);
                if got != c {
                    return Err(format!("k-mer {k:#x}: {got} != {c}"));
                }
            }
            Ok(())
        };

        Instance {
            kernels: vec![Box::new(DnaKernel { table })],
            streams: vec![stream],
            scratch_streams: vec![],
            fused: None,
            verify: Box::new(verify),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{run_all, HarnessConfig, Implementation};

    #[test]
    fn kmer_key_distinguishes() {
        assert_ne!(kmer_key(b"ACGTACGT"), kmer_key(b"ACGTACGA"));
        assert_eq!(kmer_key(b"ACGT"), kmer_key(b"ACGT"));
        assert_ne!(kmer_key(b"ACGT"), 0);
    }

    #[test]
    fn all_implementations_agree() {
        let app = DnaAssembly {
            distinct_fragments: 64,
        };
        let cfg = HarnessConfig::test_small();
        run_all(&app, 64 * 1024, 42, &cfg, &Implementation::FIG4A);
    }

    #[test]
    fn read_proportion_matches_table1() {
        let app = DnaAssembly {
            distinct_fragments: 64,
        };
        let cfg = HarnessConfig::test_small();
        let results = run_all(&app, 128 * 1024, 3, &cfg, &[Implementation::BigKernel]);
        let c = &results[0].1.metrics;
        let read_pct = 100.0 * c.get("stream.bytes_read") as f64 / (128.0 * 1024.0);
        assert!((read_pct - 36.0).abs() < 2.0, "read {read_pct}%");
        assert_eq!(c.get("stream.bytes_written"), 0);
    }

    #[test]
    fn duplicates_are_counted() {
        let app = DnaAssembly {
            distinct_fragments: 4,
        };
        let mut m = Machine::test_platform();
        let inst = app.instantiate(&mut m, 64 * RECORD, 5);
        // 64 records over 4 distinct fragments → counts must exceed 1.
        let cfg = HarnessConfig::test_small();
        let r = crate::harness::run_implementation(&mut m, &inst, Implementation::CpuSerial, &cfg);
        (inst.verify)(&m).unwrap();
        assert!(r.total.secs() > 0.0);
    }
}

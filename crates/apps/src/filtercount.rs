//! Filter + Count: the fusion showcase scenario (DESIGN.md §15).
//!
//! Unlike the paper's six applications (hand-written [`StreamKernel`]s),
//! both passes here are expressed in the `bk-kernelc` IR, so the *compiler*
//! fuses them: [`fn@bk_kernelc::fuse`] proves the count pass's stream-1 reads
//! are covered by the filter pass's stream-1 writes, lowers the
//! intermediate stream into a device buffer, and stitches the bodies into
//! one kernel. The harness then runs that single fused kernel
//! ([`Instance::fused`]) instead of two sequential pipelines:
//!
//! * **Pass 1 — filter:** reads the 8-byte value of each 16-byte record,
//!   evaluates the keep-predicate branch-free, and writes the 0/1 flag to
//!   scratch stream 1 (8 bytes per record).
//! * **Pass 2 — count:** sums the flags over its range and flushes one
//!   atomic add into the device-side counter.
//!
//! Fusion elides both the flag write-back (d2h) and the pass-2 flag gather
//! (h2d) — the flags live and die in GPU memory — while the count is
//! bit-identical by construction: functional execution order is unchanged,
//! only the PCIe traffic differs.
//!
//! [`StreamKernel`]: bk_runtime::StreamKernel
//! [`Instance::fused`]: crate::harness::Instance::fused

use crate::harness::{AppSpec, BenchApp, Instance};
use bk_kernelc::ir::{BinOp, Expr, KernelIr, Stmt, Var, RANGE_END, RANGE_START};
use bk_kernelc::{fuse, intermediate_extent, IrKernel};
use bk_runtime::{Machine, StreamArray, StreamId};
use bk_simcore::SplitMix64;

/// Bytes per input record: an 8-byte value plus 8 bytes of payload.
pub const RECORD: u64 = 16;
/// Bytes per intermediate record: the 0/1 keep flag, kept at stream width.
pub const FLAG: u64 = 8;
/// Keep a record when `value & 0xFF < THRESHOLD` (~39% selectivity).
pub const THRESHOLD: u64 = 100;

/// Offset of `i`-th-record's flag in the intermediate: `(i / 16) * 8`.
fn repitch(i: Var) -> Expr {
    Expr::bin(
        BinOp::Mul,
        Expr::bin(BinOp::Div, Expr::var(i), Expr::int(RECORD)),
        Expr::int(FLAG),
    )
}

/// The filter pass IR: per record, read the value field and write the
/// keep flag to stream 1. Unconditional (branch-free), so the write set is
/// exact — the precondition for fusing it away.
pub fn filter_ir() -> KernelIr {
    let i = Var(2);
    let v = Var(3);
    KernelIr {
        name: "fc-filter",
        record_size: Some(RECORD),
        halo_bytes: 0,
        num_dev_bufs: 0,
        body: vec![
            Stmt::Assign(i, Expr::var(RANGE_START)),
            Stmt::While {
                cond: Expr::lt(Expr::var(i), Expr::var(RANGE_END)),
                body: vec![
                    Stmt::Assign(v, Expr::stream_read(0, Expr::var(i), 8)),
                    Stmt::Alu(3),
                    Stmt::StreamWrite {
                        stream: 1,
                        offset: repitch(i),
                        width: 8,
                        value: Expr::bin(
                            BinOp::Lt,
                            Expr::bin(BinOp::And, Expr::var(v), Expr::int(0xFF)),
                            Expr::int(THRESHOLD),
                        ),
                    },
                    Stmt::Assign(i, Expr::add(Expr::var(i), Expr::int(RECORD))),
                ],
            },
        ],
    }
}

/// The count pass IR: sum the flags of the range's records, then flush one
/// atomic add into device buffer 0 (guarded so empty lanes stay silent).
pub fn count_ir() -> KernelIr {
    let i = Var(2);
    let sum = Var(3);
    KernelIr {
        name: "fc-count",
        record_size: Some(RECORD),
        halo_bytes: 0,
        num_dev_bufs: 1,
        body: vec![
            Stmt::Assign(i, Expr::var(RANGE_START)),
            Stmt::Assign(sum, Expr::int(0)),
            Stmt::While {
                cond: Expr::lt(Expr::var(i), Expr::var(RANGE_END)),
                body: vec![
                    Stmt::Assign(
                        sum,
                        Expr::add(Expr::var(sum), Expr::stream_read(1, repitch(i), 8)),
                    ),
                    Stmt::Alu(1),
                    Stmt::Assign(i, Expr::add(Expr::var(i), Expr::int(RECORD))),
                ],
            },
            Stmt::If {
                cond: Expr::bin(BinOp::Ne, Expr::var(RANGE_START), Expr::var(RANGE_END)),
                then_body: vec![Stmt::DevAtomicAdd {
                    buf: 0,
                    offset: Expr::int(0),
                    value: Expr::var(sum),
                }],
                else_body: vec![],
            },
        ],
    }
}

/// The filter+count application.
#[derive(Default)]
pub struct FilterCount;

impl BenchApp for FilterCount {
    fn spec(&self) -> AppSpec {
        AppSpec {
            name: "FilterCount",
            paper_data_size: "synthetic",
            record_type: "Fixed-length",
            // The filter pass reads the 8-byte value of each 16-byte record.
            paper_read_pct: 50,
            paper_modified_pct: 0,
            pattern_applicable: true,
        }
    }

    fn instantiate(&self, machine: &mut Machine, bytes: u64, seed: u64) -> Instance {
        let n = (bytes / RECORD).max(1);
        let mut rng = SplitMix64::new(seed);

        let region = machine.hmem.alloc(n * RECORD);
        let mut expected = 0u64;
        {
            let data = machine.hmem.bytes_mut(region);
            for r in 0..n {
                let base = (r * RECORD) as usize;
                let v = rng.next_u64();
                data[base..base + 8].copy_from_slice(&v.to_le_bytes());
                rng.fill_bytes(&mut data[base + 8..base + RECORD as usize]);
                if v & 0xFF < THRESHOLD {
                    expected += 1;
                }
            }
        }
        let stream = StreamArray::map(machine, StreamId(0), region);
        // Intermediate flag stream: host backing for the *unfused* runs
        // (the fused kernel keeps flags in a device buffer instead).
        let flags_region = machine.hmem.alloc(n * FLAG);
        let flags = StreamArray::map(machine, StreamId(1), flags_region);

        let count_buf = machine.gmem.alloc(8);

        let a = filter_ir();
        let b = count_ir();
        let fused_ir = fuse(&a, &b, 1).expect("filter+count is fusable by construction");
        let extent =
            intermediate_extent(&a, 1, n * RECORD).expect("filter pass writes the intermediate");
        let inter_buf = machine.gmem.alloc(extent);
        let fused =
            IrKernel::compile(fused_ir, vec![count_buf, inter_buf]).expect("fused kernel compiles");
        let pass1 = IrKernel::compile(a, vec![]).expect("filter pass compiles");
        let pass2 = IrKernel::compile(b, vec![count_buf]).expect("count pass compiles");

        let verify = move |m: &Machine| -> Result<(), String> {
            let got = m.gmem.read_u64(count_buf, 0);
            if got != expected {
                return Err(format!("kept-record count {got} != {expected}"));
            }
            Ok(())
        };

        Instance {
            kernels: vec![Box::new(pass1), Box::new(pass2)],
            streams: vec![stream, flags],
            scratch_streams: vec![StreamId(1)],
            fused: Some(Box::new(fused)),
            verify: Box::new(verify),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{run_all, HarnessConfig, Implementation};

    #[test]
    fn pair_fuses_in_the_compiler() {
        let fused = fuse(&filter_ir(), &count_ir(), 1).expect("fusable");
        assert_eq!(fused.name, "fc-filter+fc-count");
        // a's 0 + b's 1 + the intermediate.
        assert_eq!(fused.num_dev_bufs, 2);
        assert_eq!(
            intermediate_extent(&filter_ir(), 1, 16 * RECORD),
            Some(16 * FLAG + FLAG)
        );
    }

    #[test]
    fn all_implementations_agree() {
        let cfg = HarnessConfig::test_small();
        run_all(&FilterCount, 64 * 1024, 42, &cfg, &Implementation::FIG4A);
    }

    #[test]
    fn fused_ir_kernel_verifies_and_cuts_transfer() {
        let bytes = 64 * 1024;
        let mut cfg = HarnessConfig::test_small();
        let unfused = run_all(&FilterCount, bytes, 9, &cfg, &[Implementation::BigKernel]);
        cfg.fuse = true;
        let fused = run_all(&FilterCount, bytes, 9, &cfg, &[Implementation::BigKernel]);

        let un = &unfused[0].1.metrics;
        let fu = &fused[0].1.metrics;
        assert_eq!(fu.get("fusion.fused"), 1, "IR fusion should be taken");
        assert_eq!(fu.get("fusion.refused"), 0);
        // Unfused traffic: value gather + flag write-back + flag gather
        // (~1.5x input). Fused: value gather only (~0.5x input).
        let un_bytes = un.get("pcie.h2d_bytes") + un.get("pcie.d2h_bytes");
        let fu_bytes = fu.get("pcie.h2d_bytes") + fu.get("pcie.d2h_bytes");
        assert!(
            fu_bytes + bytes / 2 < un_bytes,
            "fused {fu_bytes} vs unfused {un_bytes}"
        );
    }
}

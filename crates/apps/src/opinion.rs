//! Opinion Finder (paper §V): sentiment analysis of tweets about a subject.
//!
//! Mapped data: fixed 256-byte tweet records; the kernel reads the 4-byte
//! timestamp and the fixed 183-byte text area (187 B = 73% of the record,
//! matching Table I). Words of each tweet are looked up in three
//! device-resident dictionaries (positive, negative, adverb); a tweet
//! contributes to the aggregate sentiment score only when it mentions one of
//! the subject keywords, and an adverb doubles the weight of the following
//! sentiment word. The heavy per-character lexical analysis plus dictionary
//! probes make this the paper's computation-dominant benchmark.

use crate::harness::{AppSpec, BenchApp, Instance};
use crate::util::{fnv1a, fnv1a_step, DevHashTable, FNV_OFFSET};
use bk_runtime::ctx::AddrGenCtx;
use bk_runtime::{KernelCtx, Machine, StreamArray, StreamId, ValueExt};
use bk_simcore::{SplitMix64, Zipf};
use std::ops::Range;

/// Bytes per tweet record.
pub const RECORD: u64 = 256;
/// Offset/length of the fixed text area.
pub const TEXT_OFF: u64 = 64;
pub const TEXT_LEN: u64 = 183;

#[inline]
fn key(h: u64) -> u64 {
    h | 1
}

/// Sentiment dictionaries (device-resident sets keyed by word hash).
#[derive(Clone, Copy)]
pub struct Dictionaries {
    pub positive: DevHashTable,
    pub negative: DevHashTable,
    pub adverbs: DevHashTable,
    pub subject: DevHashTable,
}

/// Score one tweet's text given per-word class lookups — shared between the
/// kernel (device dictionaries) and the reference (host sets).
///
/// `classify(word_hash) -> (is_subject, is_positive, is_negative, is_adverb)`
pub fn score_text<F: FnMut(u64) -> (bool, bool, bool, bool)>(text: &[u8], mut classify: F) -> i64 {
    let mut score = 0i64;
    let mut mentioned = false;
    let mut adverb_boost = 1i64;
    let mut h = FNV_OFFSET;
    let mut in_word = false;
    for &c in text.iter().chain(std::iter::once(&b' ')) {
        if c == b' ' {
            if in_word {
                let (subj, pos, neg, adv) = classify(key(h));
                if subj {
                    mentioned = true;
                }
                if pos {
                    score += adverb_boost;
                }
                if neg {
                    score -= adverb_boost;
                }
                adverb_boost = if adv { 2 } else { 1 };
                h = FNV_OFFSET;
                in_word = false;
            }
        } else {
            h = fnv1a_step(h, c);
            in_word = true;
        }
    }
    if mentioned {
        score
    } else {
        0
    }
}

/// The sentiment kernel.
pub struct OpinionKernel {
    pub dicts: Dictionaries,
    /// Aggregate score accumulator (one u64 cell, wrapping-signed).
    pub acc: bk_runtime::DevBufId,
}

impl bk_runtime::StreamKernel for OpinionKernel {
    fn name(&self) -> &'static str {
        "opinion-finder"
    }

    /// The single device effect is an `atomic_add` to the score accumulator
    /// whose return is ignored — commutative, hence log-replayable.
    fn device_effects(&self) -> bk_runtime::DeviceEffects {
        bk_runtime::DeviceEffects::Replayable
    }

    fn record_size(&self) -> Option<u64> {
        Some(RECORD)
    }

    fn addresses(&self, ctx: &mut AddrGenCtx<'_>, range: Range<u64>) {
        let mut off = range.start;
        while off < range.end {
            ctx.emit_read(StreamId(0), off, 4); // timestamp
            for i in 0..TEXT_LEN {
                ctx.emit_read(StreamId(0), off + TEXT_OFF + i, 1);
            }
            ctx.alu(2);
            off += RECORD;
        }
    }

    fn process(&self, ctx: &mut dyn KernelCtx, range: Range<u64>) {
        let mut total = 0i64;
        let mut off = range.start;
        while off < range.end {
            let _ts = ctx.stream_read_u32(StreamId(0), off);
            // Read the fixed text area byte by byte (same order as emitted).
            let mut text = [b' '; TEXT_LEN as usize];
            for (i, t) in text.iter_mut().enumerate() {
                *t = ctx.stream_read_u8(StreamId(0), off + TEXT_OFF + i as u64);
                ctx.alu(3); // tokenizer state machine + hashing
            }
            let dicts = self.dicts;
            total += score_text(&text, |k| {
                (
                    dicts.subject.contains(ctx, k),
                    dicts.positive.contains(ctx, k),
                    dicts.negative.contains(ctx, k),
                    dicts.adverbs.contains(ctx, k),
                )
            });
            off += RECORD;
        }
        if range.start < range.end {
            ctx.dev_atomic_add_u64(self.acc, 0, total as u64);
        }
    }
}

/// The Opinion Finder benchmark application.
pub struct OpinionFinder {
    pub vocab: usize,
}

impl Default for OpinionFinder {
    fn default() -> Self {
        OpinionFinder { vocab: 4096 }
    }
}

impl BenchApp for OpinionFinder {
    fn spec(&self) -> AppSpec {
        AppSpec {
            name: "Opinion Finder",
            paper_data_size: "6.2GB",
            record_type: "Fixed-length",
            paper_read_pct: 73,
            paper_modified_pct: 0,
            pattern_applicable: true,
        }
    }

    fn instantiate(&self, machine: &mut Machine, bytes: u64, seed: u64) -> Instance {
        let n = (bytes / RECORD).max(1);
        let mut rng = SplitMix64::new(seed);

        // Vocabulary and word classes.
        let words: Vec<Vec<u8>> = (0..self.vocab)
            .map(|_| {
                let len = rng.range_inclusive(2, 10) as usize;
                (0..len).map(|_| b'a' + rng.next_below(26) as u8).collect()
            })
            .collect();
        let class_of = |i: usize| (i.is_multiple_of(17), i % 11 == 1, i % 11 == 2, i % 29 == 3);
        // (subject, positive, negative, adverb) membership by vocab index.

        // Device dictionaries.
        let mk_set = |machine: &mut Machine, pred: &dyn Fn(usize) -> bool| {
            let slots = (self.vocab as u64 * 4).next_power_of_two();
            let buf = machine.gmem.alloc(DevHashTable::bytes_for(slots));
            let t = DevHashTable { buf, slots };
            // Host-side fill (setup cost is not part of the measured run,
            // matching the paper's treatment of dictionary upload).
            for (i, w) in words.iter().enumerate() {
                if pred(i) {
                    host_set_insert(machine, t, key(fnv1a(w)));
                }
            }
            t
        };
        let dicts = Dictionaries {
            subject: mk_set(machine, &|i| class_of(i).0),
            positive: mk_set(machine, &|i| class_of(i).1),
            negative: mk_set(machine, &|i| class_of(i).2),
            adverbs: mk_set(machine, &|i| class_of(i).3),
        };

        // Tweets.
        let zipf = Zipf::new(self.vocab, 1.0);
        let region = machine.hmem.alloc(n * RECORD);
        let mut expected = 0i64;
        {
            // Reference classification by word hash. Random vocabularies
            // contain duplicate words; the device dictionaries then hold the
            // *union* of the duplicates' classes, so the reference must OR
            // them too.
            let mut class_map = std::collections::HashMap::<u64, (bool, bool, bool, bool)>::new();
            for (i, w) in words.iter().enumerate() {
                let e = class_map
                    .entry(key(fnv1a(w)))
                    .or_insert((false, false, false, false));
                let c = class_of(i);
                e.0 |= c.0;
                e.1 |= c.1;
                e.2 |= c.2;
                e.3 |= c.3;
            }

            let data = machine.hmem.bytes_mut(region);
            for r in 0..n {
                let base = (r * RECORD) as usize;
                let ts = rng.next_below(1 << 30) as u32;
                data[base..base + 4].copy_from_slice(&ts.to_le_bytes());
                rng.fill_bytes(&mut data[base + 4..base + TEXT_OFF as usize]);
                // Text: words until the area is full, space-padded.
                let text_area =
                    &mut data[base + TEXT_OFF as usize..base + (TEXT_OFF + TEXT_LEN) as usize];
                text_area.fill(b' ');
                let mut pos = 0usize;
                loop {
                    let w = &words[zipf.sample(&mut rng)];
                    if pos + w.len() + 1 > TEXT_LEN as usize {
                        break;
                    }
                    text_area[pos..pos + w.len()].copy_from_slice(w);
                    pos += w.len() + 1;
                }
                rng.fill_bytes(
                    &mut data[base + (TEXT_OFF + TEXT_LEN) as usize..base + RECORD as usize],
                );
                let text_copy: Vec<u8> =
                    data[base + TEXT_OFF as usize..base + (TEXT_OFF + TEXT_LEN) as usize].to_vec();
                expected += score_text(&text_copy, |k| {
                    class_map
                        .get(&k)
                        .copied()
                        .unwrap_or((false, false, false, false))
                });
            }
        }
        let stream = StreamArray::map(machine, StreamId(0), region);
        let acc = machine.gmem.alloc(8);

        let verify = move |m: &Machine| -> Result<(), String> {
            let got = m.gmem.read_u64(acc, 0) as i64;
            if got != expected {
                return Err(format!("sentiment {got} != expected {expected}"));
            }
            Ok(())
        };

        Instance {
            kernels: vec![Box::new(OpinionKernel { dicts, acc })],
            streams: vec![stream],
            scratch_streams: vec![],
            fused: None,
            verify: Box::new(verify),
        }
    }
}

/// Host-side insert into a device hash set (setup path, no kernel costs).
fn host_set_insert(machine: &mut Machine, t: DevHashTable, k: u64) {
    let mut i = k & (t.slots - 1);
    loop {
        let off = i * crate::util::HASH_ENTRY_BYTES;
        let tag = machine.gmem.read_u64(t.buf, off);
        if tag == 0 {
            machine.gmem.write_u64(t.buf, off, k);
            machine.gmem.write_u64(t.buf, off + 8, 1);
            return;
        }
        if tag == k {
            return;
        }
        i = (i + 1) & (t.slots - 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{run_all, HarnessConfig, Implementation};

    #[test]
    fn score_text_rules() {
        // classes keyed on the word text for clarity
        let classify = |k: u64| {
            let mk = |w: &[u8]| key(fnv1a(w));
            (
                k == mk(b"topic"),
                k == mk(b"good"),
                k == mk(b"bad"),
                k == mk(b"very"),
            )
        };
        // No subject mention → 0 regardless of sentiment.
        assert_eq!(score_text(b"good good bad", classify), 0);
        // Mentioned: +1 +1 -1 = 1.
        assert_eq!(score_text(b"topic good good bad", classify), 1);
        // Adverb doubles the next word: very good = +2.
        assert_eq!(score_text(b"topic very good", classify), 2);
        // Adverb boost applies only to the immediately following word.
        assert_eq!(score_text(b"topic very good good", classify), 3);
        assert_eq!(score_text(b"topic very bad", classify), -2);
    }

    #[test]
    fn all_implementations_agree() {
        let app = OpinionFinder { vocab: 128 };
        let cfg = HarnessConfig::test_small();
        run_all(&app, 64 * 1024, 42, &cfg, &Implementation::FIG4A);
    }

    #[test]
    fn read_proportion_matches_table1() {
        let app = OpinionFinder { vocab: 128 };
        let cfg = HarnessConfig::test_small();
        let results = run_all(&app, 64 * 1024, 3, &cfg, &[Implementation::BigKernel]);
        let c = &results[0].1.metrics;
        let read_pct = 100.0 * c.get("stream.bytes_read") as f64 / (64.0 * 1024.0);
        assert!((read_pct - 73.0).abs() < 2.0, "read {read_pct}%");
    }
}

//! Shared helpers for the application kernels: hashing and the
//! open-addressing device hash table used by Word Count, DNA Assembly and
//! MasterCard Affinity.

use bk_runtime::{DevBufId, KernelCtx};

/// FNV-1a over a byte slice (64-bit).
#[inline]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Incremental FNV-1a: start value.
pub const FNV_OFFSET: u64 = 0xcbf29ce484222325;

/// Incremental FNV-1a: fold one byte.
#[inline]
pub fn fnv1a_step(h: u64, b: u8) -> u64 {
    (h ^ b as u64).wrapping_mul(0x100000001b3)
}

/// An open-addressing (linear probing) hash table in device memory, keyed by
/// a non-zero 64-bit tag with a 64-bit counter per entry:
///
/// ```text
/// entry i: [ tag: u64 ][ count: u64 ]   (16 bytes)
/// ```
///
/// Insertion claims a slot with `atomicCAS(tag, 0, key)` and bumps the
/// counter with `atomicAdd` — the idiom GPU word-count kernels use, and the
/// "centralized hash table … requiring synchronization with attendant
/// overheads" the paper blames for Word Count's dominant computation stage.
#[derive(Clone, Copy, Debug)]
pub struct DevHashTable {
    pub buf: DevBufId,
    /// Number of slots; power of two.
    pub slots: u64,
}

pub const HASH_ENTRY_BYTES: u64 = 16;

impl DevHashTable {
    /// Bytes to allocate for `slots` slots.
    pub fn bytes_for(slots: u64) -> u64 {
        assert!(slots.is_power_of_two(), "slot count must be a power of two");
        slots * HASH_ENTRY_BYTES
    }

    /// Add `delta` to the counter for `key` (key must be non-zero),
    /// claiming a slot if needed. Runs through the kernel context so every
    /// probe/atomic is costed. Panics if the table is full.
    pub fn add(&self, ctx: &mut dyn KernelCtx, key: u64, delta: u64) {
        debug_assert!(key != 0, "zero keys are reserved for empty slots");
        let mut i = key & (self.slots - 1);
        for _probe in 0..self.slots {
            let off = i * HASH_ENTRY_BYTES;
            let seen = ctx.dev_atomic_cas_u64(self.buf, off, 0, key);
            if seen == 0 || seen == key {
                ctx.dev_atomic_add_u64(self.buf, off + 8, delta);
                return;
            }
            ctx.alu(2);
            i = (i + 1) & (self.slots - 1);
        }
        panic!("device hash table full ({} slots)", self.slots);
    }

    /// Read the counter for `key` (0 when absent) — host-side verification
    /// helper, does not charge kernel cost.
    pub fn get(&self, gmem: &bk_gpu::GpuMemory, key: u64) -> u64 {
        let mut i = key & (self.slots - 1);
        for _ in 0..self.slots {
            let off = i * HASH_ENTRY_BYTES;
            let tag = gmem.read_u64(self.buf, off);
            if tag == key {
                return gmem.read_u64(self.buf, off + 8);
            }
            if tag == 0 {
                return 0;
            }
            i = (i + 1) & (self.slots - 1);
        }
        0
    }

    /// Membership test through the kernel context (costed probes, no
    /// mutation) — used by Affinity pass 2.
    pub fn contains(&self, ctx: &mut dyn KernelCtx, key: u64) -> bool {
        let mut i = key & (self.slots - 1);
        for _ in 0..self.slots {
            let off = i * HASH_ENTRY_BYTES;
            let tag = ctx.dev_read(self.buf, off, 8);
            if tag == key {
                return true;
            }
            if tag == 0 {
                return false;
            }
            ctx.alu(2);
            i = (i + 1) & (self.slots - 1);
        }
        false
    }

    /// Sum of all counters (verification helper).
    pub fn total(&self, gmem: &bk_gpu::GpuMemory) -> u64 {
        (0..self.slots)
            .map(|i| {
                let off = i * HASH_ENTRY_BYTES;
                if gmem.read_u64(self.buf, off) != 0 {
                    gmem.read_u64(self.buf, off + 8)
                } else {
                    0
                }
            })
            .sum()
    }

    /// Number of occupied slots (verification helper).
    pub fn occupied(&self, gmem: &bk_gpu::GpuMemory) -> u64 {
        (0..self.slots)
            .filter(|&i| gmem.read_u64(self.buf, i * HASH_ENTRY_BYTES) != 0)
            .count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bk_host::CacheSim;
    use bk_runtime::{Machine, StreamArray, StreamId};

    fn ctx_machine() -> (Machine, Vec<StreamArray>) {
        let mut m = Machine::test_platform();
        let r = m.hmem.alloc(64);
        let s = vec![StreamArray::map(&m, StreamId(0), r)];
        (m, s)
    }

    #[test]
    fn fnv_distinguishes_and_is_stable() {
        assert_ne!(fnv1a(b"hello"), fnv1a(b"world"));
        assert_eq!(fnv1a(b"hello"), fnv1a(b"hello"));
        let mut h = FNV_OFFSET;
        for &b in b"hello" {
            h = fnv1a_step(h, b);
        }
        assert_eq!(h, fnv1a(b"hello"));
    }

    #[test]
    fn hash_table_add_get_total() {
        let (mut m, streams) = ctx_machine();
        let buf = m.gmem.alloc(DevHashTable::bytes_for(64));
        let table = DevHashTable { buf, slots: 64 };
        let mut cache = CacheSim::xeon_llc();
        let mut ctx = bk_baselines_test_ctx(&mut m, &streams, &mut cache);
        table.add(&mut ctx, 42, 3);
        table.add(&mut ctx, 42, 2);
        table.add(&mut ctx, 7, 1);
        assert!(table.contains(&mut ctx, 42));
        assert!(!table.contains(&mut ctx, 999));
        drop(ctx);
        assert_eq!(table.get(&m.gmem, 42), 5);
        assert_eq!(table.get(&m.gmem, 7), 1);
        assert_eq!(table.get(&m.gmem, 999), 0);
        assert_eq!(table.total(&m.gmem), 6);
        assert_eq!(table.occupied(&m.gmem), 2);
    }

    #[test]
    fn hash_table_colliding_keys_probe() {
        let (mut m, streams) = ctx_machine();
        let buf = m.gmem.alloc(DevHashTable::bytes_for(8));
        let table = DevHashTable { buf, slots: 8 };
        let mut cache = CacheSim::xeon_llc();
        let mut ctx = bk_baselines_test_ctx(&mut m, &streams, &mut cache);
        // Keys 8, 16, 24 all map to slot 0.
        table.add(&mut ctx, 8, 1);
        table.add(&mut ctx, 16, 1);
        table.add(&mut ctx, 24, 1);
        drop(ctx);
        assert_eq!(table.get(&m.gmem, 8), 1);
        assert_eq!(table.get(&m.gmem, 16), 1);
        assert_eq!(table.get(&m.gmem, 24), 1);
        assert_eq!(table.occupied(&m.gmem), 3);
    }

    #[test]
    #[should_panic(expected = "hash table full")]
    fn full_table_panics() {
        let (mut m, streams) = ctx_machine();
        let buf = m.gmem.alloc(DevHashTable::bytes_for(2));
        let table = DevHashTable { buf, slots: 2 };
        let mut cache = CacheSim::xeon_llc();
        let mut ctx = bk_baselines_test_ctx(&mut m, &streams, &mut cache);
        table.add(&mut ctx, 1, 1);
        table.add(&mut ctx, 2, 1);
        table.add(&mut ctx, 3, 1);
    }

    /// Build a CpuCtx for testing the table through the KernelCtx interface.
    fn bk_baselines_test_ctx<'a>(
        m: &'a mut Machine,
        streams: &'a [StreamArray],
        cache: &'a mut CacheSim,
    ) -> bk_baselines::CpuCtx<'a> {
        bk_baselines::CpuCtx::new(&mut m.hmem, &mut m.gmem, streams, cache, 0, 1)
    }
}

//! K-means (paper §V): assign each particle to its nearest cluster.
//!
//! Mapped data: an array of 64-byte particle records; the kernel reads the
//! four coordinate doubles (32 B = 50% of the record, matching Table I) and
//! writes the 8-byte cluster id (12.5% ≈ the paper's 12%). The cluster
//! centroid array is ordinary device-resident data copied up front, exactly
//! like the paper's running example. This is the only benchmark that
//! modifies mapped data, so it exercises the write-back pipeline stages.
//!
//! The app runs as a fusable assign → count pass pair (one K-means
//! iteration): the count pass reads back only each record's just-written
//! cluster id and accumulates per-cluster populations on the device. The
//! dependence is exact and record-local — assign writes `(32, 8)` of every
//! record, count reads exactly those bytes — so mega-kernel fusion keeps
//! the cluster ids device-resident and elides the count pass's gather.

use crate::harness::{AppSpec, BenchApp, Instance};
use bk_runtime::ctx::AddrGenCtx;
use bk_runtime::fusion::{AccessSummary, FieldSpan, StreamAccess};
use bk_runtime::{DevBufId, KernelCtx, Machine, StreamArray, StreamId, ValueExt};
use bk_simcore::SplitMix64;
use std::ops::Range;

/// Bytes per particle record.
pub const RECORD: u64 = 64;
/// Offset of the written cluster-id field.
const CID_OFF: u64 = 32;

/// Number of coordinate dimensions (x, y, z, w).
const DIMS: usize = 4;

/// Nearest-cluster search shared by the kernel and the reference
/// implementation so results are bit-identical.
pub fn closest_cluster(p: &[f64; DIMS], clusters: &[[f64; DIMS]]) -> u64 {
    let mut best = 0usize;
    let mut best_d = f64::INFINITY;
    for (c, centre) in clusters.iter().enumerate() {
        let mut d = 0.0;
        for i in 0..DIMS {
            let t = p[i] - centre[i];
            d += t * t;
        }
        if d < best_d {
            best_d = d;
            best = c;
        }
    }
    best as u64
}

/// The K-means assignment kernel.
pub struct KMeansKernel {
    pub clusters_buf: DevBufId,
    pub k: u32,
}

impl KMeansKernel {
    fn load_clusters(&self, ctx: &mut dyn KernelCtx) -> Vec<[f64; DIMS]> {
        // Each thread loads the centroid array once per chunk invocation
        // (real kernels stage it into shared memory at block start).
        (0..self.k as u64)
            .map(|c| {
                let mut centre = [0.0; DIMS];
                for (i, v) in centre.iter_mut().enumerate() {
                    *v = ctx.dev_read_f64(self.clusters_buf, c * 32 + i as u64 * 8);
                }
                centre
            })
            .collect()
    }
}

impl bk_runtime::StreamKernel for KMeansKernel {
    fn name(&self) -> &'static str {
        "kmeans"
    }

    /// Cluster centroids are read-only during an iteration (dev reads always
    /// validate); per-point assignments go to the stream, not device memory.
    fn device_effects(&self) -> bk_runtime::DeviceEffects {
        bk_runtime::DeviceEffects::Replayable
    }

    fn record_size(&self) -> Option<u64> {
        Some(RECORD)
    }

    fn addresses(&self, ctx: &mut AddrGenCtx<'_>, range: Range<u64>) {
        let mut off = range.start;
        while off < range.end {
            for f in 0..DIMS as u64 {
                ctx.emit_read(StreamId(0), off + f * 8, 8);
            }
            ctx.emit_write(StreamId(0), off + CID_OFF, 8);
            ctx.alu(2);
            off += RECORD;
        }
    }

    fn process(&self, ctx: &mut dyn KernelCtx, range: Range<u64>) {
        if range.is_empty() {
            return;
        }
        let clusters = self.load_clusters(ctx);
        let mut off = range.start;
        while off < range.end {
            let mut p = [0.0; DIMS];
            for (i, v) in p.iter_mut().enumerate() {
                *v = ctx.stream_read_f64(StreamId(0), off + i as u64 * 8);
            }
            // Distance arithmetic: ~2 FLOPs x DIMS per cluster; centroids
            // are staged in shared memory and read per comparison. All lanes
            // compare against the same centroid in lock-step, so the reads
            // broadcast (no bank conflicts) — the realistic kernel shape.
            ctx.alu(2 * DIMS as u64 * self.k as u64);
            ctx.shared_at_strided(0, 32, self.k, 8);
            let cid = closest_cluster(&p, &clusters);
            ctx.stream_write_u64(StreamId(0), off + CID_OFF, cid);
            off += RECORD;
        }
    }

    fn access_summary(&self) -> Option<AccessSummary> {
        Some(AccessSummary {
            reads: vec![StreamAccess {
                stream: StreamId(0),
                unit: RECORD,
                stride: RECORD,
                fields: vec![FieldSpan {
                    offset: 0,
                    width: (DIMS * 8) as u64,
                }],
                exact: true,
            }],
            writes: vec![StreamAccess {
                stream: StreamId(0),
                unit: RECORD,
                stride: RECORD,
                fields: vec![FieldSpan {
                    offset: CID_OFF,
                    width: 8,
                }],
                exact: true,
            }],
        })
    }
}

/// The K-means population-count kernel (pass 2): read each record's
/// assigned cluster id and bump that cluster's population counter with a
/// device atomic add. Reads exactly the 8 bytes assign just wrote, so the
/// pair fuses with the ids device-resident.
pub struct KMeansCountKernel {
    /// `k` u64 population counters.
    pub counts_buf: DevBufId,
}

impl bk_runtime::StreamKernel for KMeansCountKernel {
    fn name(&self) -> &'static str {
        "kmeans-count"
    }

    /// Atomic adds commute and their return values are discarded.
    fn device_effects(&self) -> bk_runtime::DeviceEffects {
        bk_runtime::DeviceEffects::Replayable
    }

    fn record_size(&self) -> Option<u64> {
        Some(RECORD)
    }

    fn addresses(&self, ctx: &mut AddrGenCtx<'_>, range: Range<u64>) {
        let mut off = range.start;
        while off < range.end {
            ctx.emit_read(StreamId(0), off + CID_OFF, 8);
            ctx.alu(1);
            off += RECORD;
        }
    }

    fn process(&self, ctx: &mut dyn KernelCtx, range: Range<u64>) {
        let mut off = range.start;
        while off < range.end {
            let cid = ctx.stream_read(StreamId(0), off + CID_OFF, 8);
            ctx.alu(2);
            ctx.dev_atomic_add_u64(self.counts_buf, cid * 8, 1);
            off += RECORD;
        }
    }

    fn access_summary(&self) -> Option<AccessSummary> {
        Some(AccessSummary {
            reads: vec![StreamAccess {
                stream: StreamId(0),
                unit: RECORD,
                stride: RECORD,
                fields: vec![FieldSpan {
                    offset: CID_OFF,
                    width: 8,
                }],
                exact: true,
            }],
            writes: vec![],
        })
    }
}

/// The K-means benchmark application.
pub struct KMeans {
    pub k: u32,
}

impl Default for KMeans {
    fn default() -> Self {
        KMeans { k: 32 }
    }
}

impl BenchApp for KMeans {
    fn spec(&self) -> AppSpec {
        AppSpec {
            name: "K-means",
            paper_data_size: "6.0GB",
            record_type: "Fixed-length",
            paper_read_pct: 50,
            paper_modified_pct: 12,
            pattern_applicable: true,
        }
    }

    fn instantiate(&self, machine: &mut Machine, bytes: u64, seed: u64) -> Instance {
        let n = (bytes / RECORD).max(1);
        let mut rng = SplitMix64::new(seed);

        // Centroids.
        let clusters: Vec<[f64; DIMS]> = (0..self.k)
            .map(|_| {
                let mut c = [0.0; DIMS];
                for v in c.iter_mut() {
                    *v = rng.next_f64() * 1000.0;
                }
                c
            })
            .collect();
        let clusters_buf = machine.gmem.alloc(self.k as u64 * 32);
        for (i, c) in clusters.iter().enumerate() {
            for (d, &v) in c.iter().enumerate() {
                machine
                    .gmem
                    .write_f64(clusters_buf, i as u64 * 32 + d as u64 * 8, v);
            }
        }

        // Particles.
        let region = machine.hmem.alloc(n * RECORD);
        {
            let data = machine.hmem.bytes_mut(region);
            for r in 0..n {
                let base = (r * RECORD) as usize;
                for d in 0..DIMS {
                    let v = rng.next_f64() * 1000.0;
                    data[base + d * 8..base + d * 8 + 8].copy_from_slice(&v.to_le_bytes());
                }
                // cid starts invalid; trailing metadata random.
                data[base + CID_OFF as usize..base + CID_OFF as usize + 8]
                    .copy_from_slice(&u64::MAX.to_le_bytes());
                rng.fill_bytes(&mut data[base + 40..base + 64]);
            }
        }
        let stream = StreamArray::map(machine, StreamId(0), region);

        // Per-cluster population counters for the count pass.
        let counts_buf = machine.gmem.alloc(self.k as u64 * 8);

        let verify_clusters = clusters.clone();
        let k = self.k;
        let verify = move |m: &Machine| -> Result<(), String> {
            let mut want_counts = vec![0u64; k as usize];
            for r in 0..n {
                let base = r * RECORD;
                let mut p = [0.0; DIMS];
                for (i, v) in p.iter_mut().enumerate() {
                    *v = m.hmem.read_f64(region, base + i as u64 * 8);
                }
                let want = closest_cluster(&p, &verify_clusters);
                want_counts[want as usize] += 1;
                let got = m.hmem.read_u64(region, base + CID_OFF);
                if got != want {
                    return Err(format!("record {r}: cid {got} != expected {want}"));
                }
            }
            for (c, &want) in want_counts.iter().enumerate() {
                let got = m.gmem.read_u64(counts_buf, c as u64 * 8);
                if got != want {
                    return Err(format!("cluster {c}: population {got} != {want}"));
                }
            }
            Ok(())
        };

        Instance {
            kernels: vec![
                Box::new(KMeansKernel {
                    clusters_buf,
                    k: self.k,
                }),
                Box::new(KMeansCountKernel { counts_buf }),
            ],
            streams: vec![stream],
            scratch_streams: vec![],
            fused: None,
            verify: Box::new(verify),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{run_all, HarnessConfig, Implementation};
    use bk_baselines::BigKernelVariant;

    #[test]
    fn closest_cluster_basic() {
        let clusters = vec![[0.0, 0.0, 0.0, 0.0], [10.0, 0.0, 0.0, 0.0]];
        assert_eq!(closest_cluster(&[1.0, 0.0, 0.0, 0.0], &clusters), 0);
        assert_eq!(closest_cluster(&[9.0, 0.0, 0.0, 0.0], &clusters), 1);
        // Tie goes to the lower index (strict less-than).
        assert_eq!(closest_cluster(&[5.0, 0.0, 0.0, 0.0], &clusters), 0);
    }

    #[test]
    fn all_implementations_agree() {
        let app = KMeans { k: 4 };
        let cfg = HarnessConfig::test_small();
        let results = run_all(&app, 64 * 1024, 42, &cfg, &Implementation::FIG4A);
        assert_eq!(results.len(), 5);
        for (imp, r) in &results {
            assert!(r.total.secs() > 0.0, "{:?} has zero time", imp);
        }
    }

    #[test]
    fn variants_agree_too() {
        let app = KMeans { k: 4 };
        let cfg = HarnessConfig::test_small();
        let imps = [
            Implementation::Variant(BigKernelVariant::OverlapOnly),
            Implementation::Variant(BigKernelVariant::VolumeReduction),
            Implementation::Variant(BigKernelVariant::Full),
        ];
        run_all(&app, 32 * 1024, 7, &cfg, &imps);
    }

    #[test]
    fn read_and_modified_proportions_match_table1() {
        let app = KMeans::default();
        let cfg = HarnessConfig::test_small();
        let results = run_all(&app, 64 * 1024, 3, &cfg, &[Implementation::BigKernel]);
        let c = &results[0].1.metrics;
        let data = 64 * 1024u64;
        // Assign reads the coordinates (Table I's 50%); the count pass adds
        // one cluster-id read per record (12.5%).
        let read_pct = 100.0 * c.get("stream.bytes_read") as f64 / data as f64;
        let mod_pct = 100.0 * c.get("stream.bytes_written") as f64 / data as f64;
        assert!((read_pct - 62.5).abs() < 2.0, "read {read_pct}%");
        assert!((mod_pct - 12.5).abs() < 1.0, "modified {mod_pct}%");
    }

    #[test]
    fn fused_pair_verifies_and_cuts_transfer() {
        let app = KMeans { k: 4 };
        let bytes = 64 * 1024u64;
        let mut cfg = HarnessConfig::test_small();
        let unfused = run_all(&app, bytes, 5, &cfg, &[Implementation::BigKernel]);
        cfg.fuse = true;
        let fused = run_all(&app, bytes, 5, &cfg, &[Implementation::BigKernel]);
        assert_eq!(fused[0].1.metrics.get("fusion.fused"), 1);
        let transfer = |r: &bk_runtime::RunResult| {
            r.metrics.get("pcie.h2d_bytes") + r.metrics.get("pcie.d2h_bytes")
        };
        let (un, fu) = (transfer(&unfused[0].1), transfer(&fused[0].1));
        // The device-resident cluster ids elide the count pass's gather
        // (bytes/8); the live-out write-back is kept in both runs.
        assert!(
            fu + bytes / 16 < un,
            "fused transfer {fu} not well below unfused {un}"
        );
        assert!(fused[0].1.metrics.get("fusion.h2d_saved_bytes") >= bytes / 8);
    }

    #[test]
    fn generation_is_deterministic() {
        let app = KMeans { k: 4 };
        let mut m1 = Machine::test_platform();
        let i1 = app.instantiate(&mut m1, 4096, 9);
        let mut m2 = Machine::test_platform();
        let i2 = app.instantiate(&mut m2, 4096, 9);
        assert_eq!(
            m1.hmem.bytes(i1.streams[0].region),
            m2.hmem.bytes(i2.streams[0].region)
        );
    }
}

//! Application harness: run any app under every implementation on identical
//! data, verify outputs, and merge multi-pass results.

use bk_baselines::{
    run_cpu_multithreaded, run_cpu_serial, run_gpu_double_buffer, run_gpu_single_buffer,
    run_variant, BaselineConfig, BigKernelVariant,
};
use bk_runtime::fusion::FusePlan;
use bk_runtime::{
    run_bigkernel, run_bigkernel_fused, BigKernelConfig, LaunchConfig, Machine, RunResult,
    StageStat, StreamArray, StreamId, StreamKernel,
};
use bk_simcore::SimTime;

/// Static description of an application (Table I row + metadata).
#[derive(Clone, Copy, Debug)]
pub struct AppSpec {
    pub name: &'static str,
    /// Dataset size used in the paper (for Table I).
    pub paper_data_size: &'static str,
    pub record_type: &'static str,
    /// Paper's Table I mapped-data read proportion (percent).
    pub paper_read_pct: u32,
    /// Paper's Table I mapped-data modified proportion (percent).
    pub paper_modified_pct: u32,
    /// Whether §IV.A pattern recognition applies (Table II lists "NA" for
    /// the indexed MasterCard Affinity variant).
    pub pattern_applicable: bool,
}

/// Post-run output check against the pure-Rust reference.
pub type VerifyFn = Box<dyn Fn(&Machine) -> Result<(), String> + Send + Sync>;

/// A generated, ready-to-run application instance.
///
/// `Send + Sync` bounds let the harness run independent implementations on
/// separate machines in parallel (each gets its own freshly-generated
/// instance; nothing is shared).
pub struct Instance {
    /// Kernel passes, run in order (MasterCard Affinity has two).
    pub kernels: Vec<Box<dyn StreamKernel + Send + Sync>>,
    pub streams: Vec<StreamArray>,
    /// Streams produced and consumed entirely *inside* the multi-pass
    /// program (intermediates). Under fusion their write-back transfer is
    /// elided ([`bk_runtime::fusion::PassIo::skip_writeback`]); unfused
    /// runs still materialize them in host memory between passes.
    pub scratch_streams: Vec<StreamId>,
    /// A pre-fused single-kernel program equivalent to running `kernels`
    /// in order (IR-level fusion, see `bk_kernelc::fuse`). When present
    /// and fusion is requested, the harness runs this one kernel instead
    /// of analyzing the pass pair at the schedule level.
    pub fused: Option<Box<dyn StreamKernel + Send + Sync>>,
    /// Verifies the machine state after all passes against the reference.
    pub verify: VerifyFn,
}

/// An application that the experiment harness can drive.
pub trait BenchApp {
    fn spec(&self) -> AppSpec;
    /// Generate ~`bytes` of input (deterministic in `seed`) plus device
    /// state, into `machine`.
    fn instantiate(&self, machine: &mut Machine, bytes: u64, seed: u64) -> Instance;
}

/// The five evaluated implementations plus the Fig. 5 ablation variants.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Implementation {
    CpuSerial,
    CpuMultithreaded,
    GpuSingleBuffer,
    GpuDoubleBuffer,
    BigKernel,
    Variant(BigKernelVariant),
}

impl Implementation {
    /// The paper's Fig. 4(a) bar set, in plot order.
    pub const FIG4A: [Implementation; 5] = [
        Implementation::CpuSerial,
        Implementation::CpuMultithreaded,
        Implementation::GpuSingleBuffer,
        Implementation::GpuDoubleBuffer,
        Implementation::BigKernel,
    ];

    pub fn label(self) -> &'static str {
        match self {
            Implementation::CpuSerial => "cpu-serial",
            Implementation::CpuMultithreaded => "cpu-multithreaded",
            Implementation::GpuSingleBuffer => "gpu-single-buffer",
            Implementation::GpuDoubleBuffer => "gpu-double-buffer",
            Implementation::BigKernel => "bigkernel",
            Implementation::Variant(v) => v.label(),
        }
    }
}

/// Shared run parameters.
#[derive(Clone, Debug)]
pub struct HarnessConfig {
    pub machine: fn() -> Machine,
    pub launch: LaunchConfig,
    pub bigkernel: BigKernelConfig,
    pub baseline: BaselineConfig,
    /// Factor applied to the platform's fixed latencies (DMA setup, flags,
    /// kernel launch) so that scaled-down datasets keep the paper-scale
    /// balance between fixed and bandwidth costs. 1.0 = unscaled.
    pub fixed_cost_scale: f64,
    /// Replace the platform's CPU-GPU interconnect (sensitivity studies);
    /// `None` keeps the machine's default link.
    pub link: Option<bk_host::PcieLink>,
    /// Number of simulated GPUs; chunks are sharded across them by the
    /// stage-graph executor. Functional outputs are identical at any count.
    pub gpus: usize,
    /// Mega-kernel fusion: compile multi-pass programs into one multi-stage
    /// pipeline when the dependence analysis proves it safe (BigKernel
    /// implementation only; refused pairs fall back to the per-pass loop).
    pub fuse: bool,
}

impl HarnessConfig {
    /// Paper-platform defaults used by the figure/table binaries.
    pub fn paper() -> Self {
        HarnessConfig {
            machine: Machine::paper_platform,
            launch: LaunchConfig::new(16, 128),
            bigkernel: BigKernelConfig {
                chunk_input_bytes: 1 << 20,
                ..BigKernelConfig::default()
            },
            baseline: BaselineConfig::default(),
            fixed_cost_scale: 1.0,
            link: None,
            gpus: 1,
            fuse: false,
        }
    }

    /// Paper platform with buffer/window sizes scaled to the dataset, so a
    /// scaled-down run keeps the paper's pipeline depth (the authors tuned
    /// buffer sizes per application for best execution time; ~12 chunk
    /// rounds keeps per-chunk sync overhead amortized while leaving real
    /// overlap to measure).
    pub fn paper_scaled(bytes: u64) -> Self {
        const ROUNDS: u64 = 12;
        /// The paper's typical dataset size; the scale reference point.
        const PAPER_BYTES: f64 = 6.0e9;
        let mut cfg = Self::paper();
        // The paper tuned the GPU thread count per application for best
        // time; at reduced dataset sizes fewer blocks keep each lane's
        // chunk slice large enough for patterns and pipelining to matter
        // (a 2048-lane launch over a few MiB leaves ~2 records per slice).
        let blocks = (bytes / (2 << 20)).clamp(2, 16) as u32;
        cfg.launch = LaunchConfig::new(blocks, cfg.launch.threads_per_block);
        cfg.bigkernel.chunk_input_bytes = (bytes / (blocks as u64 * ROUNDS)).max(16 * 1024);
        cfg.baseline.window_bytes = (bytes / ROUNDS).max(64 * 1024);
        cfg.fixed_cost_scale = (bytes as f64 / PAPER_BYTES).clamp(1e-4, 1.0);
        cfg.baseline.kernel_launch_overhead =
            cfg.baseline.kernel_launch_overhead * cfg.fixed_cost_scale;
        cfg
    }

    /// Small everything for fast unit tests.
    pub fn test_small() -> Self {
        HarnessConfig {
            machine: Machine::test_platform,
            launch: LaunchConfig::new(2, 32),
            bigkernel: BigKernelConfig {
                chunk_input_bytes: 16 * 1024,
                ..BigKernelConfig::default()
            },
            baseline: BaselineConfig {
                window_bytes: 64 * 1024,
                ..BaselineConfig::default()
            },
            fixed_cost_scale: 1.0,
            link: None,
            gpus: 1,
            fuse: false,
        }
    }
}

/// Merge the results of an app's kernel passes into one.
pub fn merge_pass_results(name: &'static str, results: Vec<RunResult>) -> RunResult {
    let mut total = SimTime::ZERO;
    let mut stages: Vec<StageStat> = Vec::new();
    let mut metrics = bk_runtime::MetricsRegistry::new();
    let mut chunks = 0;
    for r in results {
        total += r.total;
        metrics.merge(&r.metrics);
        chunks += r.chunks;
        for s in r.stages {
            match stages.iter_mut().find(|x| x.name == s.name) {
                Some(x) => {
                    x.busy += s.busy;
                    x.mean = x.busy / chunks.max(1) as f64;
                }
                None => stages.push(s),
            }
        }
    }
    RunResult {
        implementation: name,
        total,
        stages,
        metrics,
        chunks,
    }
}

/// Run every pass of `instance` under one implementation; outputs land in
/// `machine` (verify separately via `instance.verify`).
pub fn run_implementation(
    machine: &mut Machine,
    instance: &Instance,
    imp: Implementation,
    cfg: &HarnessConfig,
) -> RunResult {
    let fuse_requested = cfg.fuse && imp == Implementation::BigKernel;
    if fuse_requested {
        if let Some(result) = run_fused(machine, instance, cfg) {
            return result;
        }
    }
    let results: Vec<RunResult> = instance
        .kernels
        .iter()
        .enumerate()
        .map(|(pass, k)| {
            bk_obs::critpath::set_pass(pass);
            run_one(machine, k.as_ref(), &instance.streams, imp, cfg)
        })
        .collect();
    bk_obs::critpath::set_pass(0);
    let mut merged = merge_pass_results(imp.label(), results);
    if fuse_requested {
        // Dependence analysis could not prove the pass pair safe; record
        // the conservative fallback so sweeps can tell "fused" from
        // "refused, ran unfused" without comparing byte counts.
        merged.metrics.add("fusion.refused", 1);
    }
    merged
}

/// Attempt the fused execution of a multi-pass program: the IR-fused
/// single kernel when the app provides one, otherwise schedule-level
/// fusion via [`FusePlan::analyze`] over the passes' access summaries.
/// Returns `None` when fusion is refused — the caller falls back to the
/// ordinary per-pass loop, which is always functionally correct.
fn run_fused(machine: &mut Machine, instance: &Instance, cfg: &HarnessConfig) -> Option<RunResult> {
    let label = Implementation::BigKernel.label();
    if let Some(fused) = &instance.fused {
        let mut r = run_bigkernel(
            machine,
            fused.as_ref(),
            &instance.streams,
            cfg.launch,
            &cfg.bigkernel,
        );
        r.implementation = label;
        r.metrics.add("fusion.fused", 1);
        return Some(r);
    }
    if instance.kernels.len() < 2 {
        return None;
    }
    let summaries: Vec<_> = instance
        .kernels
        .iter()
        .map(|k| k.access_summary())
        .collect();
    let plan = FusePlan::analyze(
        &summaries,
        instance.streams.len(),
        &instance.scratch_streams,
    )
    .ok()?;
    let kernels: Vec<&dyn StreamKernel> = instance
        .kernels
        .iter()
        .map(|k| k.as_ref() as &dyn StreamKernel)
        .collect();
    let mut r = run_bigkernel_fused(
        machine,
        &kernels,
        &instance.streams,
        cfg.launch,
        &cfg.bigkernel,
        &plan,
    )
    .ok()?;
    r.implementation = label;
    r.metrics.add("fusion.fused", 1);
    Some(r)
}

fn run_one(
    machine: &mut Machine,
    kernel: &dyn StreamKernel,
    streams: &[StreamArray],
    imp: Implementation,
    cfg: &HarnessConfig,
) -> RunResult {
    match imp {
        Implementation::CpuSerial => run_cpu_serial(machine, kernel, streams),
        Implementation::CpuMultithreaded => run_cpu_multithreaded(machine, kernel, streams),
        Implementation::GpuSingleBuffer => {
            run_gpu_single_buffer(machine, kernel, streams, cfg.launch, &cfg.baseline)
        }
        Implementation::GpuDoubleBuffer => {
            run_gpu_double_buffer(machine, kernel, streams, cfg.launch, &cfg.baseline)
        }
        Implementation::BigKernel => {
            run_bigkernel(machine, kernel, streams, cfg.launch, &cfg.bigkernel)
        }
        Implementation::Variant(v) => {
            run_variant(machine, kernel, streams, cfg.launch, &cfg.bigkernel, v)
        }
    }
}

/// Run `app` under each of `imps` on identical data (fresh machine + same
/// seed per implementation), verifying every run. Returns results in the
/// order of `imps`.
///
/// Implementations are independent (each gets its own machine and its own
/// deterministic regeneration of the data), so they execute in parallel on
/// the host running the simulation — this is where `rayon` earns its place
/// in the workspace (DESIGN.md §6). Simulated times are unaffected.
pub fn run_all(
    app: &(dyn BenchApp + Sync),
    bytes: u64,
    seed: u64,
    cfg: &HarnessConfig,
    imps: &[Implementation],
) -> Vec<(Implementation, RunResult)> {
    use rayon::prelude::*;
    imps.par_iter()
        .map(|&imp| {
            let mut machine = (cfg.machine)();
            machine.replicate_gpus(cfg.gpus);
            if let Some(link) = &cfg.link {
                machine.link = link.clone();
            }
            machine.scale_fixed_costs(cfg.fixed_cost_scale);
            let instance = app.instantiate(&mut machine, bytes, seed);
            let result = run_implementation(&mut machine, &instance, imp, cfg);
            if let Err(e) = (instance.verify)(&machine) {
                panic!(
                    "{} failed verification under {}: {e}",
                    app.spec().name,
                    imp.label()
                );
            }
            (imp, result)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bk_runtime::MetricsRegistry;

    fn res(name: &'static str, secs: f64, stage: &'static str) -> RunResult {
        let t = SimTime::from_secs(secs);
        let mut c = MetricsRegistry::new();
        c.add("x", 1);
        RunResult {
            implementation: name,
            total: t,
            stages: vec![StageStat {
                name: stage,
                busy: t,
                mean: t,
            }],
            metrics: c,
            chunks: 2,
        }
    }

    #[test]
    fn merge_pass_results_sums() {
        let merged = merge_pass_results(
            "mca",
            vec![res("p1", 1.0, "compute"), res("p2", 2.0, "compute")],
        );
        assert_eq!(merged.total.secs(), 3.0);
        assert_eq!(merged.stages.len(), 1);
        assert_eq!(merged.stages[0].busy.secs(), 3.0);
        assert_eq!(merged.metrics.get("x"), 2);
        assert_eq!(merged.chunks, 4);
    }

    #[test]
    fn merge_keeps_distinct_stage_names() {
        let merged = merge_pass_results(
            "x",
            vec![res("p1", 1.0, "compute"), res("p2", 2.0, "transfer")],
        );
        assert_eq!(merged.stages.len(), 2);
    }

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<&str> = Implementation::FIG4A.iter().map(|i| i.label()).collect();
        labels.push(Implementation::Variant(BigKernelVariant::OverlapOnly).label());
        let mut sorted = labels.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), labels.len());
    }
}

#[cfg(test)]
mod scaled_config_tests {
    use super::*;

    #[test]
    fn paper_scaled_keeps_twelve_rounds() {
        for mib in [4u64, 8, 16, 32, 64] {
            let bytes = mib << 20;
            let cfg = HarnessConfig::paper_scaled(bytes);
            let blocks = cfg.launch.num_blocks as u64;
            // Chunk rounds ≈ 12 (input per round = blocks * chunk bytes).
            let rounds = bytes / (blocks * cfg.bigkernel.chunk_input_bytes);
            assert!((8..=16).contains(&rounds), "{mib} MiB -> {rounds} rounds");
            // Baseline windows ≈ 12 as well.
            let windows = bytes / cfg.baseline.window_bytes;
            assert!(
                (8..=16).contains(&windows),
                "{mib} MiB -> {windows} windows"
            );
        }
    }

    #[test]
    fn paper_scaled_launch_grows_with_data() {
        let small = HarnessConfig::paper_scaled(4 << 20);
        let large = HarnessConfig::paper_scaled(64 << 20);
        assert!(small.launch.num_blocks < large.launch.num_blocks);
        assert_eq!(large.launch.num_blocks, 16); // capped at the paper launch
    }

    #[test]
    fn paper_scaled_fixed_costs_track_data_ratio() {
        let cfg = HarnessConfig::paper_scaled(6_000_000_000);
        assert!(
            (cfg.fixed_cost_scale - 1.0).abs() < 1e-9,
            "paper scale is unscaled"
        );
        let cfg = HarnessConfig::paper_scaled(6_000_000);
        assert!((cfg.fixed_cost_scale - 1e-3).abs() < 1e-6);
    }
}

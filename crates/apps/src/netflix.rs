//! Netflix (paper §V): predict user preferences of movies.
//!
//! Mapped data: fixed 80-byte records, each holding one movie's rating pair
//! sample (movie id, two user ids, two ratings, timestamp — 24 B read = 30%,
//! matching Table I). The kernel accumulates the rating-pair correlation
//! into a pre-allocated GPU-side user-pair table; nothing is written back to
//! mapped memory.

use crate::harness::{AppSpec, BenchApp, Instance};
use bk_runtime::ctx::AddrGenCtx;
use bk_runtime::{DevBufId, KernelCtx, Machine, StreamArray, StreamId, ValueExt};
use bk_simcore::SplitMix64;
use std::ops::Range;

/// Bytes per rating record.
pub const RECORD: u64 = 80;
/// User-pair table dimension (table is `USERS x USERS` u64 cells).
pub const USERS: u64 = 128;

/// Fixed-point correlation contribution of one record, shared by kernel and
/// reference so results are bit-identical.
#[inline]
pub fn contribution(rating_a: f32, rating_b: f32) -> u64 {
    (rating_a * rating_b * 100.0) as u64
}

/// The correlation-accumulation kernel.
pub struct NetflixKernel {
    pub table: DevBufId,
}

impl bk_runtime::StreamKernel for NetflixKernel {
    fn name(&self) -> &'static str {
        "netflix"
    }

    /// Co-rating cells are bumped with `atomic_add` and the returns are
    /// discarded — commutative, so block-order replay is exact.
    fn device_effects(&self) -> bk_runtime::DeviceEffects {
        bk_runtime::DeviceEffects::Replayable
    }

    fn record_size(&self) -> Option<u64> {
        Some(RECORD)
    }

    fn addresses(&self, ctx: &mut AddrGenCtx<'_>, range: Range<u64>) {
        let mut off = range.start;
        while off < range.end {
            // movieId, userA, ratingA, userB, ratingB, timestamp
            for f in 0..6u64 {
                ctx.emit_read(StreamId(0), off + f * 4, 4);
            }
            ctx.alu(2);
            off += RECORD;
        }
    }

    fn process(&self, ctx: &mut dyn KernelCtx, range: Range<u64>) {
        let mut off = range.start;
        while off < range.end {
            let _movie = ctx.stream_read_u32(StreamId(0), off);
            let user_a = ctx.stream_read_u32(StreamId(0), off + 4);
            let rating_a = ctx.stream_read_f32(StreamId(0), off + 8);
            let user_b = ctx.stream_read_u32(StreamId(0), off + 12);
            let rating_b = ctx.stream_read_f32(StreamId(0), off + 16);
            let _ts = ctx.stream_read_u32(StreamId(0), off + 20);
            ctx.alu(12);
            let cell = (user_a as u64 % USERS) * USERS + (user_b as u64 % USERS);
            ctx.dev_atomic_add_u64(self.table, cell * 8, contribution(rating_a, rating_b));
            off += RECORD;
        }
    }
}

/// The Netflix benchmark application.
#[derive(Default)]
pub struct Netflix;

impl BenchApp for Netflix {
    fn spec(&self) -> AppSpec {
        AppSpec {
            name: "Netflix",
            paper_data_size: "6.0GB",
            record_type: "Fixed-length",
            paper_read_pct: 30,
            paper_modified_pct: 0,
            pattern_applicable: true,
        }
    }

    fn instantiate(&self, machine: &mut Machine, bytes: u64, seed: u64) -> Instance {
        let n = (bytes / RECORD).max(1);
        let mut rng = SplitMix64::new(seed);

        let region = machine.hmem.alloc(n * RECORD);
        let mut expected = vec![0u64; (USERS * USERS) as usize];
        {
            let data = machine.hmem.bytes_mut(region);
            for r in 0..n {
                let base = (r * RECORD) as usize;
                let movie = rng.next_below(10_000) as u32;
                let user_a = rng.next_below(1_000_000) as u32;
                let user_b = rng.next_below(1_000_000) as u32;
                let rating_a = (1 + rng.next_below(5)) as f32;
                let rating_b = (1 + rng.next_below(5)) as f32;
                let ts = rng.next_below(1 << 30) as u32;
                data[base..base + 4].copy_from_slice(&movie.to_le_bytes());
                data[base + 4..base + 8].copy_from_slice(&user_a.to_le_bytes());
                data[base + 8..base + 12].copy_from_slice(&rating_a.to_le_bytes());
                data[base + 12..base + 16].copy_from_slice(&user_b.to_le_bytes());
                data[base + 16..base + 20].copy_from_slice(&rating_b.to_le_bytes());
                data[base + 20..base + 24].copy_from_slice(&ts.to_le_bytes());
                rng.fill_bytes(&mut data[base + 24..base + RECORD as usize]);

                let cell = (user_a as u64 % USERS) * USERS + (user_b as u64 % USERS);
                expected[cell as usize] =
                    expected[cell as usize].wrapping_add(contribution(rating_a, rating_b));
            }
        }
        let stream = StreamArray::map(machine, StreamId(0), region);
        let table = machine.gmem.alloc(USERS * USERS * 8);

        let verify = move |m: &Machine| -> Result<(), String> {
            for (cell, &want) in expected.iter().enumerate() {
                let got = m.gmem.read_u64(table, cell as u64 * 8);
                if got != want {
                    return Err(format!("cell {cell}: {got} != {want}"));
                }
            }
            Ok(())
        };

        Instance {
            kernels: vec![Box::new(NetflixKernel { table })],
            streams: vec![stream],
            scratch_streams: vec![],
            fused: None,
            verify: Box::new(verify),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{run_all, HarnessConfig, Implementation};

    #[test]
    fn contribution_fixed_point() {
        assert_eq!(contribution(5.0, 5.0), 2500);
        assert_eq!(contribution(1.0, 1.0), 100);
    }

    #[test]
    fn all_implementations_agree() {
        let cfg = HarnessConfig::test_small();
        run_all(&Netflix, 64 * 1024, 42, &cfg, &Implementation::FIG4A);
    }

    #[test]
    fn read_proportion_matches_table1() {
        let cfg = HarnessConfig::test_small();
        let results = run_all(&Netflix, 80 * 1024, 3, &cfg, &[Implementation::BigKernel]);
        let c = &results[0].1.metrics;
        let read_pct = 100.0 * c.get("stream.bytes_read") as f64 / (80.0 * 1024.0);
        assert!((read_pct - 30.0).abs() < 2.0, "read {read_pct}%");
        assert_eq!(c.get("stream.bytes_written"), 0);
    }

    #[test]
    fn field_reads_are_pattern_compressed() {
        let cfg = HarnessConfig::test_small();
        let results = run_all(&Netflix, 40 * 1024, 5, &cfg, &[Implementation::BigKernel]);
        let c = &results[0].1.metrics;
        assert!(c.get("addr.patterns_found") > 0);
        assert_eq!(c.get("addr.patterns_missed"), 0);
    }
}

//! # bk-apps — the six evaluation applications (paper §V)
//!
//! Each application module provides a seeded synthetic data generator (the
//! paper's datasets are proprietary — see DESIGN.md §2), a [`StreamKernel`]
//! implementation whose mapped-data access proportions match the paper's
//! Table I, and a verifier comparing every implementation's output against a
//! pure-Rust reference:
//!
//! | module | app | data | record | read | modified |
//! |---|---|---|---|---|---|
//! | [`kmeans`] | K-means | fixed 64 B | reads x,y,z,w | 50% | 12.5% |
//! | [`wordcount`] | Word Count | variable | whole text | 100% | 0% |
//! | [`netflix`] | Netflix | fixed 80 B | rating-pair fields | 30% | 0% |
//! | [`opinion`] | Opinion Finder | fixed 256 B | ts + text prefix | 73% | 0% |
//! | [`dna`] | DNA Assembly | fixed 128 B | id + k-mer window | 36% | 0% |
//! | [`affinity`] | MasterCard Affinity | variable | whole text | 100% | 0% |
//! | [`affinity`] | … (indexed) | variable+index | card+merchant fields | ~25% | 0% |
//!
//! [`harness`] runs any app under all five implementations (plus the Fig. 5
//! ablation variants) on identical data and verifies functional equality.
//! [`streaming`] feeds any app through the continuous ingestion runner and
//! adds drifting variants of Word Count, FilterCount and K-means whose
//! distribution or record schema shifts mid-stream (DESIGN.md §16).
//!
//! [`StreamKernel`]: bk_runtime::StreamKernel

pub mod affinity;
pub mod dna;
pub mod filtercount;
pub mod harness;
pub mod kmeans;
pub mod netflix;
pub mod opinion;
pub mod streaming;
pub mod util;
pub mod wordcount;

pub use harness::{
    run_all, run_implementation, AppSpec, BenchApp, HarnessConfig, Implementation, Instance,
};
pub use streaming::{
    drifting_apps, run_streamed, run_streamed_at_rate, DriftingFilterCount, DriftingKMeans,
    DriftingWordCount,
};

//! MasterCard Affinity (paper §V): find all merchants frequently visited by
//! customers of a target merchant X.
//!
//! Mapped data: newline-delimited, variable-length purchase transactions
//! (card number, terminal id, merchant id, amount, date, free-form memo).
//! Two passes over the data, each a separate kernel launch:
//!
//! 1. extract the set of customers (card numbers) that visited merchant X;
//! 2. count, for transactions by those customers, the merchants visited.
//!
//! **Plain variant:** the variable-length records force every byte to be
//! scanned to find record boundaries — 100% of the mapped data is read
//! (Table I), so BigKernel cannot reduce the transfer volume and wins only
//! through overlap and coalescing, exactly the paper's finding.
//!
//! **Indexed variant:** an index of record offsets lets the kernel fetch
//! only the card and merchant fields (~25% of the data, Table I). Address
//! generation walks the device-resident index, so the emitted addresses are
//! data-dependent — stride patterns never apply (Table II lists "NA").
//!
//! **Fusable pass pair:** the plain variant is re-expressed for mega-kernel
//! fusion (DESIGN.md §15) as a *slot-compacting* pair. Pass 1 scans the
//! text once, collects the target merchant's customers as before, **and**
//! compacts every record's `(card_key, merchant_key)` into a fixed 16-byte
//! slot of a scratch stream (one slot per [`SLOT_UNIT`] bytes of text —
//! injective because records are longer than a slot unit). Pass 2 counts
//! straight from the compacted slots and never rescans the text. The pair
//! is record-periodic and exact on the scratch stream, so dependence
//! analysis proves the slots device-resident under fusion; the
//! customers-table join makes pass 2 declare a
//! [`barrier_dependence`](bk_runtime::StreamKernel::barrier_dependence).

use crate::harness::{AppSpec, BenchApp, Instance};
use crate::util::{fnv1a_step, DevHashTable, FNV_OFFSET};
use bk_runtime::ctx::AddrGenCtx;
use bk_runtime::fusion::{AccessSummary, FieldSpan, StreamAccess};
use bk_runtime::{DevBufId, KernelCtx, Machine, StreamArray, StreamId, ValueExt};
use bk_simcore::{SplitMix64, Zipf};
use std::collections::{HashMap, HashSet};
use std::ops::Range;

/// Field geometry within a transaction record (fixed offsets, variable
/// total length because of the trailing memo).
pub const CARD_LEN: u64 = 16; // digits at offset 0..16
pub const MERCH_OFF: u64 = 26; // 8 chars at 26..34
pub const MERCH_LEN: u64 = 8;
/// Worst-case record length (fields + memo + newline).
pub const MAX_RECORD: u64 = 116;
/// Minimum record length (fields + shortest memo + newline); must exceed
/// [`SLOT_UNIT`] so at most one record starts per slot unit.
pub const MIN_RECORD: u64 = 72;
/// Primary-text bytes per compaction slot (fusable pair): the record
/// starting in `((k-1)*SLOT_UNIT, k*SLOT_UNIT]` owns slot `k`.
pub const SLOT_UNIT: u64 = 64;
/// Scratch-stream bytes per slot: `(card_key, merchant_key)`, both u64.
pub const SLOT_BYTES: u64 = 16;
/// Halo of the compacting scan: the owned record range rounds up to the
/// next slot boundary (`+ SLOT_UNIT - 1`) and the record starting there
/// extends at most [`MAX_RECORD`] further.
pub const HALO_F: u64 = 192;
/// Halo for scan-past-end record completion: skip of one partial record is
/// bounded by `MAX_RECORD` and the last owned record extends at most
/// `MAX_RECORD` past the range end. Halo bytes are fetched twice by
/// adjacent chunk slices, so keeping this tight matters for the BigKernel
/// transfer volume.
pub const HALO: u64 = 128;

#[inline]
fn key(h: u64) -> u64 {
    h | 1
}

/// Hash a field's bytes into a table key.
pub fn field_key(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h = fnv1a_step(h, b);
    }
    key(h)
}

/// Parse all records of `text` host-side (reference path). Yields
/// `(record_offset, card_key, merchant_key)` with byte-identical hashing to
/// the kernels.
pub fn parse_records(text: &[u8]) -> Vec<(u64, u64, u64)> {
    let mut out = Vec::new();
    let mut p = 0usize;
    while p < text.len() {
        let rec_start = p;
        let mut card_h = FNV_OFFSET;
        let mut merch_h = FNV_OFFSET;
        while p < text.len() {
            let c = text[p];
            if c == b'\n' {
                p += 1;
                break;
            }
            let rel = (p - rec_start) as u64;
            if rel < CARD_LEN {
                card_h = fnv1a_step(card_h, c);
            } else if (MERCH_OFF..MERCH_OFF + MERCH_LEN).contains(&rel) {
                merch_h = fnv1a_step(merch_h, c);
            }
            p += 1;
        }
        out.push((rec_start as u64, key(card_h), key(merch_h)));
    }
    out
}

/// What a pass does with each parsed record.
enum PassAction {
    /// Pass 1: collect customers of the target merchant.
    Collect {
        customers: DevHashTable,
        target: u64,
    },
    /// Pass 2: count merchants visited by collected customers.
    Count {
        customers: DevHashTable,
        counts: DevHashTable,
    },
}

impl PassAction {
    /// Counting joins against the *complete* customers table the collect
    /// pass accumulates globally, so a kernel running this action must
    /// declare a [`barrier_dependence`](bk_runtime::StreamKernel::barrier_dependence):
    /// under streaming it forces pass-major order (count nothing until the
    /// collect pass has drained every window).
    fn needs_barrier(&self) -> bool {
        matches!(self, PassAction::Count { .. })
    }

    fn handle(&self, ctx: &mut dyn KernelCtx, card: u64, merch: u64) {
        match self {
            PassAction::Collect { customers, target } => {
                ctx.alu(1);
                if merch == *target {
                    customers.add(ctx, card, 1);
                }
            }
            PassAction::Count { customers, counts } => {
                if customers.contains(ctx, card) {
                    counts.add(ctx, merch, 1);
                }
            }
        }
    }
}

/// A full-scan pass kernel (plain variant).
pub struct ScanPassKernel {
    action: PassAction,
    text_len: u64,
    name: &'static str,
}

impl bk_runtime::StreamKernel for ScanPassKernel {
    fn name(&self) -> &'static str {
        self.name
    }

    /// Device effects are hash-table CAS/adds: CAS results are validated at
    /// replay (conflicts re-execute in order), add returns are ignored.
    fn device_effects(&self) -> bk_runtime::DeviceEffects {
        bk_runtime::DeviceEffects::Replayable
    }

    fn record_size(&self) -> Option<u64> {
        None
    }

    fn halo_bytes(&self) -> u64 {
        HALO
    }

    fn addresses(&self, ctx: &mut AddrGenCtx<'_>, range: Range<u64>) {
        if range.is_empty() {
            return;
        }
        let end = (range.end + HALO).min(self.text_len);
        let mut p = range.start;
        while p < end {
            ctx.emit_read(StreamId(0), p, 1);
            p += 1;
        }
    }

    fn process(&self, ctx: &mut dyn KernelCtx, range: Range<u64>) {
        if range.is_empty() {
            return;
        }
        let len = self.text_len;
        let mut p = range.start;
        // Skip the record in progress at `s` (belongs to the previous
        // thread).
        if p > 0 {
            while p < len {
                let c = ctx.stream_read_u8(StreamId(0), p);
                ctx.alu(1);
                p += 1;
                if c == b'\n' {
                    break;
                }
            }
        }
        // Process records starting at positions <= range.end.
        while p < len && p <= range.end {
            let rec_start = p;
            let mut card_h = FNV_OFFSET;
            let mut merch_h = FNV_OFFSET;
            while p < len {
                let c = ctx.stream_read_u8(StreamId(0), p);
                ctx.alu(2);
                if c == b'\n' {
                    p += 1;
                    break;
                }
                let rel = p - rec_start;
                if rel < CARD_LEN {
                    card_h = fnv1a_step(card_h, c);
                } else if (MERCH_OFF..MERCH_OFF + MERCH_LEN).contains(&rel) {
                    merch_h = fnv1a_step(merch_h, c);
                }
                p += 1;
            }
            self.action.handle(ctx, key(card_h), key(merch_h));
        }
    }

    fn barrier_dependence(&self) -> bool {
        self.action.needs_barrier()
    }
}

/// Compaction slots owned by a primary-range partition `[start, end)`:
/// record starts in `(64·⌈start/64⌉, 64·⌈end/64⌉]` — plus offset 0 for the
/// first partition — land in slots `(⌈start/64⌉, ⌈end/64⌉]` (plus slot 0).
/// Adjacent partitions tile the slot space exactly, and record spacing
/// `>= MIN_RECORD > SLOT_UNIT` puts at most one record start in each slot.
fn owned_slots(range: &Range<u64>) -> Range<u64> {
    let first = if range.start == 0 {
        0
    } else {
        range.start.div_ceil(SLOT_UNIT) + 1
    };
    first..range.end.div_ceil(SLOT_UNIT) + 1
}

/// Pass 1 of the fusable pair: one scan that collects the target merchant's
/// customers (as [`ScanPassKernel`] pass 1 does) and compacts every owned
/// record's `(card_key, merchant_key)` into its scratch-stream slot,
/// zero-filling slots with no record start. Every owned slot is written
/// exactly once, so the write is record-periodic and *exact* — the property
/// fusion dependence analysis needs to keep the slots device-resident.
pub struct CompactScanKernel {
    customers: DevHashTable,
    target: u64,
    text_len: u64,
}

impl CompactScanKernel {
    /// Parse one record starting at `*p`, advancing past its newline.
    fn parse_record(&self, ctx: &mut dyn KernelCtx, p: &mut u64) -> (u64, u64) {
        let rec_start = *p;
        let mut card_h = FNV_OFFSET;
        let mut merch_h = FNV_OFFSET;
        while *p < self.text_len {
            let c = ctx.stream_read_u8(StreamId(0), *p);
            ctx.alu(2);
            if c == b'\n' {
                *p += 1;
                break;
            }
            let rel = *p - rec_start;
            if rel < CARD_LEN {
                card_h = fnv1a_step(card_h, c);
            } else if (MERCH_OFF..MERCH_OFF + MERCH_LEN).contains(&rel) {
                merch_h = fnv1a_step(merch_h, c);
            }
            *p += 1;
        }
        (key(card_h), key(merch_h))
    }
}

impl bk_runtime::StreamKernel for CompactScanKernel {
    fn name(&self) -> &'static str {
        "affinity-fused-pass1"
    }

    fn device_effects(&self) -> bk_runtime::DeviceEffects {
        bk_runtime::DeviceEffects::Replayable
    }

    fn record_size(&self) -> Option<u64> {
        None
    }

    fn halo_bytes(&self) -> u64 {
        HALO_F
    }

    fn addresses(&self, ctx: &mut AddrGenCtx<'_>, range: Range<u64>) {
        if range.is_empty() {
            return;
        }
        let end = (range.end + HALO_F).min(self.text_len);
        let mut p = range.start;
        while p < end {
            ctx.emit_read(StreamId(0), p, 1);
            p += 1;
        }
        for k in owned_slots(&range) {
            ctx.emit_write(StreamId(1), k * SLOT_BYTES, 8);
            ctx.emit_write(StreamId(1), k * SLOT_BYTES + 8, 8);
        }
    }

    fn process(&self, ctx: &mut dyn KernelCtx, range: Range<u64>) {
        if range.is_empty() {
            return;
        }
        let len = self.text_len;
        // Slot ownership boundaries (see `owned_slots`).
        let lo = range.start.div_ceil(SLOT_UNIT) * SLOT_UNIT;
        let hi = range.end.div_ceil(SLOT_UNIT) * SLOT_UNIT;
        let mut p = range.start;
        // Skip the record in progress at the range start (the previous
        // thread parses it).
        if p > 0 {
            while p < len {
                let c = ctx.stream_read_u8(StreamId(0), p);
                ctx.alu(1);
                p += 1;
                if c == b'\n' {
                    break;
                }
            }
        }
        // One contiguous scan serves both ownership rules: records starting
        // at `<= range.end` get the customer-collect action (the classic
        // scan partition), records starting in `(lo, hi]` get compacted.
        let mut recs: Vec<(u64, u64, u64)> = Vec::new();
        while p < len && p <= hi {
            let rec_start = p;
            let (card, merch) = self.parse_record(ctx, &mut p);
            if rec_start <= range.end {
                ctx.alu(1);
                if merch == self.target {
                    self.customers.add(ctx, card, 1);
                }
            }
            recs.push((rec_start, card, merch));
        }
        // Emit every owned slot exactly once, in ascending order.
        let slot_owned = |rs: u64| rs > lo || (range.start == 0 && rs == 0);
        let mut ri = 0usize;
        for k in owned_slots(&range) {
            while ri < recs.len() && (!slot_owned(recs[ri].0) || recs[ri].0.div_ceil(SLOT_UNIT) < k)
            {
                ri += 1;
            }
            let (card, merch) = match recs.get(ri) {
                Some(&(rs, c, m)) if slot_owned(rs) && rs.div_ceil(SLOT_UNIT) == k => {
                    ri += 1;
                    (c, m)
                }
                _ => (0, 0),
            };
            ctx.alu(2);
            ctx.stream_write(StreamId(1), k * SLOT_BYTES, 8, card);
            ctx.stream_write(StreamId(1), k * SLOT_BYTES + 8, 8, merch);
        }
    }

    fn access_summary(&self) -> Option<AccessSummary> {
        Some(AccessSummary {
            reads: vec![StreamAccess {
                stream: StreamId(0),
                unit: 1,
                stride: 1,
                fields: vec![FieldSpan {
                    offset: 0,
                    width: 1,
                }],
                exact: true,
            }],
            writes: vec![StreamAccess {
                stream: StreamId(1),
                unit: SLOT_UNIT,
                stride: SLOT_BYTES,
                fields: vec![FieldSpan {
                    offset: 0,
                    width: SLOT_BYTES,
                }],
                exact: true,
            }],
        })
    }
}

/// Pass 2 of the fusable pair: count merchants visited by collected
/// customers, reading only the compacted `(card_key, merchant_key)` slots —
/// never the text. Zero-filled slots (no record start in that unit) are
/// skipped: real card keys are odd (`key()` sets bit 0), so 0 is
/// unambiguous. Declares a barrier dependence: the customers table must be
/// complete before any counting starts.
pub struct SlotCountKernel {
    customers: DevHashTable,
    counts: DevHashTable,
}

impl bk_runtime::StreamKernel for SlotCountKernel {
    fn name(&self) -> &'static str {
        "affinity-fused-pass2"
    }

    fn device_effects(&self) -> bk_runtime::DeviceEffects {
        bk_runtime::DeviceEffects::Replayable
    }

    fn record_size(&self) -> Option<u64> {
        None
    }

    fn addresses(&self, ctx: &mut AddrGenCtx<'_>, range: Range<u64>) {
        if range.is_empty() {
            return;
        }
        for k in owned_slots(&range) {
            ctx.emit_read(StreamId(1), k * SLOT_BYTES, 8);
            ctx.emit_read(StreamId(1), k * SLOT_BYTES + 8, 8);
        }
    }

    fn process(&self, ctx: &mut dyn KernelCtx, range: Range<u64>) {
        if range.is_empty() {
            return;
        }
        for k in owned_slots(&range) {
            let card = ctx.stream_read(StreamId(1), k * SLOT_BYTES, 8);
            let merch = ctx.stream_read(StreamId(1), k * SLOT_BYTES + 8, 8);
            ctx.alu(2);
            if card != 0 && self.customers.contains(ctx, card) {
                self.counts.add(ctx, merch, 1);
            }
        }
    }

    fn access_summary(&self) -> Option<AccessSummary> {
        Some(AccessSummary {
            reads: vec![StreamAccess {
                stream: StreamId(1),
                unit: SLOT_UNIT,
                stride: SLOT_BYTES,
                fields: vec![
                    FieldSpan {
                        offset: 0,
                        width: 8,
                    },
                    FieldSpan {
                        offset: 8,
                        width: 8,
                    },
                ],
                exact: true,
            }],
            writes: vec![],
        })
    }

    fn barrier_dependence(&self) -> bool {
        true
    }
}

/// An indexed pass kernel: walks the device-resident offset index and
/// fetches only the card and merchant fields.
pub struct IndexedPassKernel {
    action: PassAction,
    /// Device buffer of u32 record offsets, ascending.
    index: DevBufId,
    num_records: u64,
    name: &'static str,
}

impl IndexedPassKernel {
    /// First index entry with offset >= `pos` (binary search over device
    /// reads issued through `read_entry`).
    fn lower_bound(&self, read_entry: &mut dyn FnMut(u64) -> u64, pos: u64) -> u64 {
        let mut lo = 0u64;
        let mut hi = self.num_records;
        while lo < hi {
            let mid = (lo + hi) / 2;
            if read_entry(mid) < pos {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }
}

impl bk_runtime::StreamKernel for IndexedPassKernel {
    fn name(&self) -> &'static str {
        self.name
    }

    /// The offset index is immutable during the run, so its dev reads
    /// always validate at replay; table updates are as in the scan pass.
    fn device_effects(&self) -> bk_runtime::DeviceEffects {
        bk_runtime::DeviceEffects::Replayable
    }

    fn record_size(&self) -> Option<u64> {
        None
    }

    fn halo_bytes(&self) -> u64 {
        64
    }

    fn addresses(&self, ctx: &mut AddrGenCtx<'_>, range: Range<u64>) {
        if range.is_empty() {
            return;
        }
        let index = self.index;
        let mut read_entry = |i: u64| ctx.dev_read_u32(index, i * 4) as u64;
        let mut i = self.lower_bound(&mut read_entry, range.start);
        loop {
            if i >= self.num_records {
                break;
            }
            let off = ctx.dev_read_u32(index, i * 4) as u64;
            if off >= range.end {
                break;
            }
            // card as two packed u64 reads, merchant as one
            ctx.emit_read(StreamId(0), off, 8);
            ctx.emit_read(StreamId(0), off + 8, 8);
            ctx.emit_read(StreamId(0), off + MERCH_OFF, 8);
            ctx.alu(3);
            i += 1;
        }
    }

    fn process(&self, ctx: &mut dyn KernelCtx, range: Range<u64>) {
        if range.is_empty() {
            return;
        }
        let index = self.index;
        let mut i = {
            let mut read_entry = |j: u64| ctx.dev_read(index, j * 4, 4);
            self.lower_bound(&mut read_entry, range.start)
        };
        loop {
            if i >= self.num_records {
                break;
            }
            let off = ctx.dev_read(index, i * 4, 4);
            if off >= range.end {
                break;
            }
            let w0 = ctx.stream_read(StreamId(0), off, 8);
            let w1 = ctx.stream_read(StreamId(0), off + 8, 8);
            let wm = ctx.stream_read(StreamId(0), off + MERCH_OFF, 8);
            ctx.alu(6);
            let mut card_h = FNV_OFFSET;
            for b in w0.to_le_bytes().into_iter().chain(w1.to_le_bytes()) {
                card_h = fnv1a_step(card_h, b);
            }
            let mut merch_h = FNV_OFFSET;
            for b in wm.to_le_bytes() {
                merch_h = fnv1a_step(merch_h, b);
            }
            self.action.handle(ctx, key(card_h), key(merch_h));
            i += 1;
        }
    }

    fn barrier_dependence(&self) -> bool {
        self.action.needs_barrier()
    }
}

// ---------------------------------------------------------------------------

/// Generated transaction data plus reference results.
struct Generated {
    text: Vec<u8>,
    /// Record offsets (the index file of the indexed variant).
    index: Vec<u32>,
    target_merchant: u64,
    expected_customers: HashSet<u64>,
    expected_counts: HashMap<u64, u64>,
}

fn generate(bytes: u64, seed: u64, merchants: usize, cards: usize) -> Generated {
    let mut rng = SplitMix64::new(seed);
    let digits = |rng: &mut SplitMix64, n: usize| -> Vec<u8> {
        (0..n).map(|_| b'0' + rng.next_below(10) as u8).collect()
    };
    let merchant_ids: Vec<Vec<u8>> = (0..merchants).map(|_| digits(&mut rng, 8)).collect();
    let card_ids: Vec<Vec<u8>> = (0..cards).map(|_| digits(&mut rng, 16)).collect();
    let merchant_zipf = Zipf::new(merchants, 1.0);

    let mut text = Vec::with_capacity(bytes as usize);
    let mut index = Vec::new();
    while (text.len() as u64) < bytes {
        let memo_len = rng.range_inclusive(20, 64) as usize;
        let rec_len = 51 + memo_len + 1;
        if text.len() + rec_len > bytes as usize {
            break;
        }
        index.push(text.len() as u32);
        text.extend_from_slice(&card_ids[rng.next_below(cards as u64) as usize]);
        text.push(b',');
        text.extend_from_slice(&digits(&mut rng, 8)); // terminal
        text.push(b',');
        text.extend_from_slice(&merchant_ids[merchant_zipf.sample(&mut rng)]);
        text.push(b',');
        text.extend_from_slice(&digits(&mut rng, 6)); // amount
        text.push(b',');
        text.extend_from_slice(&digits(&mut rng, 8)); // date
        text.push(b',');
        for _ in 0..memo_len {
            text.push(b'a' + rng.next_below(26) as u8);
        }
        text.push(b'\n');
    }
    // Pad to the exact size with a comment-like spacer record.
    text.resize(bytes as usize, b' ');

    // Reference: target = a frequently-visited merchant (zipf rank 2).
    let target_merchant = field_key(&merchant_ids[2]);
    let records = parse_records(&text);
    let mut expected_customers = HashSet::new();
    for &(_, card, merch) in &records {
        if merch == target_merchant {
            expected_customers.insert(card);
        }
    }
    let mut expected_counts = HashMap::new();
    for &(_, card, merch) in &records {
        if expected_customers.contains(&card) {
            *expected_counts.entry(merch).or_insert(0u64) += 1;
        }
    }
    Generated {
        text,
        index,
        target_merchant,
        expected_customers,
        expected_counts,
    }
}

/// Reference results for the *indexed* variant (only indexed records
/// participate; the space-padding pseudo-record is not in the index).
fn indexed_reference(g: &Generated) -> (HashSet<u64>, HashMap<u64, u64>) {
    let recs: Vec<(u64, u64)> = g
        .index
        .iter()
        .map(|&off| {
            let off = off as usize;
            let card = field_key(&g.text[off..off + CARD_LEN as usize]);
            let merch = field_key(
                &g.text[off + MERCH_OFF as usize..off + (MERCH_OFF + MERCH_LEN) as usize],
            );
            (card, merch)
        })
        .collect();
    let customers: HashSet<u64> = recs
        .iter()
        .filter(|&&(_, m)| m == g.target_merchant)
        .map(|&(c, _)| c)
        .collect();
    let mut counts = HashMap::new();
    for &(c, m) in &recs {
        if customers.contains(&c) {
            *counts.entry(m).or_insert(0u64) += 1;
        }
    }
    (customers, counts)
}

fn alloc_tables(machine: &mut Machine, n_hint: u64) -> (DevHashTable, DevHashTable) {
    let slots = (n_hint * 4).next_power_of_two().max(1024);
    let cbuf = machine.gmem.alloc(DevHashTable::bytes_for(slots));
    let mbuf = machine.gmem.alloc(DevHashTable::bytes_for(slots));
    (
        DevHashTable { buf: cbuf, slots },
        DevHashTable { buf: mbuf, slots },
    )
}

fn verify_tables(
    m: &Machine,
    customers: DevHashTable,
    counts: DevHashTable,
    expected_customers: &HashSet<u64>,
    expected_counts: &HashMap<u64, u64>,
) -> Result<(), String> {
    if customers.occupied(&m.gmem) != expected_customers.len() as u64 {
        return Err(format!(
            "customer set size {} != expected {}",
            customers.occupied(&m.gmem),
            expected_customers.len()
        ));
    }
    for &c in expected_customers {
        if customers.get(&m.gmem, c) == 0 {
            return Err(format!("missing customer {c:#x}"));
        }
    }
    let total: u64 = expected_counts.values().sum();
    if counts.total(&m.gmem) != total {
        return Err(format!(
            "count total {} != {}",
            counts.total(&m.gmem),
            total
        ));
    }
    for (&merch, &n) in expected_counts {
        let got = counts.get(&m.gmem, merch);
        if got != n {
            return Err(format!("merchant {merch:#x}: {got} != {n}"));
        }
    }
    Ok(())
}

/// The plain MasterCard Affinity benchmark.
pub struct Affinity {
    pub merchants: usize,
    pub cards: usize,
}

impl Default for Affinity {
    fn default() -> Self {
        Affinity {
            merchants: 512,
            cards: 4096,
        }
    }
}

impl BenchApp for Affinity {
    fn spec(&self) -> AppSpec {
        AppSpec {
            name: "MasterCard Affinity",
            paper_data_size: "6.4GB",
            record_type: "Variable-length",
            paper_read_pct: 100,
            paper_modified_pct: 0,
            pattern_applicable: true,
        }
    }

    fn instantiate(&self, machine: &mut Machine, bytes: u64, seed: u64) -> Instance {
        let g = generate(bytes, seed, self.merchants, self.cards);
        let region = machine.hmem.alloc_from(&g.text);
        let stream = StreamArray::map(machine, StreamId(0), region);
        let n_hint = (g.index.len() as u64).max(64);
        let (customers, counts) = alloc_tables(machine, n_hint);

        // Scratch stream of compaction slots: one 16-byte slot per
        // SLOT_UNIT bytes of text (slot indices 0 ..= ceil(bytes/64)).
        let slot_count = bytes.div_ceil(SLOT_UNIT) + 1;
        let slots_region = machine.hmem.alloc(slot_count * SLOT_BYTES);
        let slots = StreamArray::map(machine, StreamId(1), slots_region);

        let pass1 = CompactScanKernel {
            customers,
            target: g.target_merchant,
            text_len: bytes,
        };
        let pass2 = SlotCountKernel { customers, counts };

        let (ec, en) = (g.expected_customers, g.expected_counts);
        let verify = move |m: &Machine| verify_tables(m, customers, counts, &ec, &en);

        Instance {
            kernels: vec![Box::new(pass1), Box::new(pass2)],
            streams: vec![stream, slots],
            scratch_streams: vec![StreamId(1)],
            fused: None,
            verify: Box::new(verify),
        }
    }
}

/// The indexed MasterCard Affinity benchmark.
pub struct AffinityIndexed {
    pub merchants: usize,
    pub cards: usize,
}

impl Default for AffinityIndexed {
    fn default() -> Self {
        AffinityIndexed {
            merchants: 512,
            cards: 4096,
        }
    }
}

impl BenchApp for AffinityIndexed {
    fn spec(&self) -> AppSpec {
        AppSpec {
            name: "MasterCard Affinity (indexed)",
            paper_data_size: "6.4GB",
            record_type: "Variable-length (indexed)",
            paper_read_pct: 25,
            paper_modified_pct: 0,
            pattern_applicable: false,
        }
    }

    fn instantiate(&self, machine: &mut Machine, bytes: u64, seed: u64) -> Instance {
        let g = generate(bytes, seed, self.merchants, self.cards);
        let region = machine.hmem.alloc_from(&g.text);
        let stream = StreamArray::map(machine, StreamId(0), region);
        let n_hint = (g.index.len() as u64).max(64);
        let (customers, counts) = alloc_tables(machine, n_hint);

        // The index lives in device memory (it is small relative to the
        // data and is uploaded once before the run, like the paper's
        // "extra index file").
        let index_buf = machine.gmem.alloc((g.index.len() as u64 * 4).max(4));
        for (i, &off) in g.index.iter().enumerate() {
            machine.gmem.write_u32(index_buf, i as u64 * 4, off);
        }
        let num_records = g.index.len() as u64;

        let pass1 = IndexedPassKernel {
            action: PassAction::Collect {
                customers,
                target: g.target_merchant,
            },
            index: index_buf,
            num_records,
            name: "affinity-indexed-pass1",
        };
        let pass2 = IndexedPassKernel {
            action: PassAction::Count { customers, counts },
            index: index_buf,
            num_records,
            name: "affinity-indexed-pass2",
        };

        let (ec, en) = indexed_reference(&g);
        let verify = move |m: &Machine| verify_tables(m, customers, counts, &ec, &en);

        Instance {
            kernels: vec![Box::new(pass1), Box::new(pass2)],
            streams: vec![stream],
            scratch_streams: vec![],
            fused: None,
            verify: Box::new(verify),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{run_all, HarnessConfig, Implementation};

    #[test]
    fn parse_records_fields() {
        let text = b"1111222233334444,TERMINAL,MERCHANT,000123,20140101,memo\n\
                     5555666677778888,TERMINAL,OTHERMRC,000456,20140102,x\n";
        let recs = parse_records(text);
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].0, 0);
        assert_eq!(recs[0].1, field_key(b"1111222233334444"));
        assert_eq!(recs[0].2, field_key(b"MERCHANT"));
        assert_eq!(recs[1].1, field_key(b"5555666677778888"));
        assert_eq!(recs[1].2, field_key(b"OTHERMRC"));
    }

    #[test]
    fn generation_reference_is_consistent() {
        let g = generate(32 * 1024, 9, 64, 256);
        assert!(
            !g.expected_customers.is_empty(),
            "target merchant must have customers"
        );
        assert!(!g.expected_counts.is_empty());
        // Counts include the target merchant itself.
        assert!(g.expected_counts.contains_key(&g.target_merchant));
        let total: u64 = g.expected_counts.values().sum();
        assert!(total >= g.expected_counts[&g.target_merchant]);
    }

    #[test]
    fn plain_all_implementations_agree() {
        let app = Affinity {
            merchants: 64,
            cards: 256,
        };
        let cfg = HarnessConfig::test_small();
        run_all(&app, 48 * 1024, 42, &cfg, &Implementation::FIG4A);
    }

    #[test]
    fn indexed_all_implementations_agree() {
        let app = AffinityIndexed {
            merchants: 64,
            cards: 256,
        };
        let cfg = HarnessConfig::test_small();
        run_all(&app, 48 * 1024, 42, &cfg, &Implementation::FIG4A);
    }

    #[test]
    fn plain_reads_everything_indexed_reads_quarter() {
        let cfg = HarnessConfig::test_small();
        let bytes = 64 * 1024u64;
        let plain = run_all(
            &Affinity {
                merchants: 64,
                cards: 256,
            },
            bytes,
            3,
            &cfg,
            &[Implementation::BigKernel],
        );
        let indexed = run_all(
            &AffinityIndexed {
                merchants: 64,
                cards: 256,
            },
            bytes,
            3,
            &cfg,
            &[Implementation::BigKernel],
        );
        // The compacting pair scans the text once (pass 1, plus per-slice
        // skip/halo overshoot) and counts from the ~25% compacted slots
        // (pass 2) → well over one full read of the data, but below the
        // classic two-scan 200%.
        let plain_read = plain[0].1.metrics.get("stream.bytes_read") as f64 / bytes as f64;
        assert!(
            (1.2..1.9).contains(&plain_read),
            "plain read fraction {plain_read}"
        );
        let idx_read = indexed[0].1.metrics.get("stream.bytes_read") as f64 / bytes as f64;
        // Two passes of ~25% each.
        assert!(
            (0.3..0.9).contains(&idx_read),
            "indexed read fraction {idx_read}"
        );
    }

    #[test]
    fn fused_pair_verifies_and_cuts_transfer() {
        let app = Affinity {
            merchants: 64,
            cards: 256,
        };
        let bytes = 64 * 1024u64;
        let mut cfg = HarnessConfig::test_small();
        let unfused = run_all(&app, bytes, 7, &cfg, &[Implementation::BigKernel]);
        cfg.fuse = true;
        // run_all panics on verification failure, so a passing call proves
        // the fused outputs match the reference exactly.
        let fused = run_all(&app, bytes, 7, &cfg, &[Implementation::BigKernel]);
        assert_eq!(fused[0].1.metrics.get("fusion.fused"), 1);
        assert_eq!(fused[0].1.metrics.get("fusion.refused"), 0);
        let transfer = |r: &bk_runtime::RunResult| {
            r.metrics.get("pcie.h2d_bytes") + r.metrics.get("pcie.d2h_bytes")
        };
        let (un, fu) = (transfer(&unfused[0].1), transfer(&fused[0].1));
        // The resident slots elide pass 2's gather (~bytes/4) and the
        // scratch write-back (~bytes/4).
        assert!(
            fu + bytes / 4 < un,
            "fused transfer {fu} not well below unfused {un}"
        );
        assert!(fused[0].1.metrics.get("fusion.h2d_saved_bytes") > 0);
        assert!(fused[0].1.metrics.get("fusion.d2h_saved_bytes") > 0);
    }

    #[test]
    fn indexed_pair_refuses_fusion_and_falls_back() {
        // Data-dependent addressing publishes no access summary, so the
        // planner must refuse and the harness must fall back to the unfused
        // loop — still verifying.
        let app = AffinityIndexed {
            merchants: 64,
            cards: 256,
        };
        let mut cfg = HarnessConfig::test_small();
        cfg.fuse = true;
        let r = run_all(&app, 48 * 1024, 11, &cfg, &[Implementation::BigKernel]);
        assert_eq!(r[0].1.metrics.get("fusion.refused"), 1);
        assert_eq!(r[0].1.metrics.get("fusion.fused"), 0);
    }

    #[test]
    fn indexed_addresses_are_not_pattern_compressible() {
        let cfg = HarnessConfig::test_small();
        let r = run_all(
            &AffinityIndexed {
                merchants: 64,
                cards: 256,
            },
            48 * 1024,
            5,
            &cfg,
            &[Implementation::BigKernel],
        );
        let c = &r[0].1.metrics;
        // A degenerate lane-chunk holding only one or two records can
        // legitimately match a trivial pattern; the overwhelming majority of
        // lanes must fall back to raw address streams.
        let found = c.get("addr.patterns_found");
        let missed = c.get("addr.patterns_missed");
        assert!(missed > 0);
        assert!(
            found * 10 < found + missed,
            "too many compressed lanes: {found} found vs {missed} missed"
        );
    }

    #[test]
    fn plain_scan_is_pattern_compressible() {
        let cfg = HarnessConfig::test_small();
        let r = run_all(
            &Affinity {
                merchants: 64,
                cards: 256,
            },
            48 * 1024,
            5,
            &cfg,
            &[Implementation::BigKernel],
        );
        assert!(r[0].1.metrics.get("addr.patterns_found") > 0);
    }
}

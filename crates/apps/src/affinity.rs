//! MasterCard Affinity (paper §V): find all merchants frequently visited by
//! customers of a target merchant X.
//!
//! Mapped data: newline-delimited, variable-length purchase transactions
//! (card number, terminal id, merchant id, amount, date, free-form memo).
//! Two passes over the data, each a separate kernel launch:
//!
//! 1. extract the set of customers (card numbers) that visited merchant X;
//! 2. count, for transactions by those customers, the merchants visited.
//!
//! **Plain variant:** the variable-length records force every byte to be
//! scanned to find record boundaries — 100% of the mapped data is read
//! (Table I), so BigKernel cannot reduce the transfer volume and wins only
//! through overlap and coalescing, exactly the paper's finding.
//!
//! **Indexed variant:** an index of record offsets lets the kernel fetch
//! only the card and merchant fields (~25% of the data, Table I). Address
//! generation walks the device-resident index, so the emitted addresses are
//! data-dependent — stride patterns never apply (Table II lists "NA").

use crate::harness::{AppSpec, BenchApp, Instance};
use crate::util::{fnv1a_step, DevHashTable, FNV_OFFSET};
use bk_runtime::ctx::AddrGenCtx;
use bk_runtime::{DevBufId, KernelCtx, Machine, StreamArray, StreamId, ValueExt};
use bk_simcore::{SplitMix64, Zipf};
use std::collections::{HashMap, HashSet};
use std::ops::Range;

/// Field geometry within a transaction record (fixed offsets, variable
/// total length because of the trailing memo).
pub const CARD_LEN: u64 = 16; // digits at offset 0..16
pub const MERCH_OFF: u64 = 26; // 8 chars at 26..34
pub const MERCH_LEN: u64 = 8;
/// Worst-case record length (fields + memo + newline).
pub const MAX_RECORD: u64 = 116;
/// Halo for scan-past-end record completion: skip of one partial record is
/// bounded by `MAX_RECORD` and the last owned record extends at most
/// `MAX_RECORD` past the range end. Halo bytes are fetched twice by
/// adjacent chunk slices, so keeping this tight matters for the BigKernel
/// transfer volume.
pub const HALO: u64 = 128;

#[inline]
fn key(h: u64) -> u64 {
    h | 1
}

/// Hash a field's bytes into a table key.
pub fn field_key(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h = fnv1a_step(h, b);
    }
    key(h)
}

/// Parse all records of `text` host-side (reference path). Yields
/// `(record_offset, card_key, merchant_key)` with byte-identical hashing to
/// the kernels.
pub fn parse_records(text: &[u8]) -> Vec<(u64, u64, u64)> {
    let mut out = Vec::new();
    let mut p = 0usize;
    while p < text.len() {
        let rec_start = p;
        let mut card_h = FNV_OFFSET;
        let mut merch_h = FNV_OFFSET;
        while p < text.len() {
            let c = text[p];
            if c == b'\n' {
                p += 1;
                break;
            }
            let rel = (p - rec_start) as u64;
            if rel < CARD_LEN {
                card_h = fnv1a_step(card_h, c);
            } else if (MERCH_OFF..MERCH_OFF + MERCH_LEN).contains(&rel) {
                merch_h = fnv1a_step(merch_h, c);
            }
            p += 1;
        }
        out.push((rec_start as u64, key(card_h), key(merch_h)));
    }
    out
}

/// What a pass does with each parsed record.
enum PassAction {
    /// Pass 1: collect customers of the target merchant.
    Collect {
        customers: DevHashTable,
        target: u64,
    },
    /// Pass 2: count merchants visited by collected customers.
    Count {
        customers: DevHashTable,
        counts: DevHashTable,
    },
}

impl PassAction {
    fn handle(&self, ctx: &mut dyn KernelCtx, card: u64, merch: u64) {
        match self {
            PassAction::Collect { customers, target } => {
                ctx.alu(1);
                if merch == *target {
                    customers.add(ctx, card, 1);
                }
            }
            PassAction::Count { customers, counts } => {
                if customers.contains(ctx, card) {
                    counts.add(ctx, merch, 1);
                }
            }
        }
    }
}

/// A full-scan pass kernel (plain variant).
pub struct ScanPassKernel {
    action: PassAction,
    text_len: u64,
    name: &'static str,
}

impl bk_runtime::StreamKernel for ScanPassKernel {
    fn name(&self) -> &'static str {
        self.name
    }

    /// Device effects are hash-table CAS/adds: CAS results are validated at
    /// replay (conflicts re-execute in order), add returns are ignored.
    fn device_effects(&self) -> bk_runtime::DeviceEffects {
        bk_runtime::DeviceEffects::Replayable
    }

    fn record_size(&self) -> Option<u64> {
        None
    }

    fn halo_bytes(&self) -> u64 {
        HALO
    }

    fn addresses(&self, ctx: &mut AddrGenCtx<'_>, range: Range<u64>) {
        if range.is_empty() {
            return;
        }
        let end = (range.end + HALO).min(self.text_len);
        let mut p = range.start;
        while p < end {
            ctx.emit_read(StreamId(0), p, 1);
            p += 1;
        }
    }

    fn process(&self, ctx: &mut dyn KernelCtx, range: Range<u64>) {
        if range.is_empty() {
            return;
        }
        let len = self.text_len;
        let mut p = range.start;
        // Skip the record in progress at `s` (belongs to the previous
        // thread).
        if p > 0 {
            while p < len {
                let c = ctx.stream_read_u8(StreamId(0), p);
                ctx.alu(1);
                p += 1;
                if c == b'\n' {
                    break;
                }
            }
        }
        // Process records starting at positions <= range.end.
        while p < len && p <= range.end {
            let rec_start = p;
            let mut card_h = FNV_OFFSET;
            let mut merch_h = FNV_OFFSET;
            while p < len {
                let c = ctx.stream_read_u8(StreamId(0), p);
                ctx.alu(2);
                if c == b'\n' {
                    p += 1;
                    break;
                }
                let rel = p - rec_start;
                if rel < CARD_LEN {
                    card_h = fnv1a_step(card_h, c);
                } else if (MERCH_OFF..MERCH_OFF + MERCH_LEN).contains(&rel) {
                    merch_h = fnv1a_step(merch_h, c);
                }
                p += 1;
            }
            self.action.handle(ctx, key(card_h), key(merch_h));
        }
    }
}

/// An indexed pass kernel: walks the device-resident offset index and
/// fetches only the card and merchant fields.
pub struct IndexedPassKernel {
    action: PassAction,
    /// Device buffer of u32 record offsets, ascending.
    index: DevBufId,
    num_records: u64,
    name: &'static str,
}

impl IndexedPassKernel {
    /// First index entry with offset >= `pos` (binary search over device
    /// reads issued through `read_entry`).
    fn lower_bound(&self, read_entry: &mut dyn FnMut(u64) -> u64, pos: u64) -> u64 {
        let mut lo = 0u64;
        let mut hi = self.num_records;
        while lo < hi {
            let mid = (lo + hi) / 2;
            if read_entry(mid) < pos {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }
}

impl bk_runtime::StreamKernel for IndexedPassKernel {
    fn name(&self) -> &'static str {
        self.name
    }

    /// The offset index is immutable during the run, so its dev reads
    /// always validate at replay; table updates are as in the scan pass.
    fn device_effects(&self) -> bk_runtime::DeviceEffects {
        bk_runtime::DeviceEffects::Replayable
    }

    fn record_size(&self) -> Option<u64> {
        None
    }

    fn halo_bytes(&self) -> u64 {
        64
    }

    fn addresses(&self, ctx: &mut AddrGenCtx<'_>, range: Range<u64>) {
        if range.is_empty() {
            return;
        }
        let index = self.index;
        let mut read_entry = |i: u64| ctx.dev_read_u32(index, i * 4) as u64;
        let mut i = self.lower_bound(&mut read_entry, range.start);
        loop {
            if i >= self.num_records {
                break;
            }
            let off = ctx.dev_read_u32(index, i * 4) as u64;
            if off >= range.end {
                break;
            }
            // card as two packed u64 reads, merchant as one
            ctx.emit_read(StreamId(0), off, 8);
            ctx.emit_read(StreamId(0), off + 8, 8);
            ctx.emit_read(StreamId(0), off + MERCH_OFF, 8);
            ctx.alu(3);
            i += 1;
        }
    }

    fn process(&self, ctx: &mut dyn KernelCtx, range: Range<u64>) {
        if range.is_empty() {
            return;
        }
        let index = self.index;
        let mut i = {
            let mut read_entry = |j: u64| ctx.dev_read(index, j * 4, 4);
            self.lower_bound(&mut read_entry, range.start)
        };
        loop {
            if i >= self.num_records {
                break;
            }
            let off = ctx.dev_read(index, i * 4, 4);
            if off >= range.end {
                break;
            }
            let w0 = ctx.stream_read(StreamId(0), off, 8);
            let w1 = ctx.stream_read(StreamId(0), off + 8, 8);
            let wm = ctx.stream_read(StreamId(0), off + MERCH_OFF, 8);
            ctx.alu(6);
            let mut card_h = FNV_OFFSET;
            for b in w0.to_le_bytes().into_iter().chain(w1.to_le_bytes()) {
                card_h = fnv1a_step(card_h, b);
            }
            let mut merch_h = FNV_OFFSET;
            for b in wm.to_le_bytes() {
                merch_h = fnv1a_step(merch_h, b);
            }
            self.action.handle(ctx, key(card_h), key(merch_h));
            i += 1;
        }
    }
}

// ---------------------------------------------------------------------------

/// Generated transaction data plus reference results.
struct Generated {
    text: Vec<u8>,
    /// Record offsets (the index file of the indexed variant).
    index: Vec<u32>,
    target_merchant: u64,
    expected_customers: HashSet<u64>,
    expected_counts: HashMap<u64, u64>,
}

fn generate(bytes: u64, seed: u64, merchants: usize, cards: usize) -> Generated {
    let mut rng = SplitMix64::new(seed);
    let digits = |rng: &mut SplitMix64, n: usize| -> Vec<u8> {
        (0..n).map(|_| b'0' + rng.next_below(10) as u8).collect()
    };
    let merchant_ids: Vec<Vec<u8>> = (0..merchants).map(|_| digits(&mut rng, 8)).collect();
    let card_ids: Vec<Vec<u8>> = (0..cards).map(|_| digits(&mut rng, 16)).collect();
    let merchant_zipf = Zipf::new(merchants, 1.0);

    let mut text = Vec::with_capacity(bytes as usize);
    let mut index = Vec::new();
    while (text.len() as u64) < bytes {
        let memo_len = rng.range_inclusive(20, 64) as usize;
        let rec_len = 51 + memo_len + 1;
        if text.len() + rec_len > bytes as usize {
            break;
        }
        index.push(text.len() as u32);
        text.extend_from_slice(&card_ids[rng.next_below(cards as u64) as usize]);
        text.push(b',');
        text.extend_from_slice(&digits(&mut rng, 8)); // terminal
        text.push(b',');
        text.extend_from_slice(&merchant_ids[merchant_zipf.sample(&mut rng)]);
        text.push(b',');
        text.extend_from_slice(&digits(&mut rng, 6)); // amount
        text.push(b',');
        text.extend_from_slice(&digits(&mut rng, 8)); // date
        text.push(b',');
        for _ in 0..memo_len {
            text.push(b'a' + rng.next_below(26) as u8);
        }
        text.push(b'\n');
    }
    // Pad to the exact size with a comment-like spacer record.
    text.resize(bytes as usize, b' ');

    // Reference: target = a frequently-visited merchant (zipf rank 2).
    let target_merchant = field_key(&merchant_ids[2]);
    let records = parse_records(&text);
    let mut expected_customers = HashSet::new();
    for &(_, card, merch) in &records {
        if merch == target_merchant {
            expected_customers.insert(card);
        }
    }
    let mut expected_counts = HashMap::new();
    for &(_, card, merch) in &records {
        if expected_customers.contains(&card) {
            *expected_counts.entry(merch).or_insert(0u64) += 1;
        }
    }
    Generated {
        text,
        index,
        target_merchant,
        expected_customers,
        expected_counts,
    }
}

/// Reference results for the *indexed* variant (only indexed records
/// participate; the space-padding pseudo-record is not in the index).
fn indexed_reference(g: &Generated) -> (HashSet<u64>, HashMap<u64, u64>) {
    let recs: Vec<(u64, u64)> = g
        .index
        .iter()
        .map(|&off| {
            let off = off as usize;
            let card = field_key(&g.text[off..off + CARD_LEN as usize]);
            let merch = field_key(
                &g.text[off + MERCH_OFF as usize..off + (MERCH_OFF + MERCH_LEN) as usize],
            );
            (card, merch)
        })
        .collect();
    let customers: HashSet<u64> = recs
        .iter()
        .filter(|&&(_, m)| m == g.target_merchant)
        .map(|&(c, _)| c)
        .collect();
    let mut counts = HashMap::new();
    for &(c, m) in &recs {
        if customers.contains(&c) {
            *counts.entry(m).or_insert(0u64) += 1;
        }
    }
    (customers, counts)
}

fn alloc_tables(machine: &mut Machine, n_hint: u64) -> (DevHashTable, DevHashTable) {
    let slots = (n_hint * 4).next_power_of_two().max(1024);
    let cbuf = machine.gmem.alloc(DevHashTable::bytes_for(slots));
    let mbuf = machine.gmem.alloc(DevHashTable::bytes_for(slots));
    (
        DevHashTable { buf: cbuf, slots },
        DevHashTable { buf: mbuf, slots },
    )
}

fn verify_tables(
    m: &Machine,
    customers: DevHashTable,
    counts: DevHashTable,
    expected_customers: &HashSet<u64>,
    expected_counts: &HashMap<u64, u64>,
) -> Result<(), String> {
    if customers.occupied(&m.gmem) != expected_customers.len() as u64 {
        return Err(format!(
            "customer set size {} != expected {}",
            customers.occupied(&m.gmem),
            expected_customers.len()
        ));
    }
    for &c in expected_customers {
        if customers.get(&m.gmem, c) == 0 {
            return Err(format!("missing customer {c:#x}"));
        }
    }
    let total: u64 = expected_counts.values().sum();
    if counts.total(&m.gmem) != total {
        return Err(format!(
            "count total {} != {}",
            counts.total(&m.gmem),
            total
        ));
    }
    for (&merch, &n) in expected_counts {
        let got = counts.get(&m.gmem, merch);
        if got != n {
            return Err(format!("merchant {merch:#x}: {got} != {n}"));
        }
    }
    Ok(())
}

/// The plain MasterCard Affinity benchmark.
pub struct Affinity {
    pub merchants: usize,
    pub cards: usize,
}

impl Default for Affinity {
    fn default() -> Self {
        Affinity {
            merchants: 512,
            cards: 4096,
        }
    }
}

impl BenchApp for Affinity {
    fn spec(&self) -> AppSpec {
        AppSpec {
            name: "MasterCard Affinity",
            paper_data_size: "6.4GB",
            record_type: "Variable-length",
            paper_read_pct: 100,
            paper_modified_pct: 0,
            pattern_applicable: true,
        }
    }

    fn instantiate(&self, machine: &mut Machine, bytes: u64, seed: u64) -> Instance {
        let g = generate(bytes, seed, self.merchants, self.cards);
        let region = machine.hmem.alloc_from(&g.text);
        let stream = StreamArray::map(machine, StreamId(0), region);
        let n_hint = (g.index.len() as u64).max(64);
        let (customers, counts) = alloc_tables(machine, n_hint);

        let pass1 = ScanPassKernel {
            action: PassAction::Collect {
                customers,
                target: g.target_merchant,
            },
            text_len: bytes,
            name: "affinity-pass1",
        };
        let pass2 = ScanPassKernel {
            action: PassAction::Count { customers, counts },
            text_len: bytes,
            name: "affinity-pass2",
        };

        let (ec, en) = (g.expected_customers, g.expected_counts);
        let verify = move |m: &Machine| verify_tables(m, customers, counts, &ec, &en);

        Instance {
            kernels: vec![Box::new(pass1), Box::new(pass2)],
            streams: vec![stream],
            verify: Box::new(verify),
        }
    }
}

/// The indexed MasterCard Affinity benchmark.
pub struct AffinityIndexed {
    pub merchants: usize,
    pub cards: usize,
}

impl Default for AffinityIndexed {
    fn default() -> Self {
        AffinityIndexed {
            merchants: 512,
            cards: 4096,
        }
    }
}

impl BenchApp for AffinityIndexed {
    fn spec(&self) -> AppSpec {
        AppSpec {
            name: "MasterCard Affinity (indexed)",
            paper_data_size: "6.4GB",
            record_type: "Variable-length (indexed)",
            paper_read_pct: 25,
            paper_modified_pct: 0,
            pattern_applicable: false,
        }
    }

    fn instantiate(&self, machine: &mut Machine, bytes: u64, seed: u64) -> Instance {
        let g = generate(bytes, seed, self.merchants, self.cards);
        let region = machine.hmem.alloc_from(&g.text);
        let stream = StreamArray::map(machine, StreamId(0), region);
        let n_hint = (g.index.len() as u64).max(64);
        let (customers, counts) = alloc_tables(machine, n_hint);

        // The index lives in device memory (it is small relative to the
        // data and is uploaded once before the run, like the paper's
        // "extra index file").
        let index_buf = machine.gmem.alloc((g.index.len() as u64 * 4).max(4));
        for (i, &off) in g.index.iter().enumerate() {
            machine.gmem.write_u32(index_buf, i as u64 * 4, off);
        }
        let num_records = g.index.len() as u64;

        let pass1 = IndexedPassKernel {
            action: PassAction::Collect {
                customers,
                target: g.target_merchant,
            },
            index: index_buf,
            num_records,
            name: "affinity-indexed-pass1",
        };
        let pass2 = IndexedPassKernel {
            action: PassAction::Count { customers, counts },
            index: index_buf,
            num_records,
            name: "affinity-indexed-pass2",
        };

        let (ec, en) = indexed_reference(&g);
        let verify = move |m: &Machine| verify_tables(m, customers, counts, &ec, &en);

        Instance {
            kernels: vec![Box::new(pass1), Box::new(pass2)],
            streams: vec![stream],
            verify: Box::new(verify),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{run_all, HarnessConfig, Implementation};

    #[test]
    fn parse_records_fields() {
        let text = b"1111222233334444,TERMINAL,MERCHANT,000123,20140101,memo\n\
                     5555666677778888,TERMINAL,OTHERMRC,000456,20140102,x\n";
        let recs = parse_records(text);
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].0, 0);
        assert_eq!(recs[0].1, field_key(b"1111222233334444"));
        assert_eq!(recs[0].2, field_key(b"MERCHANT"));
        assert_eq!(recs[1].1, field_key(b"5555666677778888"));
        assert_eq!(recs[1].2, field_key(b"OTHERMRC"));
    }

    #[test]
    fn generation_reference_is_consistent() {
        let g = generate(32 * 1024, 9, 64, 256);
        assert!(
            !g.expected_customers.is_empty(),
            "target merchant must have customers"
        );
        assert!(!g.expected_counts.is_empty());
        // Counts include the target merchant itself.
        assert!(g.expected_counts.contains_key(&g.target_merchant));
        let total: u64 = g.expected_counts.values().sum();
        assert!(total >= g.expected_counts[&g.target_merchant]);
    }

    #[test]
    fn plain_all_implementations_agree() {
        let app = Affinity {
            merchants: 64,
            cards: 256,
        };
        let cfg = HarnessConfig::test_small();
        run_all(&app, 48 * 1024, 42, &cfg, &Implementation::FIG4A);
    }

    #[test]
    fn indexed_all_implementations_agree() {
        let app = AffinityIndexed {
            merchants: 64,
            cards: 256,
        };
        let cfg = HarnessConfig::test_small();
        run_all(&app, 48 * 1024, 42, &cfg, &Implementation::FIG4A);
    }

    #[test]
    fn plain_reads_everything_indexed_reads_quarter() {
        let cfg = HarnessConfig::test_small();
        let bytes = 64 * 1024u64;
        let plain = run_all(
            &Affinity {
                merchants: 64,
                cards: 256,
            },
            bytes,
            3,
            &cfg,
            &[Implementation::BigKernel],
        );
        let indexed = run_all(
            &AffinityIndexed {
                merchants: 64,
                cards: 256,
            },
            bytes,
            3,
            &cfg,
            &[Implementation::BigKernel],
        );
        // Two passes → ~200% of data read for the plain variant.
        let plain_read = plain[0].1.metrics.get("stream.bytes_read") as f64 / bytes as f64;
        assert!(plain_read > 1.9, "plain read fraction {plain_read}");
        let idx_read = indexed[0].1.metrics.get("stream.bytes_read") as f64 / bytes as f64;
        // Two passes of ~25% each.
        assert!(
            (0.3..0.9).contains(&idx_read),
            "indexed read fraction {idx_read}"
        );
    }

    #[test]
    fn indexed_addresses_are_not_pattern_compressible() {
        let cfg = HarnessConfig::test_small();
        let r = run_all(
            &AffinityIndexed {
                merchants: 64,
                cards: 256,
            },
            48 * 1024,
            5,
            &cfg,
            &[Implementation::BigKernel],
        );
        let c = &r[0].1.metrics;
        // A degenerate lane-chunk holding only one or two records can
        // legitimately match a trivial pattern; the overwhelming majority of
        // lanes must fall back to raw address streams.
        let found = c.get("addr.patterns_found");
        let missed = c.get("addr.patterns_missed");
        assert!(missed > 0);
        assert!(
            found * 10 < found + missed,
            "too many compressed lanes: {found} found vs {missed} missed"
        );
    }

    #[test]
    fn plain_scan_is_pattern_compressible() {
        let cfg = HarnessConfig::test_small();
        let r = run_all(
            &Affinity {
                merchants: 64,
                cards: 256,
            },
            48 * 1024,
            5,
            &cfg,
            &[Implementation::BigKernel],
        );
        assert!(r[0].1.metrics.get("addr.patterns_found") > 0);
    }
}

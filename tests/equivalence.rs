//! Cross-implementation functional equivalence: the same kernel body must
//! produce byte-identical results under every execution scheme — CPU serial,
//! CPU multi-threaded, GPU single/double buffer, BigKernel, and the Fig. 5
//! ablation variants — over randomized data, geometry and configuration.
//!
//! This is the load-bearing property of the whole reproduction: BigKernel's
//! address generation, pattern compression, assembly reordering, interleaved
//! layout, FIFO consumption and write-back path all sit between the kernel
//! and its data, and any bug in any of them breaks equality.

use bigkernel::baselines::BigKernelVariant;
use bigkernel::runtime::ctx::AddrGenCtx;
use bigkernel::runtime::{
    BigKernelConfig, KernelCtx, LaunchConfig, Machine, StreamArray, StreamId, StreamKernel,
};
use bk_apps::{run_implementation, HarnessConfig, Implementation, Instance};
use proptest::prelude::*;
use std::ops::Range;

/// A little kernel with data-mixing reads, device-table atomics and mapped
/// writes: every pipeline feature is on the line.
struct MixKernel {
    table: bigkernel::runtime::DevBufId,
    slots: u64,
}

const REC: u64 = 24; // [a: u64][b: u64][out: u64]

impl StreamKernel for MixKernel {
    fn name(&self) -> &'static str {
        "prop-mix"
    }

    fn record_size(&self) -> Option<u64> {
        Some(REC)
    }

    fn addresses(&self, ctx: &mut AddrGenCtx<'_>, range: Range<u64>) {
        let mut off = range.start;
        while off < range.end {
            ctx.emit_read(StreamId(0), off, 8);
            ctx.emit_read(StreamId(0), off + 8, 8);
            ctx.emit_write(StreamId(0), off + 16, 8);
            off += REC;
        }
    }

    fn process(&self, ctx: &mut dyn KernelCtx, range: Range<u64>) {
        let mut off = range.start;
        while off < range.end {
            let a = ctx.stream_read(StreamId(0), off, 8);
            let b = ctx.stream_read(StreamId(0), off + 8, 8);
            ctx.alu(4);
            let mixed = a.wrapping_mul(0x9E3779B97F4A7C15) ^ b.rotate_left(17);
            ctx.stream_write(StreamId(0), off + 16, 8, mixed);
            let slot = mixed % self.slots;
            ctx.dev_atomic_add_u64(self.table, slot * 8, 1);
            off += REC;
        }
    }
}

/// Pure-Rust reference.
fn reference(data: &[u8], slots: u64) -> (Vec<u64>, Vec<u64>) {
    let n = data.len() as u64 / REC;
    let mut outs = Vec::new();
    let mut table = vec![0u64; slots as usize];
    for r in 0..n {
        let base = (r * REC) as usize;
        let a = u64::from_le_bytes(data[base..base + 8].try_into().unwrap());
        let b = u64::from_le_bytes(data[base + 8..base + 16].try_into().unwrap());
        let mixed = a.wrapping_mul(0x9E3779B97F4A7C15) ^ b.rotate_left(17);
        outs.push(mixed);
        table[(mixed % slots) as usize] += 1;
    }
    (outs, table)
}

fn build_instance(machine: &mut Machine, data: &[u8]) -> (Instance, bigkernel::runtime::DevBufId) {
    const SLOTS: u64 = 61;
    let region = machine.hmem.alloc_from(data);
    let stream = StreamArray::map(machine, StreamId(0), region);
    let table = machine.gmem.alloc(SLOTS * 8);
    let (outs, ref_table) = reference(data, SLOTS);
    let verify = move |m: &Machine| -> Result<(), String> {
        for (r, &want) in outs.iter().enumerate() {
            let got = m.hmem.read_u64(region, r as u64 * REC + 16);
            if got != want {
                return Err(format!("record {r}: out {got:#x} != {want:#x}"));
            }
        }
        for (slot, &want) in ref_table.iter().enumerate() {
            let got = m.gmem.read_u64(table, slot as u64 * 8);
            if got != want {
                return Err(format!("table slot {slot}: {got} != {want}"));
            }
        }
        Ok(())
    };
    (
        Instance {
            kernels: vec![Box::new(MixKernel {
                table,
                slots: SLOTS,
            })],
            streams: vec![stream],
            scratch_streams: Vec::new(),
            fused: None,
            verify: Box::new(verify),
        },
        table,
    )
}

fn random_data(len: usize, seed: u64) -> Vec<u8> {
    let mut rng = bigkernel::simcore::SplitMix64::new(seed);
    let mut v = vec![0u8; len];
    rng.fill_bytes(&mut v);
    v
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn all_implementations_agree_on_random_workloads(
        records in 1u64..400,
        seed in any::<u64>(),
        blocks in 1u32..4,
        warps_per_block in 1u32..3,
        chunk_kib in 1u64..32,
        depth in 1usize..4,
        pattern in any::<bool>(),
        locality in any::<bool>(),
    ) {
        let data = random_data((records * REC) as usize, seed);
        let mut cfg = HarnessConfig::test_small();
        cfg.launch = LaunchConfig::new(blocks, warps_per_block * 32);
        cfg.bigkernel = BigKernelConfig {
            chunk_input_bytes: chunk_kib * 1024,
            buffer_depth: depth,
            pattern_recognition: pattern,
            locality_assembly: locality,
            ..BigKernelConfig::default()
        };

        let imps = [
            Implementation::CpuSerial,
            Implementation::CpuMultithreaded,
            Implementation::GpuSingleBuffer,
            Implementation::GpuDoubleBuffer,
            Implementation::BigKernel,
            Implementation::Variant(BigKernelVariant::OverlapOnly),
            Implementation::Variant(BigKernelVariant::VolumeReduction),
        ];
        for imp in imps {
            let mut machine = Machine::test_platform();
            let (instance, _) = build_instance(&mut machine, &data);
            let result = run_implementation(&mut machine, &instance, imp, &cfg);
            prop_assert!(result.total.secs() >= 0.0);
            if let Err(e) = (instance.verify)(&machine) {
                return Err(TestCaseError::fail(format!("{} diverged: {e}", imp.label())));
            }
        }
    }

    #[test]
    fn bigkernel_time_is_deterministic(
        records in 1u64..200,
        seed in any::<u64>(),
    ) {
        let data = random_data((records * REC) as usize, seed);
        let cfg = HarnessConfig::test_small();
        let run = || {
            let mut machine = Machine::test_platform();
            let (instance, _) = build_instance(&mut machine, &data);
            run_implementation(&mut machine, &instance, Implementation::BigKernel, &cfg).total
        };
        prop_assert_eq!(run(), run());
    }
}

#[test]
fn single_record_edge_case() {
    let data = random_data(REC as usize, 1);
    let cfg = HarnessConfig::test_small();
    for imp in Implementation::FIG4A {
        let mut machine = Machine::test_platform();
        let (instance, _) = build_instance(&mut machine, &data);
        run_implementation(&mut machine, &instance, imp, &cfg);
        (instance.verify)(&machine).unwrap();
    }
}

#[test]
fn trailing_partial_record_is_ignored_consistently() {
    // 10 whole records plus 7 stray bytes.
    let mut data = random_data((10 * REC) as usize, 2);
    data.extend_from_slice(&[1, 2, 3, 4, 5, 6, 7]);
    let cfg = HarnessConfig::test_small();
    for imp in Implementation::FIG4A {
        let mut machine = Machine::test_platform();
        let (instance, _) = build_instance(&mut machine, &data);
        run_implementation(&mut machine, &instance, imp, &cfg);
        (instance.verify)(&machine).unwrap();
        // Reference only covers whole records; stray bytes must be untouched.
        let region = instance.streams[0].region;
        assert_eq!(
            machine.hmem.read(region, 10 * REC, 7),
            &[1, 2, 3, 4, 5, 6, 7]
        );
    }
}

//! Multiple mapped arrays at once (paper §IV.B: "If multiple data
//! structures are mapped and accessed by the GPU, then we additionally read
//! the data from each structure separately").
//!
//! A saxpy-shaped kernel reads two mapped input arrays and writes a third
//! mapped output array. The address cycle interleaves three streams — the
//! multi-stream pattern case — and the write-back path scatters to a
//! different array than the reads came from.

use bigkernel::runtime::ctx::AddrGenCtx;
use bigkernel::runtime::{
    run_bigkernel, BigKernelConfig, KernelCtx, LaunchConfig, Machine, StreamArray, StreamId,
    StreamKernel,
};
use std::ops::Range;

/// out[i] = 3 * a[i] + b[i] over u64 elements; `range` is byte offsets into
/// stream 0 (all three arrays are element-aligned).
struct SaxpyKernel;

impl StreamKernel for SaxpyKernel {
    fn name(&self) -> &'static str {
        "saxpy-3-streams"
    }

    fn record_size(&self) -> Option<u64> {
        Some(8)
    }

    fn addresses(&self, ctx: &mut AddrGenCtx<'_>, range: Range<u64>) {
        let mut off = range.start;
        while off < range.end {
            ctx.emit_read(StreamId(0), off, 8);
            ctx.emit_read(StreamId(1), off, 8);
            ctx.emit_write(StreamId(2), off, 8);
            off += 8;
        }
    }

    fn process(&self, ctx: &mut dyn KernelCtx, range: Range<u64>) {
        let mut off = range.start;
        while off < range.end {
            let a = ctx.stream_read(StreamId(0), off, 8);
            let b = ctx.stream_read(StreamId(1), off, 8);
            ctx.alu(2);
            ctx.stream_write(StreamId(2), off, 8, a.wrapping_mul(3).wrapping_add(b));
            off += 8;
        }
    }
}

fn setup(n: u64, seed: u64) -> (Machine, Vec<StreamArray>) {
    let mut m = Machine::test_platform();
    let mut rng = bk_simcore::SplitMix64::new(seed);
    let ra = m.hmem.alloc(n * 8);
    let rb = m.hmem.alloc(n * 8);
    let rout = m.hmem.alloc(n * 8);
    for i in 0..n {
        m.hmem.write_u64(ra, i * 8, rng.next_u64());
        m.hmem.write_u64(rb, i * 8, rng.next_u64());
    }
    let streams = vec![
        StreamArray::map(&m, StreamId(0), ra),
        StreamArray::map(&m, StreamId(1), rb),
        StreamArray::map(&m, StreamId(2), rout),
    ];
    (m, streams)
}

fn verify(m: &Machine, streams: &[StreamArray], n: u64) {
    for i in 0..n {
        let a = m.hmem.read_u64(streams[0].region, i * 8);
        let b = m.hmem.read_u64(streams[1].region, i * 8);
        let out = m.hmem.read_u64(streams[2].region, i * 8);
        assert_eq!(out, a.wrapping_mul(3).wrapping_add(b), "element {i}");
    }
}

#[test]
fn three_stream_saxpy_under_bigkernel() {
    let n = 8192u64;
    let (mut m, streams) = setup(n, 5);
    let cfg = BigKernelConfig {
        chunk_input_bytes: 16 * 1024,
        ..BigKernelConfig::default()
    };
    let r = run_bigkernel(
        &mut m,
        &SaxpyKernel,
        &streams,
        LaunchConfig::new(2, 32),
        &cfg,
    );
    verify(&m, &streams, n);
    // The (s0, s1) read cycle is a period-2 multi-stream pattern; the s2
    // write cycle is period-1 — both must compress.
    assert!(r.metrics.get("addr.patterns_found") > 0);
    assert_eq!(r.metrics.get("addr.patterns_missed"), 0);
    // Transfer carried both input arrays.
    assert!(r.metrics.get("pcie.h2d_bytes") >= 2 * n * 8);
    assert!(r.metrics.get("pcie.d2h_bytes") >= n * 8);
}

#[test]
fn three_stream_saxpy_on_cpu_matches() {
    let n = 4096u64;
    let (mut m, streams) = setup(n, 5);
    bigkernel::baselines::run_cpu_serial(&mut m, &SaxpyKernel, &streams);
    verify(&m, &streams, n);
}

#[test]
fn volume_reduction_variant_handles_multi_stream() {
    let n = 4096u64;
    let (mut m, streams) = setup(n, 9);
    let cfg = BigKernelConfig {
        chunk_input_bytes: 16 * 1024,
        ..BigKernelConfig::volume_reduction()
    };
    run_bigkernel(
        &mut m,
        &SaxpyKernel,
        &streams,
        LaunchConfig::new(1, 32),
        &cfg,
    );
    verify(&m, &streams, n);
}

/// Staged baselines run multi-stream kernels by staging whole copies of
/// every secondary array up front (and copying dirty ones back at the
/// end) — the traditional resident-copy approach the paper's pipeline
/// makes unnecessary.
#[test]
fn staged_baselines_stage_secondary_streams() {
    use bigkernel::baselines::{run_gpu_double_buffer, BaselineConfig};
    let n = 512u64;
    let (mut m, streams) = setup(n, 1);
    let cfg = BaselineConfig {
        window_bytes: 2048,
        ..BaselineConfig::default()
    };
    let r = run_gpu_double_buffer(
        &mut m,
        &SaxpyKernel,
        &streams,
        LaunchConfig::new(1, 32),
        &cfg,
    );
    verify(&m, &streams, n);
    // h2d carried the primary windows plus full copies of streams 1 and 2;
    // d2h carried the windows written in place plus the dirty aux copy-back.
    assert!(r.metrics.get("pcie.h2d_bytes") >= 3 * n * 8);
    assert!(r.metrics.get("pcie.d2h_bytes") >= n * 8);
}

//! Qualitative paper-shape regression tests: the orderings and ratios the
//! paper's evaluation reports must hold in the simulation at reduced scale.
//! (EXPERIMENTS.md records the full-scale numbers; these tests pin the
//! shapes so refactors can't silently break them.)

use bk_apps::affinity::{Affinity, AffinityIndexed};
use bk_apps::dna::DnaAssembly;
use bk_apps::kmeans::KMeans;
use bk_apps::netflix::Netflix;
use bk_apps::opinion::OpinionFinder;
use bk_apps::wordcount::WordCount;
use bk_apps::{run_all, BenchApp, HarnessConfig, Implementation};
use bk_runtime::Machine;

const BYTES: u64 = 4 << 20;
const SEED: u64 = 42;

fn cfg() -> HarnessConfig {
    let mut c = HarnessConfig::paper_scaled(BYTES);
    // Keep the paper platform but at the test scale.
    c.machine = Machine::paper_platform;
    c
}

fn speedups(app: &(dyn BenchApp + Sync)) -> [f64; 5] {
    let results = run_all(app, BYTES, SEED, &cfg(), &Implementation::FIG4A);
    let serial = results[0].1.total;
    [
        1.0,
        serial.ratio(results[1].1.total),
        serial.ratio(results[2].1.total),
        serial.ratio(results[3].1.total),
        serial.ratio(results[4].1.total),
    ]
}

#[test]
fn fig4a_bigkernel_beats_both_buffering_schemes_on_kmeans() {
    let s = speedups(&KMeans { k: 16 });
    // serial < single < double < bigkernel (paper Fig. 4a shape).
    assert!(s[2] > 1.0, "single-buffer should beat serial: {s:?}");
    assert!(s[3] > s[2], "double should beat single: {s:?}");
    assert!(s[4] > s[3], "bigkernel should beat double: {s:?}");
}

#[test]
fn fig4a_bigkernel_wins_on_transfer_bound_apps() {
    for app in [
        &Netflix as &(dyn BenchApp + Sync),
        &DnaAssembly {
            distinct_fragments: 512,
        },
    ] {
        let s = speedups(app);
        assert!(
            s[4] >= s[3] * 1.2,
            "{}: bigkernel {s:?} should clearly beat double",
            app.spec().name
        );
    }
}

#[test]
fn fig4a_compute_dominant_apps_gain_little() {
    // Word Count: computation-dominant (centralized hash table) — BigKernel
    // within +-25% of double buffering, far from the transfer-bound gains.
    let s = speedups(&WordCount {
        vocab: 2048,
        skew: 1.0,
    });
    let ratio = s[4] / s[3];
    assert!(
        (0.75..1.6).contains(&ratio),
        "WC bigkernel/double = {ratio}"
    );
}

#[test]
fn fig4a_indexed_affinity_beats_all_gpu_variants_with_bigkernel() {
    let s = speedups(&AffinityIndexed {
        merchants: 256,
        cards: 1024,
    });
    assert!(s[4] > s[3], "indexed: bigkernel {s:?} must beat double");
}

#[test]
fn fig5_volume_reduction_helps_partial_readers_not_full_scanners() {
    use bk_baselines::BigKernelVariant::{OverlapOnly, VolumeReduction};
    let imps = [
        Implementation::GpuSingleBuffer,
        Implementation::Variant(OverlapOnly),
        Implementation::Variant(VolumeReduction),
    ];
    // Netflix reads 30%: volume reduction must be a big step.
    let r = run_all(&Netflix, BYTES, SEED, &cfg(), &imps);
    let overlap = r[0].1.total.ratio(r[1].1.total);
    let volume = r[0].1.total.ratio(r[2].1.total);
    assert!(volume > overlap * 1.3, "netflix: {overlap} -> {volume}");
    // Word Count reads 100%: volume reduction is a no-op.
    let r = run_all(
        &WordCount {
            vocab: 2048,
            skew: 1.0,
        },
        BYTES,
        SEED,
        &cfg(),
        &imps,
    );
    let overlap = r[0].1.total.ratio(r[1].1.total);
    let volume = r[0].1.total.ratio(r[2].1.total);
    assert!(
        (volume / overlap - 1.0).abs() < 0.15,
        "wordcount: {overlap} -> {volume}"
    );
}

#[test]
fn fig4b_wordcount_is_computation_dominant_in_single_buffer() {
    let r = run_all(
        &WordCount {
            vocab: 2048,
            skew: 1.0,
        },
        BYTES,
        SEED,
        &cfg(),
        &[Implementation::GpuSingleBuffer],
    );
    let comp = r[0].1.stage_busy("compute");
    let comm = r[0].1.stage_busy("stage-pin") + r[0].1.stage_busy("transfer");
    assert!(comp > comm, "WC comp {comp} should dominate comm {comm}");
    // ... and K-means is the opposite (communication-dominant).
    let r = run_all(
        &KMeans { k: 16 },
        BYTES,
        SEED,
        &cfg(),
        &[Implementation::GpuSingleBuffer],
    );
    let comp = r[0].1.stage_busy("compute");
    let comm = r[0].1.stage_busy("stage-pin")
        + r[0].1.stage_busy("transfer")
        + r[0].1.stage_busy("wb-xfer");
    assert!(
        comm > comp,
        "K-means comm {comm} should dominate comp {comp}"
    );
}

#[test]
fn table2_pattern_gains_are_largest_for_byte_granular_apps() {
    let run_bk = |app: &(dyn BenchApp + Sync), patterns: bool| {
        let mut c = cfg();
        c.bigkernel.pattern_recognition = patterns;
        run_all(app, BYTES, SEED, &c, &[Implementation::BigKernel])[0]
            .1
            .total
    };
    let improvement =
        |app: &(dyn BenchApp + Sync)| run_bk(app, false).ratio(run_bk(app, true)) - 1.0;
    let wc = improvement(&WordCount {
        vocab: 2048,
        skew: 1.0,
    });
    let netflix = improvement(&Netflix);
    // Word Count sends one address per character — the paper's Table II has
    // it far above Netflix (66% vs 3%).
    assert!(wc > netflix, "wc {wc} vs netflix {netflix}");
    assert!(wc > 0.2, "wc improvement {wc} should be substantial");
}

#[test]
fn fig6_addr_gen_is_never_the_bottleneck_for_patterned_apps() {
    // Paper: "prefetch address generation takes the least amount of time
    // across all applications" (for pattern-friendly apps; the indexed
    // variant ships raw addresses and is the exception).
    for app in [
        &KMeans { k: 16 } as &(dyn BenchApp + Sync),
        &Netflix,
        &OpinionFinder { vocab: 512 },
        &DnaAssembly {
            distinct_fragments: 512,
        },
    ] {
        let r = run_all(app, BYTES, SEED, &cfg(), &[Implementation::BigKernel]);
        let rel = r[0].1.relative_stage_times();
        let ag = rel.iter().find(|(n, _)| *n == "addr-gen").unwrap().1;
        assert!(
            ag < 1.0,
            "{}: addr-gen must not be the slowest stage",
            app.spec().name
        );
    }
}

#[test]
fn mastercard_plain_transfers_everything_indexed_does_not() {
    let plain = run_all(
        &Affinity {
            merchants: 256,
            cards: 1024,
        },
        BYTES,
        SEED,
        &cfg(),
        &[Implementation::BigKernel],
    );
    let indexed = run_all(
        &AffinityIndexed {
            merchants: 256,
            cards: 1024,
        },
        BYTES,
        SEED,
        &cfg(),
        &[Implementation::BigKernel],
    );
    let h2d_plain = plain[0].1.metrics.get("pcie.h2d_bytes");
    let h2d_indexed = indexed[0].1.metrics.get("pcie.h2d_bytes");
    assert!(
        h2d_indexed * 2 < h2d_plain,
        "indexed h2d {h2d_indexed} should be far below plain {h2d_plain}"
    );
}

//! End-to-end compiler validation: the paper's running example (K-means)
//! written in the `bk-kernelc` IR, compiled (address slice derived
//! mechanically), executed on the full BigKernel pipeline with the FIFO
//! cross-check on, and compared bit-for-bit against the hand-written
//! `bk-apps` K-means reference.

use bigkernel::kernelc::ir::{BinOp, Expr, KernelIr, Stmt, Var, RANGE_END, RANGE_START};
use bigkernel::kernelc::{count_stmts, IrKernel};
use bigkernel::runtime::{
    run_bigkernel, BigKernelConfig, LaunchConfig, Machine, StreamArray, StreamId,
};
use bk_apps::kmeans::{closest_cluster, RECORD};
use bk_simcore::SplitMix64;

/// The K-means assignment kernel in IR form (paper §III's running example):
/// for each 64-byte particle record, read the four coordinate doubles, find
/// the nearest of `k` centroids held in device buffer 0, and write the
/// cluster id back into the record.
fn kmeans_ir(k: u64) -> KernelIr {
    let i = Var(2);
    let c = Var(3);
    let best = Var(4);
    let best_d = Var(5);
    let d = Var(6);
    let (x, y, z, w) = (Var(7), Var(8), Var(9), Var(10));
    let t = Var(11);

    let read_f64 =
        |off: Expr| -> Expr { Expr::BitsToFloat(Box::new(Expr::stream_read(0, off, 8))) };
    let dev_f64 = |off: Expr| -> Expr {
        Expr::BitsToFloat(Box::new(Expr::DevRead {
            buf: 0,
            offset: Box::new(off),
            width: 8,
        }))
    };
    let coord_off = |base: Var, f: u64| Expr::add(Expr::var(base), Expr::int(f * 8));
    let centre_off = |f: u64| {
        Expr::add(
            Expr::bin(BinOp::Mul, Expr::var(c), Expr::int(32)),
            Expr::int(f * 8),
        )
    };
    // d += (p - centre)^2 for one dimension, accumulated via `t`.
    let dim_term = |p: Var, f: u64| -> Vec<Stmt> {
        vec![
            Stmt::Assign(
                t,
                Expr::bin(BinOp::Sub, Expr::var(p), dev_f64(centre_off(f))),
            ),
            Stmt::Assign(
                d,
                Expr::add(
                    Expr::var(d),
                    Expr::bin(BinOp::Mul, Expr::var(t), Expr::var(t)),
                ),
            ),
        ]
    };

    let mut cluster_body = vec![Stmt::Assign(d, Expr::ConstFloat(0.0))];
    for (f, p) in [x, y, z, w].into_iter().enumerate() {
        cluster_body.extend(dim_term(p, f as u64));
    }
    cluster_body.push(Stmt::If {
        cond: Expr::lt(Expr::var(d), Expr::var(best_d)),
        then_body: vec![
            Stmt::Assign(best_d, Expr::var(d)),
            Stmt::Assign(best, Expr::var(c)),
        ],
        else_body: vec![],
    });
    cluster_body.push(Stmt::Assign(c, Expr::add(Expr::var(c), Expr::int(1))));

    KernelIr {
        name: "kmeans-ir",
        record_size: Some(RECORD),
        halo_bytes: 0,
        num_dev_bufs: 1,
        body: vec![
            Stmt::Assign(i, Expr::var(RANGE_START)),
            Stmt::While {
                cond: Expr::lt(Expr::var(i), Expr::var(RANGE_END)),
                body: vec![
                    Stmt::Assign(x, read_f64(coord_off(i, 0))),
                    Stmt::Assign(y, read_f64(coord_off(i, 1))),
                    Stmt::Assign(z, read_f64(coord_off(i, 2))),
                    Stmt::Assign(w, read_f64(coord_off(i, 3))),
                    Stmt::Assign(best, Expr::int(0)),
                    Stmt::Assign(best_d, Expr::ConstFloat(f64::INFINITY)),
                    Stmt::Assign(c, Expr::int(0)),
                    Stmt::While {
                        cond: Expr::lt(Expr::var(c), Expr::int(k)),
                        body: cluster_body,
                    },
                    Stmt::StreamWrite {
                        stream: 0,
                        offset: Expr::add(Expr::var(i), Expr::int(32)),
                        width: 8,
                        value: Expr::var(best),
                    },
                    Stmt::Assign(i, Expr::add(Expr::var(i), Expr::int(RECORD))),
                ],
            },
        ],
    }
}

struct Setup {
    machine: Machine,
    stream: StreamArray,
    clusters: Vec<[f64; 4]>,
    n: u64,
}

fn setup(n: u64, k: u64, seed: u64) -> Setup {
    let mut machine = Machine::test_platform();
    let mut rng = SplitMix64::new(seed);
    let clusters: Vec<[f64; 4]> = (0..k)
        .map(|_| {
            let mut c = [0.0; 4];
            for v in c.iter_mut() {
                *v = rng.next_f64() * 1000.0;
            }
            c
        })
        .collect();
    let region = machine.hmem.alloc(n * RECORD);
    for r in 0..n {
        for f in 0..4u64 {
            let v = rng.next_f64() * 1000.0;
            machine.hmem.write_f64(region, r * RECORD + f * 8, v);
        }
        machine.hmem.write_u64(region, r * RECORD + 32, u64::MAX);
    }
    let stream = StreamArray::map(&machine, StreamId(0), region);
    Setup {
        machine,
        stream,
        clusters,
        n,
    }
}

fn upload_clusters(machine: &mut Machine, clusters: &[[f64; 4]]) -> bigkernel::runtime::DevBufId {
    let buf = machine.gmem.alloc(clusters.len() as u64 * 32);
    for (i, c) in clusters.iter().enumerate() {
        for (f, &v) in c.iter().enumerate() {
            machine.gmem.write_f64(buf, i as u64 * 32 + f as u64 * 8, v);
        }
    }
    buf
}

#[test]
fn compiled_kmeans_matches_the_handwritten_reference() {
    let (n, k) = (2048u64, 8u64);
    let mut s = setup(n, k, 77);
    let dev = upload_clusters(&mut s.machine, &s.clusters);
    let kernel = IrKernel::compile(kmeans_ir(k), vec![dev]).expect("kmeans is sliceable");

    // The derived slice must be much smaller than the kernel (only control
    // flow + address arithmetic survive), echoing the paper's observation
    // that the *generated* kernel grows while the addr-gen half stays thin.
    let full_size = count_stmts(&kmeans_ir(k).body);
    let slice_size = count_stmts(&kernel.address_slice().body);
    assert!(
        slice_size * 2 < full_size,
        "slice {slice_size} vs full {full_size} statements"
    );

    let cfg = BigKernelConfig {
        chunk_input_bytes: 32 * 1024,
        ..BigKernelConfig::default()
    };
    assert!(cfg.verify_reads, "FIFO cross-check must stay on");
    let result = run_bigkernel(
        &mut s.machine,
        &kernel,
        &[s.stream],
        LaunchConfig::new(2, 32),
        &cfg,
    );

    // Every record's cid must equal the hand-written app's shared reference.
    for r in 0..s.n {
        let mut p = [0.0f64; 4];
        for (f, v) in p.iter_mut().enumerate() {
            *v = s
                .machine
                .hmem
                .read_f64(s.stream.region, r * RECORD + f as u64 * 8);
        }
        let want = closest_cluster(&p, &s.clusters);
        let got = s.machine.hmem.read_u64(s.stream.region, r * RECORD + 32);
        assert_eq!(got, want, "record {r}");
    }
    // The xyzw/record walk plus the cid write must both pattern-compress.
    assert!(result.metrics.get("addr.patterns_found") > 0);
    assert_eq!(result.metrics.get("addr.patterns_missed"), 0);
}

#[test]
fn compiled_kmeans_runs_on_baselines_too() {
    use bigkernel::baselines::{run_gpu_double_buffer, BaselineConfig};
    let (n, k) = (1024u64, 4u64);
    let mut s = setup(n, k, 13);
    let dev = upload_clusters(&mut s.machine, &s.clusters);
    let kernel = IrKernel::compile(kmeans_ir(k), vec![dev]).unwrap();
    let cfg = BaselineConfig {
        window_bytes: 16 * 1024,
        ..BaselineConfig::default()
    };
    run_gpu_double_buffer(
        &mut s.machine,
        &kernel,
        &[s.stream],
        LaunchConfig::new(1, 32),
        &cfg,
    );
    for r in 0..s.n {
        let mut p = [0.0f64; 4];
        for (f, v) in p.iter_mut().enumerate() {
            *v = s
                .machine
                .hmem
                .read_f64(s.stream.region, r * RECORD + f as u64 * 8);
        }
        assert_eq!(
            s.machine.hmem.read_u64(s.stream.region, r * RECORD + 32),
            closest_cluster(&p, &s.clusters),
        );
    }
}

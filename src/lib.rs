//! # bigkernel — facade crate for the BigKernel (IPDPS 2014) reproduction
//!
//! *BigKernel — High Performance CPU-GPU Communication Pipelining for Big
//! Data-style Applications*, Mokhtari & Stumm, IPDPS 2014 — reimplemented in
//! Rust on a functional + timing simulator of the paper's platform.
//!
//! This crate re-exports the workspace:
//!
//! * [`runtime`] — the BigKernel system itself: `streamingMalloc`/
//!   `streamingMap` stream arrays, the 4(+2)-stage pipeline, §IV.A pattern
//!   recognition, §IV.B locality-ordered assembly, §IV.C synchronization,
//!   §IV.D active-block buffer allocation.
//! * [`kernelc`] — the compiler transformations on a small kernel IR.
//! * [`baselines`] — the four comparison implementations and the Fig. 5
//!   ablation variants.
//! * [`apps`] — the six evaluation applications with synthetic generators.
//! * [`mapreduce`] — MapReduce over streamed data (the paper's §VIII future
//!   work, built on the runtime).
//! * [`gpu`] / [`host`] / [`simcore`] — the simulated substrates.
//!
//! Start with [`prelude`] and the `examples/` directory; `DESIGN.md` maps
//! every paper section to a module and `EXPERIMENTS.md` records
//! paper-vs-measured results for every table and figure.

pub use bk_apps as apps;
pub use bk_baselines as baselines;
pub use bk_gpu as gpu;
pub use bk_host as host;
pub use bk_kernelc as kernelc;
pub use bk_mapreduce as mapreduce;
pub use bk_runtime as runtime;
pub use bk_simcore as simcore;

pub mod prelude {
    //! One-stop imports for writing and running BigKernel programs.
    pub use bk_baselines::{
        run_cpu_multithreaded, run_cpu_serial, run_gpu_double_buffer, run_gpu_single_buffer,
        BaselineConfig, BigKernelVariant, CpuCtx,
    };
    pub use bk_runtime::{
        run_bigkernel, AddrGenCtx, BigKernelConfig, ComputeCtx, DevBufId, KernelCtx, LaunchConfig,
        Machine, RunResult, StreamArray, StreamId, StreamKernel, SyncMode, ValueExt,
    };
    pub use bk_simcore::{Counters, SimTime};
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_are_wired() {
        let m = crate::runtime::Machine::paper_platform();
        assert_eq!(m.gpu().total_cores(), 1536);
        let _ = crate::prelude::BigKernelConfig::default();
    }
}

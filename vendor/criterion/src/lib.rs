//! Vendored minimal subset of the `criterion` API.
//!
//! The build environment for this repository is hermetic (no crates.io
//! access), so the workspace vendors the slice of criterion its benches
//! use: `Criterion::bench_function`, benchmark groups with `sample_size`,
//! `Bencher::iter`/`iter_batched`, and the `criterion_group!`/
//! `criterion_main!` macros. Measurement is a plain warm-up + timed-batch
//! mean (no outlier analysis, no plotting); results print one line per
//! benchmark. A `--bench`-style CLI filter argument is honoured: any
//! non-flag argument substring-filters benchmark names, matching how
//! `cargo bench <filter>` is normally used. Swap this out for the real
//! crate by deleting the `vendor/` path entries in the workspace
//! `Cargo.toml`.

use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` inputs are grouped; measurement here times each
/// routine call individually, so the variants only exist for API parity.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

pub struct Bencher {
    /// Total measured time across `iters` routine invocations.
    elapsed: Duration,
    iters: u64,
    sample_size: u64,
}

impl Bencher {
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // Warm-up + calibration: find an iteration count that runs long
        // enough to time meaningfully, capped to keep benches quick.
        let mut calib = 1u64;
        let mut once;
        loop {
            let t0 = Instant::now();
            for _ in 0..calib {
                black_box(routine());
            }
            once = t0.elapsed() / calib.max(1) as u32;
            if once * calib as u32 >= Duration::from_millis(5) || calib >= 1 << 20 {
                break;
            }
            calib *= 4;
        }
        let per_iter = once.max(Duration::from_nanos(1));
        let target = Duration::from_millis(200);
        let iters = (target.as_nanos() / per_iter.as_nanos().max(1)) as u64;
        let iters = iters
            .clamp(1, 10 * self.sample_size.max(10))
            .max(self.sample_size);
        let t0 = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.elapsed = t0.elapsed();
        self.iters = iters;
    }

    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        let iters = self.sample_size.max(1);
        let mut total = Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            total += t0.elapsed();
        }
        self.elapsed = total;
        self.iters = iters;
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos() as f64;
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

pub struct Criterion {
    filter: Option<String>,
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        // Any non-flag CLI argument acts as a name filter, mirroring
        // `cargo bench <filter>`.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "bench");
        Criterion {
            filter,
            sample_size: 20,
        }
    }
}

impl Criterion {
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let sample_size = self.sample_size;
        self.run_one(id.into(), sample_size, f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
            sample_size: None,
        }
    }

    fn run_one(&mut self, name: String, sample_size: u64, mut f: impl FnMut(&mut Bencher)) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
            sample_size,
        };
        f(&mut b);
        if b.iters == 0 {
            println!("{name:<48} (no measurement)");
            return;
        }
        let per_iter = b.elapsed / b.iters as u32;
        println!(
            "{name:<48} {:>12}/iter ({} iters)",
            fmt_duration(per_iter),
            b.iters
        );
    }
}

pub struct BenchmarkGroup<'c> {
    parent: &'c mut Criterion,
    name: String,
    sample_size: Option<u64>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n as u64);
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        let sample = self.sample_size.unwrap_or(self.parent.sample_size);
        self.parent.run_one(full, sample, f);
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion {
            filter: None,
            sample_size: 5,
        };
        let mut runs = 0u64;
        c.bench_function("smoke/add", |b| {
            b.iter(|| {
                runs += 1;
                black_box(2u64 + 2)
            })
        });
        assert!(runs > 0);
    }

    #[test]
    fn groups_apply_filter() {
        let mut c = Criterion {
            filter: Some("nomatch".into()),
            sample_size: 5,
        };
        let mut ran = false;
        let mut g = c.benchmark_group("g");
        g.sample_size(10);
        g.bench_function("case", |_b| ran = true);
        g.finish();
        assert!(!ran, "filtered benchmark must not run");
    }

    #[test]
    fn iter_batched_times_every_sample() {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
            sample_size: 7,
        };
        let mut setups = 0;
        b.iter_batched(
            || {
                setups += 1;
                vec![1u8; 64]
            },
            |v| v.iter().map(|&x| x as u64).sum::<u64>(),
            BatchSize::SmallInput,
        );
        assert_eq!(setups, 7);
        assert_eq!(b.iters, 7);
    }
}

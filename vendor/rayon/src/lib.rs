//! Vendored minimal subset of the `rayon` API, implemented on
//! `std::thread::scope`.
//!
//! The build environment for this repository is hermetic (no crates.io
//! access), so the workspace vendors the small slice of rayon it actually
//! uses: `par_iter().map().collect()`, `par_iter_mut().for_each()`,
//! `ThreadPoolBuilder` (global pool size + `install`), and
//! `current_num_threads`. The implementation spawns scoped OS threads that
//! pull indices from a shared atomic counter; panics from workers propagate
//! with their original payload (via `std::thread::scope`'s join-and-resume
//! behaviour), matching rayon. Swap this out for the real crate by deleting
//! the `vendor/` path entries in the workspace `Cargo.toml`.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Workspace-global thread count configured by `ThreadPoolBuilder::
/// build_global` (0 = unset, fall back to `RAYON_NUM_THREADS` or the
/// machine's parallelism).
static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Per-thread override installed by `ThreadPool::install`.
    static INSTALLED_THREADS: Cell<usize> = const { Cell::new(0) };
}

fn default_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The number of threads parallel iterators will use right now.
pub fn current_num_threads() -> usize {
    let installed = INSTALLED_THREADS.with(|c| c.get());
    if installed > 0 {
        return installed;
    }
    let global = GLOBAL_THREADS.load(Ordering::Relaxed);
    if global > 0 {
        return global;
    }
    default_threads()
}

#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        ThreadPoolBuilder { num_threads: 0 }
    }

    /// 0 means "choose automatically", like rayon.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Set the global pool size. Like rayon, the first call wins; later
    /// calls return an error (harmless to ignore).
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            default_threads()
        } else {
            self.num_threads
        };
        match GLOBAL_THREADS.compare_exchange(0, n, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => Ok(()),
            Err(_) => Err(ThreadPoolBuildError),
        }
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            default_threads()
        } else {
            self.num_threads
        };
        Ok(ThreadPool { num_threads: n })
    }
}

/// A "pool" is just a thread-count scope: `install` makes parallel
/// iterators inside the closure use this pool's width. Threads are spawned
/// per operation (scoped), which keeps the implementation tiny; the
/// simulator's parallel sections are long-running, so spawn cost is noise.
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }

    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        INSTALLED_THREADS.with(|c| {
            let prev = c.get();
            c.set(self.num_threads);
            let guard = RestoreOnDrop { prev };
            let out = f();
            drop(guard);
            out
        })
    }
}

struct RestoreOnDrop {
    prev: usize,
}

impl Drop for RestoreOnDrop {
    fn drop(&mut self) {
        INSTALLED_THREADS.with(|c| c.set(self.prev));
    }
}

/// Raw-pointer wrapper so disjoint-index writes can cross the scope
/// boundary. Each index is claimed by exactly one worker (atomic counter),
/// so no element is aliased.
struct SyncPtr<T>(*mut T);
unsafe impl<T: Send> Sync for SyncPtr<T> {}

/// Run `f(i)` for every `i in 0..len`, distributing indices over the
/// current thread count. Inline (no threads) when the width or the length
/// makes parallelism pointless.
fn parallel_indices(len: usize, f: &(impl Fn(usize) + Sync)) {
    let threads = current_num_threads().min(len);
    if threads <= 1 {
        for i in 0..len {
            f(i);
        }
        return;
    }
    let next = AtomicUsize::new(0);
    // `thread::scope` replaces a worker's panic payload with a generic
    // "a scoped thread panicked"; catch payloads ourselves so the first
    // one resumes unchanged on the caller (rayon's documented behavior —
    // and what `#[should_panic(expected = ...)]` tests rely on).
    let payload: std::sync::Mutex<Option<Box<dyn std::any::Any + Send>>> =
        std::sync::Mutex::new(None);
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= len {
                        break;
                    }
                    f(i);
                }));
                if let Err(p) = r {
                    payload.lock().unwrap().get_or_insert(p);
                    // Park remaining indices: later workers drain quickly.
                    next.fetch_add(len, Ordering::Relaxed);
                }
            });
        }
    });
    if let Some(p) = payload.into_inner().unwrap() {
        std::panic::resume_unwind(p);
    }
}

pub mod iter {
    use super::{parallel_indices, SyncPtr};

    /// Parallel shared-reference iterator over a slice.
    pub struct ParIter<'data, T> {
        items: &'data [T],
    }

    impl<'data, T: Sync> ParIter<'data, T> {
        pub fn map<R, F>(self, f: F) -> ParMap<'data, T, F>
        where
            F: Fn(&'data T) -> R + Sync,
            R: Send,
        {
            ParMap {
                items: self.items,
                f,
            }
        }

        pub fn for_each<F>(self, f: F)
        where
            F: Fn(&'data T) + Sync,
        {
            let items = self.items;
            parallel_indices(items.len(), &|i| f(&items[i]));
        }
    }

    pub struct ParMap<'data, T, F> {
        items: &'data [T],
        f: F,
    }

    impl<'data, T: Sync, F> ParMap<'data, T, F> {
        /// Evaluate in parallel, preserving input order, then collect.
        pub fn collect<C, R>(self) -> C
        where
            F: Fn(&'data T) -> R + Sync,
            R: Send,
            C: FromIterator<R>,
        {
            let items = self.items;
            let f = &self.f;
            let mut out: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
            let optr = SyncPtr(out.as_mut_ptr());
            let optr = &optr;
            parallel_indices(items.len(), &|i| {
                let r = f(&items[i]);
                // SAFETY: index i is claimed by exactly one worker.
                unsafe { *optr.0.add(i) = Some(r) };
            });
            out.into_iter()
                .map(|o| o.expect("parallel map slot unfilled"))
                .collect()
        }
    }

    /// Parallel mutable iterator over a slice.
    pub struct ParIterMut<'data, T> {
        items: &'data mut [T],
    }

    impl<'data, T: Send> ParIterMut<'data, T> {
        pub fn for_each<F>(self, f: F)
        where
            F: Fn(&'data mut T) + Sync,
        {
            let len = self.items.len();
            let ptr = SyncPtr(self.items.as_mut_ptr());
            let ptr = &ptr;
            parallel_indices(len, &|i| {
                // SAFETY: index i is claimed by exactly one worker, so the
                // &mut references are disjoint.
                let item: &'data mut T = unsafe { &mut *ptr.0.add(i) };
                f(item);
            });
        }
    }

    pub trait IntoParallelRefIterator<'data> {
        type Item: 'data;
        fn par_iter(&'data self) -> ParIter<'data, Self::Item>;
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
        type Item = T;
        fn par_iter(&'data self) -> ParIter<'data, T> {
            ParIter { items: self }
        }
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Item = T;
        fn par_iter(&'data self) -> ParIter<'data, T> {
            ParIter { items: self }
        }
    }

    pub trait IntoParallelRefMutIterator<'data> {
        type Item: 'data;
        fn par_iter_mut(&'data mut self) -> ParIterMut<'data, Self::Item>;
    }

    impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for [T] {
        type Item = T;
        fn par_iter_mut(&'data mut self) -> ParIterMut<'data, T> {
            ParIterMut { items: self }
        }
    }

    impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for Vec<T> {
        type Item = T;
        fn par_iter_mut(&'data mut self) -> ParIterMut<'data, T> {
            ParIterMut { items: self }
        }
    }
}

pub mod prelude {
    pub use crate::iter::{IntoParallelRefIterator, IntoParallelRefMutIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0..1000).collect();
        let out: Vec<u64> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn for_each_mut_touches_every_item_once() {
        let mut v = vec![0u32; 777];
        v.par_iter_mut().for_each(|x| *x += 1);
        assert!(v.iter().all(|&x| x == 1));
    }

    #[test]
    fn install_scopes_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let outside = current_num_threads();
        let inside = pool.install(current_num_threads);
        assert_eq!(inside, 3);
        assert_eq!(current_num_threads(), outside);
    }

    #[test]
    fn worker_panics_propagate_with_payload() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let v: Vec<u32> = (0..64).collect();
        let r = std::panic::catch_unwind(|| {
            pool.install(|| {
                v.par_iter().for_each(|&x| {
                    if x == 13 {
                        panic!("unlucky number 13");
                    }
                })
            })
        });
        let payload = r.expect_err("must panic");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
        assert!(msg.contains("unlucky"), "payload lost: {msg:?}");
    }
}

//! Vendored minimal subset of the `proptest` API.
//!
//! The build environment for this repository is hermetic (no crates.io
//! access), so the workspace vendors the slice of proptest its tests use:
//! the `proptest!` macro, range/tuple/vec/select/any strategies,
//! `prop_map`/`prop_flat_map`, and `prop_assert!`/`prop_assert_eq!`.
//!
//! Differences from the real crate, chosen for simplicity:
//!
//! * Cases are generated from a fixed-seed SplitMix64 stream, so every run
//!   tests the same deterministic sequence of inputs (reproducible by
//!   construction; no persistence files needed).
//! * No shrinking: a failing case reports its case index and message.
//!
//! Swap this out for the real crate by deleting the `vendor/` path entries
//! in the workspace `Cargo.toml`.

pub mod test_runner {
    /// Deterministic RNG driving case generation (SplitMix64).
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn for_case(case: u32) -> Self {
            // Distinct, well-mixed stream per case index.
            TestRng {
                state: 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(case as u64 + 1),
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)` (n > 0).
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }
    }

    /// Runner configuration; only `cases` is meaningful here, the other
    /// fields exist so `..ProptestConfig::default()` spreads keep working.
    #[derive(Clone, Debug)]
    pub struct Config {
        pub cases: u32,
        pub max_shrink_iters: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config {
                cases: 64,
                max_shrink_iters: 0,
            }
        }
    }

    /// Failure type returned by `prop_assert!` and explicit `Err` returns
    /// inside `proptest!` bodies.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        Fail(String),
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of values. Unlike real proptest there is no value tree /
    /// shrinking; `generate` draws a value directly.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    pub struct BoxedStrategy<T>(Box<dyn DynStrategy<Value = T>>);

    trait DynStrategy {
        type Value;
        fn dyn_generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy> DynStrategy for S {
        type Value = S::Value;
        fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.dyn_generate(rng)
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Uniform choice among alternative strategies of one value type
    /// (backs `prop_oneof!`; unlike the real crate the alternatives are
    /// equally weighted).
    pub struct Union<T>(Vec<BoxedStrategy<T>>);

    impl<T> Union<T> {
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(
                !options.is_empty(),
                "prop_oneof! needs at least one alternative"
            );
            Union(options)
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.0.len() as u64) as usize;
            self.0[i].generate(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategies {
        ($(($($s:ident.$idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Size specifications accepted by [`vec`]: an exact length or a range.
    pub trait IntoSizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl IntoSizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.start() + rng.below((self.end() - self.start() + 1) as u64) as usize
        }
    }

    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct Select<T: Clone>(Vec<T>);

    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select() needs at least one option");
        Select(options)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len() as u64) as usize].clone()
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} == {:?}: {}", a, b, format!($($fmt)*));
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} != {:?}", a, b);
    }};
}

/// The `proptest!` macro: a block of `#[test]` functions whose arguments
/// are drawn from strategies. Bodies may use `prop_assert*` or return
/// `Err(TestCaseError)` to fail the current case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            #[allow(unused_imports)]
            use $crate::strategy::Strategy as _;
            let cfg: $crate::test_runner::Config = $cfg;
            for case in 0..cfg.cases {
                let mut rng = $crate::test_runner::TestRng::for_case(case);
                $(let $pat = ($strat).generate(&mut rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err(e) => {
                        panic!("proptest case {case} failed: {e}");
                    }
                }
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn composite() -> impl Strategy<Value = (usize, Vec<u64>)> {
        (1usize..=4).prop_flat_map(|n| (Just(n), crate::collection::vec(10u64..20, n)))
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn ranges_respect_bounds(x in 5u64..10, y in -3i64..3, z in 1usize..=6) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((-3..3).contains(&y));
            prop_assert!((1..=6).contains(&z));
        }

        #[test]
        fn flat_map_links_sizes((n, v) in composite()) {
            prop_assert_eq!(v.len(), n);
            prop_assert!(v.iter().all(|x| (10..20).contains(x)));
        }

        #[test]
        fn select_picks_from_options(w in crate::sample::select(vec![1u32, 2, 4, 8])) {
            prop_assert!([1, 2, 4, 8].contains(&w));
        }

        #[test]
        fn oneof_draws_from_each_alternative(v in crate::prop_oneof![0u64..10, 100u64..110]) {
            prop_assert!((0..10).contains(&v) || (100..110).contains(&v));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::strategy::Strategy as _;
        let draw = |case| {
            let mut rng = crate::test_runner::TestRng::for_case(case);
            (0u64..1000).generate(&mut rng)
        };
        assert_eq!(draw(3), draw(3));
    }
}

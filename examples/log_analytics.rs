//! Domain scenario: streaming log analytics over a mapped log file.
//!
//! A Big-Data-style filter/aggregate in the spirit of the paper's intro: a
//! large newline-delimited access log is scanned for entries of one severity
//! and bucketed into a per-hour histogram GPU-side. Variable-length records,
//! 100% of the data read, byte-granular scanning — the Word-Count-shaped
//! workload where §IV.A pattern recognition is essential.
//!
//! Run with: `cargo run --release --example log_analytics`

use bk_baselines::{run_gpu_double_buffer, BaselineConfig};
use bk_runtime::ctx::AddrGenCtx;
use bk_runtime::{
    run_bigkernel, BigKernelConfig, KernelCtx, LaunchConfig, Machine, StreamArray, StreamId,
    StreamKernel, ValueExt,
};
use bk_simcore::SplitMix64;
use std::ops::Range;

/// Log line: `HHXLmessage...\n` where `HH` is a two-digit hour, `X` the
/// severity class (E/W/I), `L` a single-char subsystem tag, followed by a
/// variable-length message.
struct LogHistogramKernel {
    /// 24 u64 buckets, device-resident.
    histogram: bk_runtime::DevBufId,
    severity: u8,
    len: u64,
}

const HALO: u64 = 96;

impl StreamKernel for LogHistogramKernel {
    fn name(&self) -> &'static str {
        "log-histogram"
    }

    fn record_size(&self) -> Option<u64> {
        None
    }

    fn halo_bytes(&self) -> u64 {
        HALO
    }

    fn addresses(&self, ctx: &mut AddrGenCtx<'_>, range: Range<u64>) {
        if range.is_empty() {
            return;
        }
        // Variable-length lines force a full scan (paper Table I, Word
        // Count / MasterCard Affinity pattern): every byte, period-1 stride.
        let end = (range.end + HALO).min(self.len);
        for p in range.start..end {
            ctx.emit_read(StreamId(0), p, 1);
        }
    }

    fn process(&self, ctx: &mut dyn KernelCtx, range: Range<u64>) {
        if range.is_empty() {
            return;
        }
        let len = self.len;
        let mut p = range.start;
        if p > 0 {
            // Skip the line in progress (the previous thread finishes it).
            while p < len {
                let c = ctx.stream_read_u8(StreamId(0), p);
                p += 1;
                if c == b'\n' {
                    break;
                }
            }
        }
        while p < len && p <= range.end {
            let line_start = p;
            let mut hour = 0u64;
            let mut sev = 0u8;
            while p < len {
                let c = ctx.stream_read_u8(StreamId(0), p);
                ctx.alu(2);
                let rel = p - line_start;
                match rel {
                    0 => hour = (c - b'0') as u64 * 10,
                    1 => hour += (c - b'0') as u64,
                    2 => sev = c,
                    _ => {}
                }
                p += 1;
                if c == b'\n' {
                    break;
                }
            }
            if sev == self.severity {
                ctx.dev_atomic_add_u64(self.histogram, (hour % 24) * 8, 1);
            }
        }
    }
}

fn generate_log(bytes: u64, seed: u64) -> Vec<u8> {
    let mut rng = SplitMix64::new(seed);
    let mut log = Vec::with_capacity(bytes as usize);
    while (log.len() as u64) < bytes {
        let msg_len = rng.range_inclusive(10, 60) as usize;
        if log.len() + msg_len + 5 > bytes as usize {
            break;
        }
        let hour = rng.next_below(24);
        log.push(b'0' + (hour / 10) as u8);
        log.push(b'0' + (hour % 10) as u8);
        log.push(b"EWI"[rng.next_below(3) as usize]);
        log.push(b'a' + rng.next_below(26) as u8);
        for _ in 0..msg_len {
            log.push(b'a' + rng.next_below(26) as u8);
        }
        log.push(b'\n');
    }
    log.resize(bytes as usize, b' ');
    log
}

fn reference(log: &[u8], severity: u8) -> [u64; 24] {
    let mut hist = [0u64; 24];
    for line in log.split(|&b| b == b'\n') {
        if line.len() >= 3 && line[2] == severity {
            let hour = (line[0] - b'0') as usize * 10 + (line[1] - b'0') as usize;
            hist[hour % 24] += 1;
        }
    }
    hist
}

fn run(bytes: u64, bigkernel: bool) -> ([u64; 24], bk_simcore::SimTime) {
    let mut machine = Machine::paper_platform();
    machine.scale_fixed_costs((bytes as f64 / 6.0e9).clamp(1e-4, 1.0));
    let log = generate_log(bytes, 7);
    let region = machine.hmem.alloc_from(&log);
    let stream = StreamArray::map(&machine, StreamId(0), region);
    let histogram = machine.gmem.alloc(24 * 8);
    let kernel = LogHistogramKernel {
        histogram,
        severity: b'E',
        len: bytes,
    };
    let launch = LaunchConfig::new(16, 128);

    let total = if bigkernel {
        let cfg = BigKernelConfig {
            chunk_input_bytes: bytes / (16 * 12),
            ..BigKernelConfig::default()
        };
        run_bigkernel(&mut machine, &kernel, &[stream], launch, &cfg).total
    } else {
        let cfg = BaselineConfig {
            window_bytes: bytes / 12,
            ..BaselineConfig::default()
        };
        run_gpu_double_buffer(&mut machine, &kernel, &[stream], launch, &cfg).total
    };

    let mut hist = [0u64; 24];
    for (h, slot) in hist.iter_mut().enumerate() {
        *slot = machine.gmem.read_u64(histogram, h as u64 * 8);
    }
    let expect = reference(&log, b'E');
    assert_eq!(hist, expect, "histogram mismatch vs reference");
    (hist, total)
}

fn main() {
    let bytes = 16 << 20;
    println!(
        "scanning a {} MiB access log for severity-E lines...",
        bytes >> 20
    );
    let (hist, t_bk) = run(bytes, true);
    let (_, t_db) = run(bytes, false);
    let total: u64 = hist.iter().sum();
    println!(
        "{total} error lines; busiest hour = {:02}:00",
        hist.iter()
            .enumerate()
            .max_by_key(|&(_, c)| c)
            .map(|(h, _)| h)
            .unwrap()
    );
    println!("bigkernel     : {t_bk}");
    println!(
        "double-buffer : {t_db}  ({:.2}x vs bigkernel)",
        t_db.ratio(t_bk)
    );
    println!("\n(both runs produced identical histograms; the BigKernel run was");
    println!(" verified access-by-access against its address slice)");
}

//! Domain scenario: MapReduce on BigKernel — the paper's stated future work
//! ("we plan on applying BigKernel to MapReduce", §VIII).
//!
//! Computes the average rating per movie over a large mapped ratings log:
//! two streaming MapReduce jobs (sum and count per movie key) run on the
//! BigKernel engine, then the reduce phase divides host-side. The CPU engine
//! runs the same jobs for verification and comparison.
//!
//! Run with: `cargo run --release --example mapreduce_ratings`

use bk_mapreduce::{run_mapreduce, Emitter, Engine, MapJob, ReduceOp};
use bk_runtime::ctx::AddrGenCtx;
use bk_runtime::{
    BigKernelConfig, KernelCtx, LaunchConfig, Machine, StreamArray, StreamId, ValueExt,
};
use std::collections::BTreeMap;
use std::ops::Range;

/// Record: [movie: u32][user: u32][rating: u32][ts: u32] — 16 bytes.
const REC: u64 = 16;
const MOVIES: u64 = 500;

struct RatingJob;

impl MapJob for RatingJob {
    fn name(&self) -> &'static str {
        "movie-ratings"
    }

    fn record_size(&self) -> Option<u64> {
        Some(REC)
    }

    fn addresses(&self, ctx: &mut AddrGenCtx<'_>, range: Range<u64>) {
        let mut off = range.start;
        while off < range.end {
            ctx.emit_read(StreamId(0), off, 4); // movie
            ctx.emit_read(StreamId(0), off + 8, 4); // rating
            off += REC;
        }
    }

    fn map(&self, ctx: &mut dyn KernelCtx, range: Range<u64>, out: &Emitter) {
        let mut off = range.start;
        while off < range.end {
            let movie = ctx.stream_read_u32(StreamId(0), off);
            let rating = ctx.stream_read_u32(StreamId(0), off + 8);
            out.emit(ctx, movie as u64 + 1, rating as u64);
            off += REC;
        }
    }
}

fn generate(machine: &mut Machine, n: u64, seed: u64) -> Vec<StreamArray> {
    let mut prng = bk_simcore::SplitMix64::new(seed);
    let zipf = bk_simcore::Zipf::new(MOVIES as usize, 1.1);
    let region = machine.hmem.alloc(n * REC);
    for r in 0..n {
        let movie = zipf.sample(&mut prng) as u32;
        let user = prng.next_below(1_000_000) as u32;
        let rating = (1 + prng.next_below(5)) as u32;
        let ts = prng.next_below(1 << 30) as u32;
        machine.hmem.write_u32(region, r * REC, movie);
        machine.hmem.write_u32(region, r * REC + 4, user);
        machine.hmem.write_u32(region, r * REC + 8, rating);
        machine.hmem.write_u32(region, r * REC + 12, ts);
    }
    vec![StreamArray::map(machine, StreamId(0), region)]
}

fn averages(engine: &Engine, n: u64) -> (BTreeMap<u64, f64>, f64) {
    let mut machine = Machine::paper_platform();
    let streams = generate(&mut machine, n, 2024);
    let sums = run_mapreduce(
        &mut machine,
        &RatingJob,
        &streams,
        MOVIES,
        ReduceOp::Sum,
        engine,
    );
    let counts = run_mapreduce(
        &mut machine,
        &RatingJob,
        &streams,
        MOVIES,
        ReduceOp::Count,
        engine,
    );
    let count_map: BTreeMap<u64, u64> = counts.pairs.iter().copied().collect();
    let avgs = sums
        .pairs
        .iter()
        .map(|&(k, s)| (k, s as f64 / count_map[&k] as f64))
        .collect();
    (avgs, sums.run.total.secs() + counts.run.total.secs())
}

fn main() {
    let n = 1 << 20; // 16 MiB of rating records
    println!("averaging {n} ratings over {MOVIES} movies (two MapReduce passes)...");

    let bk_engine = Engine::BigKernel(
        BigKernelConfig {
            chunk_input_bytes: 128 * 1024,
            ..BigKernelConfig::default()
        },
        LaunchConfig::new(16, 128),
    );
    let cpu_engine = Engine::CpuMultithreaded;

    let (bk_avgs, bk_time) = averages(&bk_engine, n);
    let (cpu_avgs, cpu_time) = averages(&cpu_engine, n);
    assert_eq!(bk_avgs, cpu_avgs, "engines must agree exactly");

    let (&top, &top_avg) = bk_avgs
        .iter()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .unwrap();
    println!(
        "{} movies rated; best movie id {} with average {:.3}",
        bk_avgs.len(),
        top - 1,
        top_avg
    );
    println!("bigkernel engine : {:.3} ms (simulated)", bk_time * 1e3);
    println!(
        "cpu-mt engine    : {:.3} ms (simulated, identical output)",
        cpu_time * 1e3
    );
    println!("speedup          : {:.2}x", cpu_time / bk_time);
}

//! Domain scenario: the compiler route. A K-means-style kernel is written
//! once in the `bk-kernelc` IR; the address-generation half is *derived* by
//! the slicing pass (paper §III's compiler transformation), and the whole
//! thing runs on the BigKernel pipeline with the FIFO cross-check verifying
//! the transformation at every access.
//!
//! Run with: `cargo run --release --example compiled_kernel`

use bk_kernelc::ir::{BinOp, Expr, KernelIr, Stmt, Var, RANGE_END, RANGE_START};
use bk_kernelc::IrKernel;
use bk_runtime::{run_bigkernel, BigKernelConfig, LaunchConfig, Machine, StreamArray, StreamId};

/// 32-byte records: one `f64` sample at offset 0 (read), a threshold class
/// id written back at offset 8, and 16 unread metadata bytes.
///
/// ```text
/// i = range.start
/// while i < range.end {
///     x   = f64(stream[0][i]);
///     cls = (x >= cut0) + (x >= cut1)        // 3-way threshold classify
///     stream[0][i + 8] = cls                 // write-back
///     count[cls] += 1                        // device histogram
///     i += 32
/// }
/// ```
fn classify_ir(cut0: f64, cut1: f64) -> KernelIr {
    let i = Var(2);
    let x = Var(3);
    let cls = Var(4);
    KernelIr {
        name: "ir-classify",
        record_size: Some(32),
        halo_bytes: 0,
        num_dev_bufs: 1,
        body: vec![
            Stmt::Assign(i, Expr::var(RANGE_START)),
            Stmt::While {
                cond: Expr::lt(Expr::var(i), Expr::var(RANGE_END)),
                body: vec![
                    Stmt::Assign(
                        x,
                        Expr::BitsToFloat(Box::new(Expr::stream_read(0, Expr::var(i), 8))),
                    ),
                    Stmt::Assign(
                        cls,
                        Expr::add(
                            Expr::bin(BinOp::Le, Expr::ConstFloat(cut0), Expr::var(x)),
                            Expr::bin(BinOp::Le, Expr::ConstFloat(cut1), Expr::var(x)),
                        ),
                    ),
                    Stmt::StreamWrite {
                        stream: 0,
                        offset: Expr::add(Expr::var(i), Expr::int(8)),
                        width: 8,
                        value: Expr::var(cls),
                    },
                    Stmt::DevAtomicAdd {
                        buf: 0,
                        offset: Expr::bin(BinOp::Mul, Expr::var(cls), Expr::int(8)),
                        value: Expr::int(1),
                    },
                    Stmt::Assign(i, Expr::add(Expr::var(i), Expr::int(32))),
                ],
            },
        ],
    }
}

fn main() {
    let n = 262_144u64; // 8 MiB of records
    let (cut0, cut1) = (300.0, 700.0);

    let mut machine = Machine::paper_platform();
    let region = machine.hmem.alloc(n * 32);
    let mut rng = bk_simcore::SplitMix64::new(99);
    let mut expected = [0u64; 3];
    for r in 0..n {
        let x = rng.next_f64() * 1000.0;
        machine.hmem.write_f64(region, r * 32, x);
        let cls = (x >= cut0) as usize + (x >= cut1) as usize;
        expected[cls] += 1;
    }
    let stream = StreamArray::map(&machine, StreamId(0), region);
    let counts = machine.gmem.alloc(3 * 8);

    // The "compiler": derive the address slice mechanically.
    let kernel = IrKernel::compile(classify_ir(cut0, cut1), vec![counts])
        .expect("classify kernel has no indirections — sliceable");
    println!(
        "address slice derived: {} statements (from {} in the full kernel)",
        kernel.address_slice().body.len(),
        classify_ir(cut0, cut1).body.len()
    );
    println!(
        "\n--- full kernel ---\n{}",
        bk_kernelc::kernel_to_string(&classify_ir(cut0, cut1))
    );
    println!(
        "--- derived address slice ---\n{}",
        bk_kernelc::kernel_to_string(kernel.address_slice())
    );

    let cfg = BigKernelConfig::default();
    assert!(cfg.verify_reads, "FIFO cross-check stays on");
    let result = run_bigkernel(
        &mut machine,
        &kernel,
        &[stream],
        LaunchConfig::new(16, 128),
        &cfg,
    );

    let mut got = [0u64; 3];
    for (c, slot) in got.iter_mut().enumerate() {
        *slot = machine.gmem.read_u64(counts, c as u64 * 8);
    }
    assert_eq!(got, expected, "device histogram mismatch");
    // Spot-check the write-back.
    for r in [0u64, n / 2, n - 1] {
        let x = machine.hmem.read_f64(region, r * 32);
        let cls = (x >= cut0) as u64 + (x >= cut1) as u64;
        assert_eq!(machine.hmem.read_u64(region, r * 32 + 8), cls);
    }

    println!(
        "class counts: low={} mid={} high={}",
        got[0], got[1], got[2]
    );
    println!(
        "simulated time: {} over {} chunks",
        result.total, result.chunks
    );
    println!(
        "patterns found: {} (the sliced loop is perfectly periodic)",
        result.metrics.get("addr.patterns_found")
    );
    println!("\nevery compute-stage access was verified against the compiler-derived");
    println!("address stream — the transformation is machine-checked end to end.");
}

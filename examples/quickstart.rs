//! Quickstart: write one streaming kernel, run it under all five
//! implementations of the paper's evaluation, and compare.
//!
//! The kernel computes a checksum over 8-byte records of a mapped array
//! that is (pseudo-)larger than GPU memory would allow at full scale —
//! the `streamingMalloc`/`streamingMap` programming model from the paper's
//! §III example.
//!
//! Run with: `cargo run --release --example quickstart`

use bigkernel::prelude::*;
use bk_baselines::{
    run_cpu_multithreaded, run_cpu_serial, run_gpu_double_buffer, run_gpu_single_buffer,
    BaselineConfig,
};
use bk_runtime::ctx::AddrGenCtx;
use bk_runtime::{
    run_bigkernel, BigKernelConfig, KernelCtx, LaunchConfig, Machine, StreamArray, StreamId,
    StreamKernel,
};
use std::ops::Range;

/// Sums every record's value into a device accumulator.
struct ChecksumKernel {
    acc: bk_runtime::DevBufId,
}

impl StreamKernel for ChecksumKernel {
    fn name(&self) -> &'static str {
        "checksum"
    }

    fn record_size(&self) -> Option<u64> {
        Some(8)
    }

    /// The address half — what the paper's compiler transformation slices
    /// out of the kernel body (see `bk-kernelc` for the mechanical version).
    fn addresses(&self, ctx: &mut AddrGenCtx<'_>, range: Range<u64>) {
        let mut off = range.start;
        while off < range.end {
            ctx.emit_read(StreamId(0), off, 8);
            off += 8;
        }
    }

    /// The kernel body — identical code runs on the CPU baselines, the GPU
    /// buffered baselines, and BigKernel's compute stage.
    fn process(&self, ctx: &mut dyn KernelCtx, range: Range<u64>) {
        let mut sum = 0u64;
        let mut off = range.start;
        while off < range.end {
            sum = sum.wrapping_add(ctx.stream_read(StreamId(0), off, 8));
            ctx.alu(2);
            off += 8;
        }
        if !range.is_empty() {
            ctx.dev_atomic_add_u64(self.acc, 0, sum);
        }
    }
}

fn build(n: u64) -> (Machine, Vec<StreamArray>, u64) {
    // The paper's platform: GTX 680 + Xeon E5 quad + PCIe Gen3 x16, with
    // fixed per-transfer latencies scaled to the demo's data size the same
    // way the experiment harness does (DESIGN.md §8).
    let mut machine = Machine::paper_platform();
    machine.scale_fixed_costs(((n * 8) as f64 / 6.0e9).clamp(1e-4, 1.0));
    let region = machine.hmem.alloc(n * 8);
    let mut expected = 0u64;
    for i in 0..n {
        machine
            .hmem
            .write_u64(region, i * 8, i * 2654435761 % 1_000_003);
        expected = expected.wrapping_add(i * 2654435761 % 1_000_003);
    }
    // streamingMalloc + streamingMap.
    let stream = StreamArray::map(&machine, StreamId(0), region);
    (machine, vec![stream], expected)
}

fn main() {
    let n = 1 << 20; // 8 MiB of records
    let launch = LaunchConfig::new(16, 128);
    println!("checksum over {n} records ({} MiB mapped)", (n * 8) >> 20);

    let mut results: Vec<(&str, SimTime)> = Vec::new();
    let run = |name: &'static str,
               f: &dyn Fn(&mut Machine, &ChecksumKernel, &[StreamArray]) -> SimTime,
               results: &mut Vec<(&str, SimTime)>| {
        let (mut machine, streams, expected) = build(n);
        let acc = machine.gmem.alloc(8);
        let kernel = ChecksumKernel { acc };
        let t = f(&mut machine, &kernel, &streams);
        assert_eq!(
            machine.gmem.read_u64(acc, 0),
            expected,
            "{name}: wrong checksum"
        );
        results.push((name, t));
    };

    // ~12 chunk rounds at this size, mirroring HarnessConfig::paper_scaled.
    let bl = BaselineConfig {
        window_bytes: (n * 8) / 12,
        ..BaselineConfig::default()
    };
    let bk = BigKernelConfig {
        chunk_input_bytes: (n * 8) / (16 * 12),
        ..BigKernelConfig::default()
    };
    run(
        "cpu-serial",
        &|m, k, s| run_cpu_serial(m, k, s).total,
        &mut results,
    );
    run(
        "cpu-multithreaded",
        &|m, k, s| run_cpu_multithreaded(m, k, s).total,
        &mut results,
    );
    run(
        "gpu-single-buffer",
        &|m, k, s| run_gpu_single_buffer(m, k, s, launch, &bl).total,
        &mut results,
    );
    run(
        "gpu-double-buffer",
        &|m, k, s| run_gpu_double_buffer(m, k, s, launch, &bl).total,
        &mut results,
    );
    run(
        "bigkernel",
        &|m, k, s| run_bigkernel(m, k, s, launch, &bk).total,
        &mut results,
    );

    let serial = results[0].1;
    println!(
        "{:<20} {:>12} {:>9}",
        "implementation", "sim time", "speedup"
    );
    for (name, t) in &results {
        println!(
            "{name:<20} {:>12} {:>8.2}x",
            format!("{t}"),
            serial.ratio(*t)
        );
    }
    println!("\nevery implementation produced the identical checksum — the same");
    println!("kernel body ran under five different execution schemes.");
    println!("\n(a pure checksum has ~zero compute per byte, so the CPU — which never");
    println!(" crosses PCIe — wins outright; BigKernel's job is to beat the other GPU");
    println!(" schemes, and the paper's six real workloads are where the GPU pays off.");
    println!(" run the bk-bench binaries to see those.)");
}

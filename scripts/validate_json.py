#!/usr/bin/env python3
"""Validate a JSON document against a checked-in schema, stdlib only.

Usage: validate_json.py SCHEMA.json DOCUMENT.json

Implements the subset of JSON Schema the schemas in `schemas/` use:
`type` (string or list, including "null"), `required`, `properties`,
`additionalProperties` (`false` rejects properties not listed; a schema
applies to them), `items`, `enum`, `minimum`, `maximum`, and `minItems`.
Unknown keywords are ignored, matching JSON Schema's open-world
semantics. Exits 0 on success; on the first violation prints the
JSON-pointer-ish path and exits 1.
"""

import json
import sys

TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "number": (int, float),
    "integer": int,
    "boolean": bool,
    "null": type(None),
}


def type_ok(value, name):
    if name not in TYPES:
        raise SystemExit(f"schema error: unknown type {name!r}")
    # bool is a subclass of int in Python; JSON treats them as distinct.
    if isinstance(value, bool):
        return name == "boolean"
    return isinstance(value, TYPES[name])


def check(value, schema, path):
    def fail(msg):
        raise SystemExit(f"{doc_path}: {path or '$'}: {msg}")

    t = schema.get("type")
    if t is not None:
        names = t if isinstance(t, list) else [t]
        if not any(type_ok(value, n) for n in names):
            fail(f"expected {' or '.join(names)}, got {type(value).__name__}")

    if "enum" in schema and value not in schema["enum"]:
        fail(f"{value!r} not in {schema['enum']}")

    if isinstance(value, (int, float)) and not isinstance(value, bool):
        if "minimum" in schema and value < schema["minimum"]:
            fail(f"{value!r} below minimum {schema['minimum']}")
        if "maximum" in schema and value > schema["maximum"]:
            fail(f"{value!r} above maximum {schema['maximum']}")

    if isinstance(value, dict):
        for key in schema.get("required", []):
            if key not in value:
                fail(f"missing required property {key!r}")
        props = schema.get("properties", {})
        extra = schema.get("additionalProperties")
        for key, sub in value.items():
            if key in props:
                check(sub, props[key], f"{path}.{key}")
            elif extra is False:
                fail(f"unknown property {key!r} (additionalProperties: false)")
            elif isinstance(extra, dict):
                check(sub, extra, f"{path}.{key}")

    if isinstance(value, list):
        if len(value) < schema.get("minItems", 0):
            fail(f"expected at least {schema['minItems']} items, got {len(value)}")
        items = schema.get("items")
        if isinstance(items, dict):
            for i, sub in enumerate(value):
                check(sub, items, f"{path}[{i}]")


if __name__ == "__main__":
    if len(sys.argv) != 3:
        raise SystemExit(__doc__.strip().splitlines()[2])
    schema_path, doc_path = sys.argv[1], sys.argv[2]
    with open(schema_path) as f:
        schema = json.load(f)
    with open(doc_path) as f:
        doc = json.load(f)
    check(doc, schema, "$")
    print(f"{doc_path}: valid against {schema_path}")

#!/usr/bin/env python3
"""Noise-aware comparison of two BENCH_pipeline.json snapshots, stdlib only.

Usage: bench_diff.py BASELINE.json CURRENT.json [--wall-tol F] [--sim-tol F]

Fields are judged by how they were produced:

* **wall-clock fields** (`wall_secs`, `blocks_per_sec`) move with host load,
  so they get a loose relative threshold (`--wall-tol`, default 0.25) and
  only a *worsening* beyond it counts — faster is never a regression.
* **simulated-time fields** (`critical_path.makespan_ns`, scaling
  `sim_secs`) are deterministic given the code, so any change is signal: a
  worsening beyond `--sim-tol` (default 0.01) is a regression, and any
  drift at all is reported.
* **structural fields** (`chunks`, `num_blocks`, `gpus`) must match
  exactly.
* **fusion rows** are functional/simulated end to end (which apps fused,
  the PCIe byte counts moved, the simulated times), so every field must
  match exactly; any difference is a regression.
* **streaming runs** (two BENCH_streaming.json files, recognized by the
  `source_rate_factor` key) are keyed by (app, window, queue_bound):
  simulated timing fields (`sim_secs`, `sustained_bytes_per_sec`,
  `p99_latency_us`, `backpressure_ns`) get the sim tolerance in their
  worsening direction; counts (`windows`, `max_depth`, `redetects`,
  `retunes`) and `verified` must match exactly.

Only apps present in both files are compared (the intersection); apps
appearing on one side only are reported informationally, as are
`provenance` differences. Exits 0 when everything is within thresholds,
1 on any regression, 2 on usage errors — CI wires this as a soft gate
against the committed baseline.
"""

import json
import sys


def rel(cur, base):
    return (cur - base) / abs(base) if base else (0.0 if cur == base else float("inf"))


def fmt_delta(cur, base):
    return f"{base:g} -> {cur:g} ({rel(cur, base):+.1%})"


def main(argv):
    wall_tol, sim_tol = 0.25, 0.01
    args = []
    i = 0
    while i < len(argv):
        a = argv[i]
        if a in ("--wall-tol", "--sim-tol"):
            if i + 1 >= len(argv):
                raise SystemExit(f"{a} needs a value")
            try:
                v = float(argv[i + 1])
            except ValueError:
                raise SystemExit(f"{a} needs a number, got {argv[i + 1]!r}")
            if a == "--wall-tol":
                wall_tol = v
            else:
                sim_tol = v
            i += 2
        elif a.startswith("--"):
            raise SystemExit(f"unknown option {a!r}\n\n{__doc__.strip()}")
        else:
            args.append(a)
            i += 1
    if len(args) != 2:
        raise SystemExit(__doc__.strip().splitlines()[2])

    with open(args[0]) as f:
        base = json.load(f)
    with open(args[1]) as f:
        cur = json.load(f)

    regressions = []
    notes = []

    bp, cp = base.get("provenance", {}), cur.get("provenance", {})
    for key in sorted(set(bp) | set(cp)):
        if bp.get(key) != cp.get(key):
            notes.append(f"provenance.{key}: {bp.get(key)!r} -> {cp.get(key)!r}")

    base_apps = {a["app"]: a for a in base.get("apps", [])}
    cur_apps = {a["app"]: a for a in cur.get("apps", [])}
    for name in sorted(set(base_apps) ^ set(cur_apps)):
        side = "baseline" if name in base_apps else "current"
        notes.append(f"app {name!r} only in {side}; skipped")

    for name in sorted(set(base_apps) & set(cur_apps)):
        b, c = base_apps[name], cur_apps[name]

        for key in ("chunks", "num_blocks", "gpus"):
            if b.get(key) != c.get(key):
                regressions.append(
                    f"{name}.{key}: structural mismatch {b.get(key)} -> {c.get(key)}"
                )

        d = rel(c["blocks_per_sec"], b["blocks_per_sec"])
        line = f"{name}.blocks_per_sec: {fmt_delta(c['blocks_per_sec'], b['blocks_per_sec'])}"
        if d < -wall_tol:
            regressions.append(f"{line}  [wall, tol {wall_tol:.0%}]")
        else:
            notes.append(line)

        bc, cc = b.get("critical_path"), c.get("critical_path")
        if bc and cc:
            d = rel(cc["makespan_ns"], bc["makespan_ns"])
            line = f"{name}.critical_path.makespan_ns: {fmt_delta(cc['makespan_ns'], bc['makespan_ns'])}"
            if d > sim_tol:
                regressions.append(f"{line}  [simulated, tol {sim_tol:.0%}]")
            elif d != 0:
                notes.append(line)

    base_scaling = {(s["app"], s["gpus"]): s for s in base.get("scaling", [])}
    cur_scaling = {(s["app"], s["gpus"]): s for s in cur.get("scaling", [])}
    for key in sorted(set(base_scaling) & set(cur_scaling)):
        bs, cs = base_scaling[key], cur_scaling[key]
        d = rel(cs["sim_secs"], bs["sim_secs"])
        line = f"scaling[{key[0]},{key[1]}gpu].sim_secs: {fmt_delta(cs['sim_secs'], bs['sim_secs'])}"
        if d > sim_tol:
            regressions.append(f"{line}  [simulated, tol {sim_tol:.0%}]")
        elif d != 0:
            notes.append(line)

    base_fusion = {f["app"]: f for f in base.get("fusion", [])}
    cur_fusion = {f["app"]: f for f in cur.get("fusion", [])}
    for name in sorted(set(base_fusion) ^ set(cur_fusion)):
        side = "baseline" if name in base_fusion else "current"
        notes.append(f"fusion row {name!r} only in {side}; skipped")
    for name in sorted(set(base_fusion) & set(cur_fusion)):
        bf, cf = base_fusion[name], cur_fusion[name]
        for key in sorted(set(bf) | set(cf)):
            if key == "app":
                continue
            if bf.get(key) != cf.get(key):
                regressions.append(
                    f"fusion[{name}].{key}: exact mismatch "
                    f"{bf.get(key)} -> {cf.get(key)}"
                )

    def stream_runs(doc):
        if "source_rate_factor" not in doc:
            return {}
        return {(r["app"], r["window"], r["queue_bound"]): r for r in doc.get("runs", [])}

    base_stream, cur_stream = stream_runs(base), stream_runs(cur)
    for key in sorted(set(base_stream) ^ set(cur_stream)):
        side = "baseline" if key in base_stream else "current"
        notes.append(f"streaming run {key!r} only in {side}; skipped")
    # (field, +1 when an increase is a worsening / -1 when a decrease is)
    STREAM_SIM = [
        ("sim_secs", +1),
        ("sustained_bytes_per_sec", -1),
        ("p99_latency_us", +1),
        ("backpressure_ns", +1),
    ]
    STREAM_EXACT = ["windows", "max_depth", "redetects", "retunes", "verified"]
    for key in sorted(set(base_stream) & set(cur_stream)):
        bs, cs = base_stream[key], cur_stream[key]
        label = f"streaming[{key[0]},{key[1]},bound={key[2]}]"
        for field in STREAM_EXACT:
            if bs.get(field) != cs.get(field):
                regressions.append(
                    f"{label}.{field}: exact mismatch {bs.get(field)} -> {cs.get(field)}"
                )
        for field, worse_sign in STREAM_SIM:
            d = rel(cs[field], bs[field])
            line = f"{label}.{field}: {fmt_delta(cs[field], bs[field])}"
            if d * worse_sign > sim_tol:
                regressions.append(f"{line}  [simulated, tol {sim_tol:.0%}]")
            elif d != 0:
                notes.append(line)

    for line in notes:
        print(f"  note: {line}")
    if regressions:
        for line in regressions:
            print(f"REGRESSION: {line}")
        return 1
    print(f"bench_diff: no regressions ({args[0]} vs {args[1]})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
